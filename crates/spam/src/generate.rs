//! Synthetic airport-scene generation.
//!
//! **Substitution note (see DESIGN.md §5).** The paper's inputs are hand-
//! segmented aerial images of San Francisco International, Washington
//! National, and NASA Ames Moffett Field. Those segmentations are not
//! available, so this module synthesises airport scenes with the structural
//! properties the system exercises: runways (possibly split into collinear
//! pieces by the segmenter), parallel taxiways with crossing connectors, a
//! terminal area (apron + buildings + access roads + parking), hangars,
//! fuel tanks, grass infill, and clutter. Geometry is jittered and rotated
//! so nothing is axis-aligned or exact.
// Clutter orientations draw from 0..3.14 — an arbitrary angle cap, not an
// approximation of π (changing it would shift the calibrated RNG streams).
#![allow(clippy::approx_constant)]

use crate::fragments::FragmentKind;
use crate::scene::{Region, Scene};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use spam_geometry::{Point, Polygon, Vector};

/// Generation parameters for one airport dataset.
#[derive(Clone, Debug)]
pub struct AirportSpec {
    /// Dataset name.
    pub name: &'static str,
    /// RNG seed (scenes are fully deterministic).
    pub seed: u64,
    /// Number of runways.
    pub runways: usize,
    /// Whether one runway crosses the others (Washington National style).
    pub crossing: bool,
    /// Collinear pieces the segmenter breaks each runway into.
    pub runway_split: usize,
    /// Parallel taxiways per runway.
    pub taxiways_per_runway: usize,
    /// Runway–taxiway connector stubs per runway.
    pub connectors_per_runway: usize,
    /// Terminal buildings.
    pub terminals: usize,
    /// Parking aprons.
    pub aprons: usize,
    /// Access roads.
    pub roads: usize,
    /// Vehicle parking lots.
    pub lots: usize,
    /// Hangars.
    pub hangars: usize,
    /// Fuel tanks.
    pub tanks: usize,
    /// Grass patches along the movement area.
    pub grass: usize,
    /// Tarmac patches.
    pub tarmac: usize,
    /// Spurious clutter regions.
    pub clutter: usize,
}

struct Builder {
    rng: StdRng,
    regions: Vec<Region>,
    rotation: f64,
    pivot: Point,
    jitter_amp: f64,
}

impl Builder {
    fn push(&mut self, poly: Polygon, intensity: f64, truth: Option<FragmentKind>) {
        let id = self.regions.len() as u32;
        let rotated = poly.rotated_about(self.pivot, self.rotation);
        let jittered = self.jitter(&rotated);
        let noise: f64 = self.rng.gen_range(-12.0..12.0);
        self.regions.push(Region::new(
            id,
            jittered,
            (intensity + noise).clamp(0.0, 255.0),
            truth,
        ));
    }

    fn jitter(&mut self, poly: &Polygon) -> Polygon {
        let amp = self.jitter_amp;
        let verts = poly
            .vertices()
            .iter()
            .map(|&p| p + Vector::new(self.rng.gen_range(-amp..amp), self.rng.gen_range(-amp..amp)))
            .collect();
        Polygon::new(verts)
    }
}

/// Generates a deterministic synthetic airport scene.
pub fn generate_scene(spec: &AirportSpec) -> Scene {
    let mut b = Builder {
        rng: StdRng::seed_from_u64(spec.seed),
        regions: Vec::new(),
        rotation: 0.0,
        pivot: Point::new(3000.0, 3000.0),
        jitter_amp: 1.5,
    };
    b.rotation = b.rng.gen_range(0.0..std::f64::consts::PI);

    let mut runway_axes: Vec<(Point, f64, f64)> = Vec::new(); // (centre, length, spacing index)

    // --- Runways: parallel strips, optionally one crossing.
    for r in 0..spec.runways {
        let crossing = spec.crossing && r == spec.runways - 1 && spec.runways > 1;
        let length = b.rng.gen_range(2400.0..3400.0);
        let width = b.rng.gen_range(45.0..60.0);
        let y = 1500.0 + r as f64 * b.rng.gen_range(700.0..1000.0);
        let centre = Point::new(3000.0, y);
        let angle = if crossing { 1.0 } else { 0.0 };
        runway_axes.push((centre, length, angle));
        // Split into collinear pieces with small segmentation gaps.
        let pieces = spec.runway_split.max(1);
        let gap = 18.0;
        let piece_len = (length - gap * (pieces as f64 - 1.0)) / pieces as f64;
        for p in 0..pieces {
            let offset = -length / 2.0 + piece_len / 2.0 + p as f64 * (piece_len + gap);
            let c = centre + Vector::from_angle(angle) * offset;
            b.push(
                Polygon::oriented_rect(c, piece_len, width, angle),
                85.0,
                Some(FragmentKind::Runway),
            );
        }

        // --- Parallel taxiways for this runway.
        for t in 0..spec.taxiways_per_runway {
            let side = if t % 2 == 0 { 1.0 } else { -1.0 };
            let offset = side * (150.0 + 60.0 * (t / 2) as f64);
            let tc = centre + Vector::from_angle(angle).perp() * offset;
            let tlen = length * b.rng.gen_range(0.7..0.9);
            let twidth = b.rng.gen_range(20.0..30.0);
            b.push(
                Polygon::oriented_rect(tc, tlen, twidth, angle),
                95.0,
                Some(FragmentKind::Taxiway),
            );

            // Connector stubs crossing both the taxiway and the runway.
            if t == 0 {
                for k in 0..spec.connectors_per_runway {
                    let along = -length * 0.35
                        + (k as f64 / spec.connectors_per_runway.max(1) as f64) * length * 0.7;
                    let cc = centre
                        + Vector::from_angle(angle) * along
                        + Vector::from_angle(angle).perp() * (offset / 2.0);
                    b.push(
                        Polygon::oriented_rect(
                            cc,
                            offset.abs() + 80.0,
                            18.0,
                            angle + std::f64::consts::FRAC_PI_2,
                        ),
                        95.0,
                        Some(FragmentKind::Taxiway),
                    );
                }
            }
        }

        // --- Grass infill strips between runway and first taxiway.
        let grass_per_runway = spec.grass / spec.runways.max(1);
        for g in 0..grass_per_runway {
            let along = -length * 0.4 + (g as f64 / grass_per_runway.max(1) as f64) * length * 0.8;
            let gc = centre
                + Vector::from_angle(angle) * along
                + Vector::from_angle(angle).perp() * 85.0;
            let (gl, gw) = (b.rng.gen_range(120.0..260.0), b.rng.gen_range(40.0..70.0));
            b.push(
                Polygon::oriented_rect(gc, gl, gw, angle),
                135.0,
                Some(FragmentKind::GrassyArea),
            );
        }

        // --- Tarmac patches along the runway edge.
        let tarmac_per_runway = spec.tarmac / spec.runways.max(1);
        for m in 0..tarmac_per_runway {
            let along = -length * 0.3 + (m as f64 / tarmac_per_runway.max(1) as f64) * length * 0.6;
            let mc = centre + Vector::from_angle(angle) * along
                - Vector::from_angle(angle).perp() * (width / 2.0 + 35.0);
            let (ml, mw) = (b.rng.gen_range(80.0..160.0), b.rng.gen_range(50.0..70.0));
            b.push(
                Polygon::oriented_rect(mc, ml, mw, angle),
                100.0,
                Some(FragmentKind::Tarmac),
            );
        }
    }

    // --- Terminal area anchored near the first runway's taxiway side.
    let terminal_base = Point::new(1500.0, 900.0);
    for a in 0..spec.aprons {
        let ac = terminal_base + Vector::new(a as f64 * 520.0, 0.0);
        b.push(
            Polygon::oriented_rect(ac, 450.0, 260.0, 0.0),
            105.0,
            Some(FragmentKind::ParkingApron),
        );
    }
    for t in 0..spec.terminals {
        let apron_idx = t % spec.aprons.max(1);
        let tc = terminal_base
            + Vector::new(
                apron_idx as f64 * 520.0 - 140.0 + (t / spec.aprons.max(1)) as f64 * 150.0,
                -200.0,
            );
        b.push(
            Polygon::oriented_rect(tc, 130.0, 60.0, 0.0),
            200.0,
            Some(FragmentKind::TerminalBuilding),
        );
    }
    for r in 0..spec.roads {
        let rc = terminal_base + Vector::new(r as f64 * 260.0 - 200.0, -380.0);
        b.push(
            Polygon::oriented_rect(rc, 550.0, 12.0, if r % 2 == 0 { 0.0 } else { 0.5 }),
            90.0,
            Some(FragmentKind::AccessRoad),
        );
    }
    for l in 0..spec.lots {
        let lc = terminal_base + Vector::new(l as f64 * 300.0 - 150.0, -480.0);
        b.push(
            Polygon::oriented_rect(lc, 160.0, 90.0, 0.0),
            110.0,
            Some(FragmentKind::ParkingLot),
        );
    }

    // --- Hangars near taxiways, away from the terminal.
    for h in 0..spec.hangars {
        let hc = Point::new(
            4400.0 + (h % 3) as f64 * 160.0,
            1200.0 + (h / 3) as f64 * 200.0,
        );
        b.push(
            Polygon::oriented_rect(hc, 90.0, 70.0, 0.3),
            190.0,
            Some(FragmentKind::Hangar),
        );
    }

    // --- Fuel-tank farm near a tarmac patch, far from terminals.
    for t in 0..spec.tanks {
        let tc = Point::new(
            4900.0 + (t % 4) as f64 * 70.0,
            2200.0 + (t / 4) as f64 * 70.0,
        );
        let radius = b.rng.gen_range(12.0..20.0);
        b.push(
            Polygon::regular(tc, radius, 8),
            205.0,
            Some(FragmentKind::FuelTank),
        );
    }
    // A tarmac patch by the tank farm so the `fuel-tank near tarmac`
    // constraint can succeed.
    if spec.tanks > 0 {
        b.push(
            Polygon::oriented_rect(Point::new(4980.0, 2060.0), 220.0, 90.0, 0.0),
            100.0,
            Some(FragmentKind::Tarmac),
        );
    }

    // --- Clutter: spurious segmentation regions everywhere.
    for _ in 0..spec.clutter {
        let c = Point::new(
            b.rng.gen_range(300.0..5700.0),
            b.rng.gen_range(300.0..5700.0),
        );
        let shape = b.rng.gen_range(0..3);
        let poly = match shape {
            0 => {
                let (l, w, a) = (
                    b.rng.gen_range(15.0..120.0),
                    b.rng.gen_range(10.0..80.0),
                    b.rng.gen_range(0.0..3.14),
                );
                Polygon::oriented_rect(c, l, w, a)
            }
            1 => {
                let r = b.rng.gen_range(8.0..40.0);
                Polygon::regular(c, r, 6)
            }
            _ => {
                let (l, w, a) = (
                    b.rng.gen_range(100.0..420.0),
                    b.rng.gen_range(6.0..16.0),
                    b.rng.gen_range(0.0..3.14),
                );
                Polygon::oriented_rect(c, l, w, a)
            }
        };
        let intensity = b.rng.gen_range(60.0..220.0);
        b.push(poly, intensity, None);
    }

    Scene::new(spec.name, b.regions)
}

/// Generation parameters for a suburban housing development — the paper's
/// second task area.
#[derive(Clone, Debug)]
pub struct SuburbSpec {
    /// Dataset name.
    pub name: &'static str,
    /// RNG seed.
    pub seed: u64,
    /// East–west streets.
    pub streets: usize,
    /// North–south cross streets.
    pub cross_streets: usize,
    /// Houses per street side.
    pub houses_per_block: usize,
    /// Percentage of houses with a detached garage.
    pub garage_pct: u32,
    /// Percentage of houses with a pool.
    pub pool_pct: u32,
    /// Clutter regions (trees, shadows, cars).
    pub clutter: usize,
}

impl SuburbSpec {
    /// The demo development used by the suburban example and tests.
    pub fn demo() -> SuburbSpec {
        SuburbSpec {
            name: "SUBURB",
            seed: 0x5b_0007,
            streets: 3,
            cross_streets: 2,
            houses_per_block: 6,
            garage_pct: 60,
            pool_pct: 25,
            clutter: 60,
        }
    }
}

/// Generates a deterministic suburban housing-development scene.
///
/// Layout: a grid of streets; along each street, rows of lots with a house,
/// a yard, a driveway connecting house to street, and optionally a garage
/// and a pool; clutter (tree crowns, cars, shadows) everywhere.
pub fn generate_suburb(spec: &SuburbSpec) -> Scene {
    let mut b = Builder {
        rng: StdRng::seed_from_u64(spec.seed),
        regions: Vec::new(),
        rotation: 0.0,
        pivot: Point::new(450.0, 450.0),
        jitter_amp: 0.35,
    };
    b.rotation = b.rng.gen_range(0.0..std::f64::consts::PI);

    let street_gap = 180.0;
    let lot_w = 45.0;

    // Streets (east-west) and cross streets (north-south).
    for s in 0..spec.streets {
        let y = 120.0 + s as f64 * street_gap;
        b.push(
            Polygon::oriented_rect(Point::new(450.0, y), 880.0, 9.0, 0.0),
            95.0,
            Some(FragmentKind::Street),
        );
    }
    for s in 0..spec.cross_streets {
        let x = 180.0 + s as f64 * 350.0;
        b.push(
            Polygon::oriented_rect(
                Point::new(x, 300.0),
                560.0,
                9.0,
                std::f64::consts::FRAC_PI_2,
            ),
            95.0,
            Some(FragmentKind::Street),
        );
    }

    // Lots along each street, both sides.
    for s in 0..spec.streets {
        let street_y = 120.0 + s as f64 * street_gap;
        for side in [-1.0f64, 1.0] {
            for h in 0..spec.houses_per_block {
                let x = 90.0 + h as f64 * (lot_w + 18.0) + if side > 0.0 { 9.0 } else { 0.0 };
                let house_c = Point::new(x, street_y + side * 38.0);
                // House roof.
                b.push(
                    Polygon::oriented_rect(house_c, 16.0, 10.0, 0.0),
                    195.0,
                    Some(FragmentKind::House),
                );
                // Driveway from the street edge to the house.
                let drive_c = Point::new(x + 12.0, street_y + side * 19.0);
                b.push(
                    Polygon::oriented_rect(drive_c, 30.0, 3.5, std::f64::consts::FRAC_PI_2),
                    110.0,
                    Some(FragmentKind::Driveway),
                );
                // Yard behind the house.
                let yard_c = Point::new(x, street_y + side * 62.0);
                b.push(
                    Polygon::oriented_rect(yard_c, 34.0, 30.0, 0.0),
                    132.0,
                    Some(FragmentKind::Yard),
                );
                // Optional garage by the driveway end.
                if (b.rng.gen_range(0..100u32)) < spec.garage_pct {
                    let gar_c = Point::new(x + 12.0, street_y + side * 33.0);
                    b.push(
                        Polygon::oriented_rect(gar_c, 7.0, 6.0, 0.0),
                        190.0,
                        Some(FragmentKind::Garage),
                    );
                }
                // Optional pool in the yard.
                if (b.rng.gen_range(0..100u32)) < spec.pool_pct {
                    let pool_c = Point::new(x - 8.0, street_y + side * 60.0);
                    b.push(
                        Polygon::regular(pool_c, 4.0, 8),
                        55.0,
                        Some(FragmentKind::SwimmingPool),
                    );
                }
            }
        }
    }

    // Clutter: tree crowns, parked cars, shadows.
    for _ in 0..spec.clutter {
        let c = Point::new(b.rng.gen_range(30.0..870.0), b.rng.gen_range(30.0..620.0));
        let kind = b.rng.gen_range(0..3);
        let poly = match kind {
            0 => {
                let r = b.rng.gen_range(2.0..7.0);
                Polygon::regular(c, r, 7) // tree crown
            }
            1 => {
                let a = b.rng.gen_range(0.0..3.14);
                Polygon::oriented_rect(c, 4.5, 2.0, a) // car
            }
            _ => {
                let (l, w, a) = (
                    b.rng.gen_range(5.0..25.0),
                    b.rng.gen_range(3.0..14.0),
                    b.rng.gen_range(0.0..3.14),
                );
                Polygon::oriented_rect(c, l, w, a) // shadow / misc
            }
        };
        let intensity = b.rng.gen_range(35.0..210.0);
        b.push(poly, intensity, None);
    }

    let mut scene = Scene::new(spec.name, b.regions);
    scene.domain = crate::scene::SceneDomain::Suburban;
    scene
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datasets;

    #[test]
    fn generation_is_deterministic() {
        let spec = datasets::sf().spec;
        let a = generate_scene(&spec);
        let b = generate_scene(&spec);
        assert_eq!(a.len(), b.len());
        for (ra, rb) in a.regions.iter().zip(&b.regions) {
            assert_eq!(ra.polygon, rb.polygon);
            assert_eq!(ra.intensity, rb.intensity);
            assert_eq!(ra.truth, rb.truth);
        }
    }

    #[test]
    fn scene_contains_all_airport_classes() {
        use crate::fragments::ALL_KINDS;
        let scene = generate_scene(&datasets::sf().spec);
        for k in ALL_KINDS.iter().take(10) {
            assert!(
                scene.regions.iter().any(|r| r.truth == Some(*k)),
                "SF scene should contain a {k}"
            );
        }
    }

    #[test]
    fn runways_are_elongated_and_split() {
        let spec = datasets::sf().spec;
        let scene = generate_scene(&spec);
        let runways: Vec<_> = scene
            .regions
            .iter()
            .filter(|r| r.truth == Some(FragmentKind::Runway))
            .collect();
        assert_eq!(runways.len(), spec.runways * spec.runway_split);
        for r in &runways {
            assert!(
                r.descriptors.elongation > 8.0,
                "runway pieces stay elongated: {}",
                r.descriptors.elongation
            );
        }
    }

    #[test]
    fn connectors_intersect_their_runway() {
        let scene = generate_scene(&datasets::dc().spec);
        // At least one taxiway region must intersect at least one runway
        // region (the `runway intersects taxiway` constraint needs this).
        let mut found = false;
        for a in &scene.regions {
            if a.truth != Some(FragmentKind::Runway) {
                continue;
            }
            for bid in scene.neighbours(a.id, 0.0) {
                let b = scene.region(bid);
                if b.truth == Some(FragmentKind::Taxiway) && a.polygon.intersects(&b.polygon) {
                    found = true;
                }
            }
        }
        assert!(found, "no runway–taxiway intersection in the scene");
    }

    #[test]
    fn suburb_scene_has_the_domain_and_classes() {
        let scene = generate_suburb(&SuburbSpec::demo());
        assert_eq!(scene.domain, crate::scene::SceneDomain::Suburban);
        for k in [
            FragmentKind::House,
            FragmentKind::Street,
            FragmentKind::Driveway,
            FragmentKind::Yard,
            FragmentKind::Garage,
            FragmentKind::SwimmingPool,
        ] {
            assert!(
                scene.regions.iter().any(|r| r.truth == Some(k)),
                "suburb should contain a {k}"
            );
        }
        // Houses really sit by their driveways.
        let mut adjacent_found = false;
        for a in &scene.regions {
            if a.truth != Some(FragmentKind::House) {
                continue;
            }
            for bid in scene.neighbours(a.id, 10.0) {
                let b = scene.region(bid);
                if b.truth == Some(FragmentKind::Driveway) && a.polygon.adjacent_to(&b.polygon, 8.0)
                {
                    adjacent_found = true;
                }
            }
        }
        assert!(adjacent_found, "no house adjacent to a driveway");
    }

    #[test]
    fn suburb_generation_is_deterministic() {
        let a = generate_suburb(&SuburbSpec::demo());
        let b = generate_suburb(&SuburbSpec::demo());
        assert_eq!(a.len(), b.len());
        for (ra, rb) in a.regions.iter().zip(&b.regions) {
            assert_eq!(ra.polygon, rb.polygon);
        }
    }

    #[test]
    fn dataset_sizes_are_ordered() {
        let sf = generate_scene(&datasets::sf().spec).len();
        let dc = generate_scene(&datasets::dc().spec).len();
        let moff = generate_scene(&datasets::moff().spec).len();
        assert!(sf > moff && moff > dc, "SF({sf}) > MOFF({moff}) > DC({dc})");
    }
}
