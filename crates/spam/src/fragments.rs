//! Fragment hypotheses: SPAM's scene-interpretation primitives.

use ops5::{sym, Symbol, Value};
use std::fmt;

/// The airport-domain fragment classes SPAM hypothesises (§2.2: "SPAM has
/// been applied in two task areas: airport and suburban house scene
/// analysis" — this reproduction implements the airport domain).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum FragmentKind {
    /// A runway: very long, straight, wide strip.
    Runway,
    /// A taxiway: long, narrower strip connecting runways and aprons.
    Taxiway,
    /// An access road: narrow linear feature outside the movement area.
    AccessRoad,
    /// A terminal building: large compact bright structure.
    TerminalBuilding,
    /// A hangar: compact structure near the movement area.
    Hangar,
    /// A parking apron: large medium-dark paved area near terminals.
    ParkingApron,
    /// A vehicle parking lot: medium paved area near access roads.
    ParkingLot,
    /// A grassy area between pavement.
    GrassyArea,
    /// Unassigned paved area (tarmac).
    Tarmac,
    /// A fuel-storage tank: small round structure.
    FuelTank,
    // --- suburban-domain classes (the paper's second task area, §2.2) ---
    /// A detached house: bright compact roof structure.
    House,
    /// A driveway: short narrow paved strip from street to house.
    Driveway,
    /// A street: long narrow paved strip.
    Street,
    /// A garage: small bright structure by a driveway.
    Garage,
    /// A swimming pool: small dark compact region in a yard.
    SwimmingPool,
    /// A yard: mid-intensity open area around a house.
    Yard,
}

/// All fragment kinds, in a fixed order (the Level-4 task list; only kinds
/// with hypotheses in the scene yield Level-4 tasks).
pub const ALL_KINDS: [FragmentKind; 16] = [
    FragmentKind::Runway,
    FragmentKind::Taxiway,
    FragmentKind::AccessRoad,
    FragmentKind::TerminalBuilding,
    FragmentKind::Hangar,
    FragmentKind::ParkingApron,
    FragmentKind::ParkingLot,
    FragmentKind::GrassyArea,
    FragmentKind::Tarmac,
    FragmentKind::FuelTank,
    FragmentKind::House,
    FragmentKind::Driveway,
    FragmentKind::Street,
    FragmentKind::Garage,
    FragmentKind::SwimmingPool,
    FragmentKind::Yard,
];

impl FragmentKind {
    /// The OPS5 symbol naming this kind.
    pub fn symbol(self) -> Symbol {
        sym(self.name())
    }

    /// The OPS5 value naming this kind.
    pub fn value(self) -> Value {
        Value::Sym(self.symbol())
    }

    /// Stable lower-case name used in rules and working memory.
    pub fn name(self) -> &'static str {
        match self {
            FragmentKind::Runway => "runway",
            FragmentKind::Taxiway => "taxiway",
            FragmentKind::AccessRoad => "access-road",
            FragmentKind::TerminalBuilding => "terminal-building",
            FragmentKind::Hangar => "hangar",
            FragmentKind::ParkingApron => "parking-apron",
            FragmentKind::ParkingLot => "parking-lot",
            FragmentKind::GrassyArea => "grassy-area",
            FragmentKind::Tarmac => "tarmac",
            FragmentKind::FuelTank => "fuel-tank",
            FragmentKind::House => "house",
            FragmentKind::Driveway => "driveway",
            FragmentKind::Street => "street",
            FragmentKind::Garage => "garage",
            FragmentKind::SwimmingPool => "swimming-pool",
            FragmentKind::Yard => "yard",
        }
    }

    /// Parses a kind from its rule name.
    pub fn from_name(name: &str) -> Option<FragmentKind> {
        ALL_KINDS.iter().copied().find(|k| k.name() == name)
    }
}

impl fmt::Display for FragmentKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A fragment hypothesis produced by the RTF phase: *region R is a K*.
#[derive(Clone, Debug, PartialEq)]
pub struct FragmentHypothesis {
    /// Fragment id (dense across the phase output).
    pub id: u32,
    /// The supporting region.
    pub region: u32,
    /// Hypothesised class.
    pub kind: FragmentKind,
    /// RTF confidence in `[0, 1]` (from how centrally the descriptors sit
    /// in the class envelope).
    pub confidence: f64,
    /// Accumulated consistency support (filled by LCC).
    pub support: i64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_round_trip() {
        for k in ALL_KINDS {
            assert_eq!(FragmentKind::from_name(k.name()), Some(k));
        }
        assert_eq!(FragmentKind::from_name("spaceport"), None);
    }

    #[test]
    fn symbols_are_stable() {
        assert_eq!(
            FragmentKind::TerminalBuilding.symbol(),
            sym("terminal-building")
        );
        assert_eq!(FragmentKind::Runway.value(), Value::symbol("runway"));
    }

    #[test]
    fn all_kinds_distinct() {
        let mut names: Vec<&str> = ALL_KINDS.iter().map(|k| k.name()).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), ALL_KINDS.len());
    }
}
