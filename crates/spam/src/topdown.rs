//! Top-down re-entry: FA predictions drive new RTF hypotheses and LCC work.
//!
//! §2.2: "the context of a runway functional area then predicts that
//! certain sub-areas within that functional area are good candidates for
//! finding grassy areas or tarmac regions. ... prediction of a fragment
//! interpretation in functional-area phase will automatically cause SPAM
//! to reenter local-consistency check phase for that fragment."
//!
//! Given the FA phase's open predictions, this module searches each area's
//! spatial window for still-unclaimed regions that *loosely* fit the
//! predicted class (the context justifies a weaker envelope than bottom-up
//! RTF used), creates prediction-driven fragment hypotheses, and re-enters
//! LCC for exactly those fragments.

use crate::fa::FaResult;
use crate::fragments::{FragmentHypothesis, FragmentKind};
use crate::lcc::{run_lcc_unit, ConsistentRec, LccUnit};
use crate::rules::SpamProgram;
use crate::scene::Scene;
use ops5::WorkCounters;
use std::collections::BTreeSet;
use std::sync::Arc;

/// Result of a top-down re-entry pass.
#[derive(Debug)]
pub struct TopDownResult {
    /// Prediction-driven hypotheses (appended after the bottom-up ids).
    pub predicted: Vec<FragmentHypothesis>,
    /// Fragments (bottom-up + predicted) with supports updated by the
    /// re-entered LCC tasks.
    pub fragments: Vec<FragmentHypothesis>,
    /// Consistency records found by the re-entry tasks.
    pub consistents: Vec<ConsistentRec>,
    /// How many predicted hypotheses found support (context confirmed).
    pub confirmed: usize,
    /// Work of the re-entered tasks.
    pub work: WorkCounters,
    /// Firings of the re-entered tasks.
    pub firings: u64,
}

/// Relaxed descriptor envelope for a predicted kind: the functional-area
/// context substitutes for the evidence bottom-up classification demanded.
fn loosely_fits(kind: FragmentKind, region: &crate::scene::Region) -> bool {
    let d = &region.descriptors;
    match kind {
        FragmentKind::GrassyArea => (100.0..175.0).contains(&region.intensity) && d.area > 1200.0,
        FragmentKind::ParkingApron => {
            (50.0..145.0).contains(&region.intensity) && d.area > 15_000.0 && d.elongation < 6.0
        }
        FragmentKind::Tarmac => (50.0..135.0).contains(&region.intensity) && d.area > 1_500.0,
        _ => false,
    }
}

/// Runs the top-down pass: predictions → new hypotheses → LCC re-entry.
pub fn run_topdown(
    sp: &SpamProgram,
    scene: &Arc<Scene>,
    fragments: &[FragmentHypothesis],
    fa: &FaResult,
    predictions: &[(i64, FragmentKind)],
) -> TopDownResult {
    // Regions already carrying any hypothesis are not re-hypothesised.
    let claimed: BTreeSet<u32> = fragments.iter().map(|f| f.region).collect();

    // Window per predicting area: the seed fragment's bbox, inflated.
    let mut predicted: Vec<FragmentHypothesis> = Vec::new();
    let mut next_id = fragments.iter().map(|f| f.id + 1).max().unwrap_or(0);
    let mut taken: BTreeSet<u32> = BTreeSet::new();
    for &(area_id, kind) in predictions {
        let Some(area) = fa.areas.iter().find(|a| a.id == area_id) else {
            continue;
        };
        let Some(seed) = fragments.iter().find(|f| f.id == area.seed) else {
            continue;
        };
        let window = scene.region(seed.region).polygon.bbox().inflated(300.0);
        for region in &scene.regions {
            if claimed.contains(&region.id) || taken.contains(&region.id) {
                continue;
            }
            if !window.intersects(&region.polygon.bbox()) {
                continue;
            }
            if loosely_fits(kind, region) {
                taken.insert(region.id);
                predicted.push(FragmentHypothesis {
                    id: next_id,
                    region: region.id,
                    kind,
                    confidence: 0.25, // context-driven, weak prior
                    support: 0,
                });
                next_id += 1;
            }
        }
    }

    // Re-enter LCC for exactly the predicted fragments.
    let mut all: Vec<FragmentHypothesis> = fragments.to_vec();
    all.extend(predicted.iter().cloned());
    let table = Arc::new(all.clone());
    let mut work = WorkCounters::default();
    let mut firings = 0;
    let mut consistents = Vec::new();
    let mut supports = vec![0i64; table.len()];
    for f in &predicted {
        let r = run_lcc_unit(sp, scene, &table, &LccUnit::Object(f.id));
        work.add(&r.work);
        firings += r.firings;
        consistents.extend(r.consistents.iter().copied());
        for &(id, s) in &r.supports {
            supports[id as usize] += s;
        }
    }
    for f in &mut all {
        f.support += supports[f.id as usize];
    }
    let confirmed = predicted
        .iter()
        .filter(|f| all[f.id as usize].support > 0)
        .count();
    let predicted_updated: Vec<FragmentHypothesis> = predicted
        .iter()
        .map(|f| all[f.id as usize].clone())
        .collect();

    TopDownResult {
        predicted: predicted_updated,
        fragments: all,
        consistents,
        confirmed,
        work,
        firings,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fa::run_fa;
    use crate::lcc::{run_lcc, Level};
    use crate::rtf::run_rtf;

    #[test]
    fn predictions_recover_unclaimed_context_regions() {
        let sp = SpamProgram::build();
        let scene = Arc::new(crate::generate_scene(&crate::datasets::moff().spec));
        let rtf = run_rtf(&sp, &scene);
        let frags = Arc::new(rtf.fragments);
        let lcc = run_lcc(&sp, &scene, &frags, Level::L3);
        let fa = run_fa(
            &sp,
            &scene,
            &Arc::new(lcc.fragments.clone()),
            &lcc.consistents,
        );

        // Use the FA rules' own prediction records.
        let predictions = fa.prediction_list.clone();
        assert!(!predictions.is_empty(), "FA opened no predictions");

        let td = run_topdown(&sp, &scene, &lcc.fragments, &fa, &predictions);
        assert!(
            !td.predicted.is_empty(),
            "the context should nominate unclaimed regions"
        );
        assert!(
            td.confirmed > 0,
            "some predicted fragments must find consistency support"
        );
        assert!(td.confirmed <= td.predicted.len());
        assert!(td.firings > 0 && td.work.total_units() > 0);
        // Predicted ids extend the bottom-up table densely.
        for (i, f) in td.fragments.iter().enumerate() {
            assert_eq!(f.id as usize, i);
        }
        // Re-entry never decreases a bottom-up fragment's support.
        for (a, b) in lcc.fragments.iter().zip(&td.fragments) {
            assert!(b.support >= a.support);
        }
    }
}
