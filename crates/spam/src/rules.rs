//! The SPAM rule base, in genuine OPS5 syntax.
//!
//! One program contains all four phases, gated by a `(control ^phase X)`
//! element — mirroring the original system's "hard-wired productions for
//! each phase that control the order of rule executions" (§2.2). The LCC
//! pair-evaluation productions are generated per constraint from
//! [`crate::constraints::CONSTRAINTS`] (SPAM's 600-production scale came
//! from exactly this kind of knowledge-base expansion).
//!
//! Working-memory schema:
//!
//! * `region` — a segmentation region with its shape descriptors;
//! * `fragment` — an RTF hypothesis (*region R is a K*) with LCC support;
//! * `constraint` — one row of the consistency knowledge base;
//! * `lcc-task` / `lcc-check` / `lcc-pair` — the Level-3 / Level-2 /
//!   Level-1 work items of the LCC decomposition (Figure 4);
//! * `consistent` — a successful constraint application;
//! * `fa-area` / `fa-member` / `prediction` — functional-area aggregation;
//! * `model` / `model-area` — scene-model assembly.

use crate::constraints::CONSTRAINTS;
use std::fmt::Write;

/// The working-memory class declarations.
pub fn declarations() -> String {
    "\
(literalize control phase status)
(literalize region id status elongation length width compactness rectangularity intensity area)
(literalize proto kind out eln elx lnn lnx wdn wdx inn inx arn arx cpn rcn conf)
(literalize fragment id region kind conf support status)
(literalize constraint id subject object rel param weight)
(literalize lcc-task id frag kind status)
(literalize lcc-check id task frag constraint status)
(literalize lcc-pair check frag other constraint status)
(literalize near a b kind)
(literalize consistent a b rel weight counted)
(literalize fa-area id kind seed nmembers status)
(literalize fa-member area frag)
(literalize prediction area kind status)
(literalize model id score areas status)
(literalize model-area area verified)
"
    .to_owned()
}

/// One RTF classification prototype: the fragment kind it hypothesises and
/// its descriptor envelope
/// `[eln, elx, lnn, lnx, wdn, wdx, inn, inx, arn, arx, cpn, rcn]`
/// (min/max elongation, length, width, intensity, area; min compactness and
/// rectangularity), plus a default confidence for weak envelopes.
#[derive(Clone, Copy, Debug)]
pub struct Prototype {
    /// Hypothesised fragment kind name.
    pub out: &'static str,
    /// Envelope bounds (see type docs for the order).
    pub bounds: [f64; 12],
    /// Confidence assigned when < 0 the external computes it.
    pub conf: f64,
    /// Scene domain whose RTF working memory loads this prototype.
    pub domain: crate::scene::SceneDomain,
}

const HI: f64 = 1.0e12;

/// The prototype table (primary envelopes plus weak secondary envelopes for
/// ambiguous linear features — the paper's classify/subclassify ambiguity).
pub fn prototypes() -> Vec<(&'static str, Prototype)> {
    use crate::scene::SceneDomain::{Airport, Suburban};
    let p = |out, bounds, conf| Prototype {
        out,
        bounds,
        conf,
        domain: Airport,
    };
    let q = |out, bounds, conf| Prototype {
        out,
        bounds,
        conf,
        domain: Suburban,
    };
    vec![
        (
            "runway",
            p(
                "runway",
                [8.0, HI, 1500.0, HI, 28.0, 95.0, 0.0, HI, 0.0, HI, 0.0, 0.55],
                -1.0,
            ),
        ),
        (
            "taxiway",
            p(
                "taxiway",
                [8.0, HI, 350.0, HI, 8.0, 48.0, 0.0, HI, 0.0, HI, 0.0, 0.0],
                -1.0,
            ),
        ),
        (
            "access-road",
            p(
                "access-road",
                [10.0, HI, 180.0, HI, 0.0, 22.0, 0.0, HI, 0.0, HI, 0.0, 0.0],
                -1.0,
            ),
        ),
        (
            "terminal-building",
            p(
                "terminal-building",
                [0.0, 3.5, 0.0, HI, 0.0, HI, 165.0, HI, 4000.0, HI, 0.45, 0.0],
                -1.0,
            ),
        ),
        (
            "hangar",
            p(
                "hangar",
                [
                    0.0, 3.0, 0.0, HI, 0.0, HI, 165.0, HI, 2000.0, 13000.0, 0.0, 0.0,
                ],
                -1.0,
            ),
        ),
        (
            "parking-apron",
            p(
                "parking-apron",
                [
                    0.0, 4.0, 0.0, HI, 0.0, HI, 55.0, 135.0, 40000.0, HI, 0.0, 0.0,
                ],
                -1.0,
            ),
        ),
        (
            "parking-lot",
            p(
                "parking-lot",
                [
                    0.0, 4.0, 0.0, HI, 0.0, HI, 75.0, 145.0, 5000.0, 40000.0, 0.0, 0.0,
                ],
                -1.0,
            ),
        ),
        (
            "grassy-area",
            p(
                "grassy-area",
                [
                    0.0, 8.0, 0.0, HI, 0.0, HI, 112.0, 162.0, 3000.0, HI, 0.0, 0.0,
                ],
                -1.0,
            ),
        ),
        (
            "tarmac",
            p(
                "tarmac",
                [
                    0.0, 7.0, 0.0, HI, 0.0, HI, 55.0, 125.0, 2500.0, 45000.0, 0.0, 0.0,
                ],
                -1.0,
            ),
        ),
        (
            "fuel-tank",
            p(
                "fuel-tank",
                [0.0, HI, 0.0, HI, 0.0, HI, 165.0, HI, 0.0, 2500.0, 0.65, 0.0],
                -1.0,
            ),
        ),
        // Weak secondary envelopes.
        (
            "weak-taxiway",
            p(
                "taxiway",
                [6.0, 8.0, 350.0, HI, 0.0, 48.0, 0.0, HI, 0.0, HI, 0.0, 0.0],
                0.3,
            ),
        ),
        (
            "weak-road",
            p(
                "access-road",
                [6.0, 10.0, 0.0, HI, 0.0, 15.0, 0.0, HI, 0.0, HI, 0.0, 0.0],
                0.3,
            ),
        ),
        (
            "weak-tarmac",
            p(
                "tarmac",
                [
                    0.0, HI, 0.0, HI, 0.0, HI, 55.0, 125.0, 45000.0, HI, 0.0, 0.0,
                ],
                0.3,
            ),
        ),
        // --- suburban domain (different spatial scale: lots, not airfields)
        (
            "house",
            q(
                "house",
                [0.0, 3.0, 0.0, HI, 0.0, HI, 160.0, HI, 60.0, 500.0, 0.4, 0.0],
                -1.0,
            ),
        ),
        (
            "street",
            q(
                "street",
                [
                    10.0, HI, 120.0, HI, 5.0, 16.0, 60.0, 130.0, 0.0, HI, 0.0, 0.0,
                ],
                -1.0,
            ),
        ),
        (
            "driveway",
            q(
                "driveway",
                [
                    2.0, 12.0, 8.0, 60.0, 2.0, 7.0, 60.0, 140.0, 0.0, 420.0, 0.0, 0.0,
                ],
                -1.0,
            ),
        ),
        (
            "garage",
            q(
                "garage",
                [0.0, 2.5, 0.0, HI, 0.0, HI, 160.0, HI, 15.0, 60.0, 0.5, 0.0],
                -1.0,
            ),
        ),
        (
            "swimming-pool",
            q(
                "swimming-pool",
                [0.0, 2.0, 0.0, HI, 0.0, HI, 20.0, 75.0, 15.0, 90.0, 0.6, 0.0],
                -1.0,
            ),
        ),
        (
            "yard",
            q(
                "yard",
                [
                    0.0, 6.0, 0.0, HI, 0.0, HI, 105.0, 160.0, 100.0, 2500.0, 0.0, 0.0,
                ],
                -1.0,
            ),
        ),
    ]
}

/// RTF: region-to-fragment heuristic classification (§2.2: "a traditional
/// heuristic classification task ... it may classify linear regions in the
/// scene as taxiways or runways").
pub fn rtf_rules() -> String {
    let mut s = String::new();
    // Low-level measurement: charges the (external) feature-extraction
    // cost once per region.
    s.push_str(
        "(p rtf-measure
            (control ^phase rtf)
            (region ^id <r> ^status pending)
            -->
            (call measure-region <r>)
            (modify 2 ^status measured))\n",
    );
    // Classification against prototype envelopes held in working memory —
    // one production per prototype, with the envelope bounds joined in from
    // the `proto` element. This keeps RTF "closer to the framework of a
    // traditional OPS5 system" (§2.2): the classification work is *match*
    // work (the paper measures RTF at ~60 % match, §6.5). Envelopes
    // deliberately overlap: a long strip may be hypothesised as both runway
    // and taxiway; LCC sorts it out.
    for (name, _) in prototypes() {
        write!(
            s,
            "(p rtf-hyp-{name}
                (control ^phase rtf)
                (proto ^kind {name} ^out <ok>
                       ^eln <eln> ^elx <elx> ^lnn <lnn> ^lnx <lnx>
                       ^wdn <wdn> ^wdx <wdx> ^inn <inn> ^inx <inx>
                       ^arn <arn> ^arx <arx> ^cpn <cpn> ^rcn <rcn> ^conf <cf>)
                (region ^id <r> ^status measured
                        ^elongation {{ >= <eln> <= <elx> }}
                        ^length {{ >= <lnn> <= <lnx> }}
                        ^width {{ >= <wdn> <= <wdx> }}
                        ^intensity {{ >= <inn> <= <inx> }}
                        ^area {{ >= <arn> <= <arx> }}
                        ^compactness >= <cpn>
                        ^rectangularity >= <rcn>)
                -(fragment ^region <r> ^kind <ok>)
                -->
                (bind <f> (call new-frag-id))
                (make fragment ^id <f> ^region <r> ^kind <ok>
                      ^conf (call rtf-conf <r> <ok> <cf>) ^support 0 ^status hypothesised))\n"
        )
        .unwrap();
    }
    // Phase completion.
    s.push_str(
        "(p rtf-done
            (control ^phase rtf ^status running)
            -(region ^status pending)
            -->
            (modify 1 ^status done))\n",
    );
    s
}

/// LCC: the constraint-satisfaction phase, decomposed exactly as Figure 4:
/// task (Level 3) → checks (Level 2) → pairs (Level 1).
pub fn lcc_rules() -> String {
    let mut s = String::new();
    s.push_str(
        "(p lcc-expand-task
            (control ^phase lcc)
            (lcc-task ^id <t> ^frag <f> ^kind <k> ^status pending)
            -->
            (call lcc-init <f>)
            (modify 2 ^status expanding))\n",
    );
    s.push_str(
        "(p lcc-gen-check
            (control ^phase lcc)
            (lcc-task ^id <t> ^frag <f> ^kind <k> ^status expanding)
            (constraint ^id <c> ^subject <k>)
            -(lcc-check ^frag <f> ^constraint <c>)
            -->
            (make lcc-check ^id (call new-check-id) ^task <t> ^frag <f>
                  ^constraint <c> ^status pending))\n",
    );
    s.push_str(
        "(p lcc-expand-check
            (control ^phase lcc)
            (lcc-check ^id <ch> ^frag <f> ^constraint <c> ^status pending)
            -->
            (call lcc-init-check <c>)
            (modify 2 ^status expanded))\n",
    );
    s.push_str(
        "(p lcc-gen-pair
            (control ^phase lcc)
            (lcc-check ^id <ch> ^frag <f> ^constraint <c> ^status expanded)
            (constraint ^id <c> ^object <k2>)
            (near ^a <f> ^b <g> ^kind <k2>)
            -(lcc-pair ^check <ch> ^other <g>)
            -->
            (make lcc-pair ^check <ch> ^frag <f> ^other <g> ^constraint <c>
                  ^status pending))\n",
    );
    // One evaluation production per constraint — the knowledge-base
    // expansion that gives SPAM its production count. The external runs the
    // geometric test and asserts the `consistent` element when it holds.
    for c in CONSTRAINTS {
        write!(
            s,
            "(p lcc-eval-c{}
                (control ^phase lcc)
                (lcc-pair ^check <ch> ^frag <f> ^other <g> ^constraint {} ^status pending)
                -->
                (call lcc-check-pair {} <f> <g>)
                (modify 2 ^status done))\n",
            c.id, c.id, c.id
        )
        .unwrap();
    }
    s.push_str(
        "(p lcc-support
            (control ^phase lcc)
            (consistent ^a <f> ^b <g> ^weight <w> ^counted nil)
            (fragment ^id <f> ^support <s>)
            -->
            (modify 2 ^counted yes)
            (modify 3 ^support (compute <s> + <w>)))\n",
    );
    s.push_str(
        "(p lcc-check-done
            (control ^phase lcc)
            (lcc-check ^id <ch> ^frag <f> ^status expanded)
            -(lcc-pair ^check <ch> ^status pending)
            -->
            (modify 2 ^status done))\n",
    );
    s.push_str(
        "(p lcc-task-done
            (control ^phase lcc)
            (lcc-task ^id <t> ^frag <f> ^status expanding)
            -(lcc-check ^task <t> ^status pending)
            -(lcc-check ^task <t> ^status expanded)
            -(consistent ^a <f> ^counted nil)
            -->
            (modify 2 ^status done))\n",
    );
    s
}

/// FA: aggregation of mutually consistent fragments into functional areas
/// ("a collection of mutually consistent runways and taxiways might combine
/// to generate a runway functional area", §2.2).
pub fn fa_rules() -> String {
    let mut s = String::new();
    // Seeds: well-supported core objects found their own areas.
    let seeds: &[(&str, &str, i64)] = &[
        ("runway", "runway-area", 3),
        ("terminal-building", "terminal-area", 3),
        ("hangar", "hangar-area", 2),
        ("fuel-tank", "storage-area", 2),
        // suburban domain
        ("house", "house-lot", 3),
        ("street", "street-area", 3),
    ];
    for (kind, area, minsup) in seeds {
        write!(
            s,
            "(p fa-seed-{kind}
                (control ^phase fa)
                (fragment ^id <f> ^kind {kind} ^support >= {minsup} ^status hypothesised)
                -->
                (modify 2 ^status in-area)
                (make fa-area ^id (call new-area-id) ^kind {area} ^seed <f>
                      ^nmembers 1 ^status growing))\n"
        )
        .unwrap();
    }
    // Growth: attach fragments consistent with the seed, in either
    // direction of the consistency record.
    let grows: &[(&str, &str)] = &[
        ("runway-area", "<< taxiway grassy-area tarmac runway >>"),
        (
            "terminal-area",
            "<< parking-apron access-road parking-lot terminal-building >>",
        ),
        ("hangar-area", "<< taxiway parking-apron >>"),
        ("storage-area", "<< tarmac fuel-tank >>"),
        // suburban domain
        ("house-lot", "<< driveway garage swimming-pool yard >>"),
        ("street-area", "<< street driveway >>"),
    ];
    for (i, (area, kinds)) in grows.iter().enumerate() {
        write!(
            s,
            "(p fa-grow-fwd-{i}
                (control ^phase fa)
                (fa-area ^id <a> ^kind {area} ^seed <f> ^nmembers <n> ^status growing)
                (consistent ^a <f> ^b <g>)
                (fragment ^id <g> ^kind {kinds} ^status hypothesised)
                -(fa-member ^area <a> ^frag <g>)
                -->
                (call fa-geom <f> <g>)
                (modify 4 ^status in-area)
                (make fa-member ^area <a> ^frag <g>)
                (modify 2 ^nmembers (compute <n> + 1)))\n"
        )
        .unwrap();
        write!(
            s,
            "(p fa-grow-rev-{i}
                (control ^phase fa)
                (fa-area ^id <a> ^kind {area} ^seed <f> ^nmembers <n> ^status growing)
                (consistent ^a <g> ^b <f>)
                (fragment ^id <g> ^kind {kinds} ^status hypothesised)
                -(fa-member ^area <a> ^frag <g>)
                -->
                (call fa-geom <f> <g>)
                (modify 4 ^status in-area)
                (make fa-member ^area <a> ^frag <g>)
                (modify 2 ^nmembers (compute <n> + 1)))\n"
        )
        .unwrap();
    }
    // Context-driven prediction: a grown runway area without grass predicts
    // grassy sub-areas ("the context of a runway functional area then
    // predicts that certain sub-areas ... are good candidates", §2.2).
    s.push_str(
        "(p fa-predict-grass
            (control ^phase fa)
            (fa-area ^id <a> ^kind runway-area ^status grown)
            -(prediction ^area <a> ^kind grassy-area)
            -->
            (make prediction ^area <a> ^kind grassy-area ^status open))\n",
    );
    s.push_str(
        "(p fa-predict-apron
            (control ^phase fa)
            (fa-area ^id <a> ^kind terminal-area ^status grown)
            -(prediction ^area <a> ^kind parking-apron)
            -->
            (make prediction ^area <a> ^kind parking-apron ^status open))\n",
    );
    // An area stops growing when no attachable fragment remains.
    s.push_str(
        "(p fa-area-grown
            (control ^phase fa)
            (fa-area ^id <a> ^status growing)
            -->
            (modify 2 ^status grown))\n",
    );
    s
}

/// MODEL: functional-area selection and stereo verification (§2.2: "other
/// forms of top-down activity include stereo verification to disambiguate
/// conflicting hypotheses in model-generation phase").
pub fn model_rules() -> String {
    let mut s = String::new();
    s.push_str(
        "(p model-init
            (control ^phase model)
            -(model)
            -->
            (make model ^id 1 ^score 0 ^areas 0 ^status building))\n",
    );
    s.push_str(
        "(p model-add-area
            (control ^phase model)
            (model ^id <m> ^score <s> ^areas <n> ^status building)
            (fa-area ^id <a> ^seed <sf> ^nmembers >= 2 ^status grown)
            -->
            (make model-area ^area <a> ^verified (call stereo-verify <a>))
            (modify 3 ^status in-model)
            (modify 2 ^score (compute <s> + (call area-score <sf>))
                      ^areas (compute <n> + 1)))\n",
    );
    s.push_str(
        "(p model-done
            (control ^phase model)
            (model ^id <m> ^status building)
            -(fa-area ^nmembers >= 2 ^status grown)
            -->
            (modify 2 ^status done))\n",
    );
    s
}

/// The complete SPAM program source.
pub fn spam_source() -> String {
    let mut s = declarations();
    s.push_str(&rtf_rules());
    s.push_str(&lcc_rules());
    s.push_str(&fa_rules());
    s.push_str(&model_rules());
    s
}

/// The parsed and compiled SPAM program, shared (cheaply, via `Arc`) by
/// every engine instance of a run — the full-phase engines and the hundreds
/// of task-process engines of SPAM/PSM alike.
#[derive(Clone)]
pub struct SpamProgram {
    /// Parsed program.
    pub program: std::sync::Arc<ops5::Program>,
    /// Compiled Rete chain specifications.
    pub compiled: std::sync::Arc<Vec<ops5::rete::compile::CompiledProduction>>,
    /// Rete configuration every [`SpamProgram::engine`] instance gets —
    /// full-phase engines and task-process engines alike, so a whole
    /// SPAM run can be replayed on the unshared network for comparison.
    pub config: ops5::ReteConfig,
}

impl SpamProgram {
    /// Parses and compiles the rule base.
    pub fn build() -> SpamProgram {
        let program =
            std::sync::Arc::new(ops5::Program::parse(&spam_source()).expect("SPAM rules parse"));
        let compiled = ops5::Engine::compile(&program).expect("SPAM rules compile");
        SpamProgram {
            program,
            compiled,
            config: ops5::ReteConfig::default(),
        }
    }

    /// Returns this program with a different default Rete configuration
    /// (applied to every subsequently created engine).
    pub fn with_config(mut self, config: ops5::ReteConfig) -> SpamProgram {
        self.config = config;
        self
    }

    /// Creates a fresh engine instance over the shared program.
    pub fn engine(&self) -> ops5::Engine {
        self.engine_with(self.config)
    }

    /// Creates a fresh engine with an explicit Rete sharing/indexing
    /// configuration. [`ops5::ReteConfig::unshared()`] rebuilds the
    /// historical one-chain-per-production, linear-scan network — the
    /// baseline the sharing/indexing experiments compare against (see
    /// `bench_rete` and `spamctl --unshared`).
    pub fn engine_with(&self, config: ops5::ReteConfig) -> ops5::Engine {
        ops5::Engine::with_compiled_config(
            std::sync::Arc::clone(&self.program),
            std::sync::Arc::clone(&self.compiled),
            config,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ops5::Program;

    #[test]
    fn full_program_parses() {
        let src = spam_source();
        let p = Program::parse(&src).unwrap_or_else(|e| panic!("{e}\n---\n{src}"));
        assert!(
            p.productions.len() >= 60,
            "expected a substantial rule base, got {}",
            p.productions.len()
        );
    }

    #[test]
    fn every_constraint_has_an_eval_production() {
        let p = Program::parse(&spam_source()).unwrap();
        for c in CONSTRAINTS {
            let name = format!("lcc-eval-c{}", c.id);
            assert!(p.production(ops5::sym(&name)).is_some(), "missing {name}");
        }
    }

    #[test]
    fn phases_have_their_gate() {
        for phase in ["rtf", "lcc", "fa", "model"] {
            let src = spam_source();
            assert!(
                src.contains(&format!("(control ^phase {phase})")),
                "{phase} rules must be gated"
            );
        }
    }
}
