//! The scene model: segmented regions and their spatial index.

use crate::fragments::FragmentKind;
use spam_geometry::{Aabb, GridIndex, Polygon, ShapeDescriptors};

/// One region of the input segmentation.
#[derive(Clone, Debug)]
pub struct Region {
    /// Region id (dense, 0-based).
    pub id: u32,
    /// Region outline in ground coordinates (metres).
    pub polygon: Polygon,
    /// Shape descriptors (computed once at scene construction).
    pub descriptors: ShapeDescriptors,
    /// Mean image intensity in `[0, 255]` (synthetic: dark tarmac, bright
    /// buildings, mid grass).
    pub intensity: f64,
    /// Ground truth from the generator (`None` for clutter). Used only for
    /// evaluation, never by the interpretation rules.
    pub truth: Option<FragmentKind>,
}

/// The scene type (§2.2: "Knowledge about the type of scene — airport,
/// suburban housing development, urban city — aids in low-level and
/// intermediate level image analysis"). Gates which classification
/// prototypes load into RTF working memory.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SceneDomain {
    /// Airport scene analysis (the paper's primary task area).
    Airport,
    /// Suburban house scene analysis (the second task area).
    Suburban,
}

/// A segmented aerial scene.
#[derive(Debug)]
pub struct Scene {
    /// Scene name (e.g. "SF").
    pub name: String,
    /// Scene type.
    pub domain: SceneDomain,
    /// All regions, indexed by id.
    pub regions: Vec<Region>,
    /// Scene bounds.
    pub bounds: Aabb,
    grid: GridIndex,
}

impl Scene {
    /// Builds a scene from regions (computes bounds and the spatial index).
    pub fn new(name: impl Into<String>, regions: Vec<Region>) -> Scene {
        let mut bounds = Aabb::EMPTY;
        for r in &regions {
            bounds = bounds.union(&r.polygon.bbox());
        }
        let mut grid = GridIndex::new(bounds, (regions.len() * 2).max(64));
        for r in &regions {
            let got = grid.insert(r.polygon.bbox());
            debug_assert_eq!(got, r.id, "grid ids must match region ids");
        }
        Scene {
            name: name.into(),
            domain: SceneDomain::Airport,
            regions,
            bounds,
            grid,
        }
    }

    /// Number of regions.
    pub fn len(&self) -> usize {
        self.regions.len()
    }

    /// True when the scene has no regions.
    pub fn is_empty(&self) -> bool {
        self.regions.is_empty()
    }

    /// Borrow a region by id.
    pub fn region(&self, id: u32) -> &Region {
        &self.regions[id as usize]
    }

    /// Region ids whose bounding boxes come within `gap` metres of region
    /// `id`'s box (excluding `id` itself) — the candidate set for pairwise
    /// constraint checks.
    pub fn neighbours(&self, id: u32, gap: f64) -> Vec<u32> {
        let bb = self.regions[id as usize].polygon.bbox();
        self.grid
            .query_within(&bb, gap)
            .into_iter()
            .filter(|&n| n != id)
            .collect()
    }

    /// Total scene area covered by regions (m²).
    pub fn covered_area(&self) -> f64 {
        self.regions.iter().map(|r| r.polygon.area()).sum()
    }
}

impl Region {
    /// Builds a region, computing its descriptors.
    pub fn new(id: u32, polygon: Polygon, intensity: f64, truth: Option<FragmentKind>) -> Region {
        let descriptors = ShapeDescriptors::of_polygon(&polygon);
        Region {
            id,
            polygon,
            descriptors,
            intensity,
            truth,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spam_geometry::Point;

    fn rect_region(id: u32, cx: f64, cy: f64, w: f64, h: f64) -> Region {
        Region::new(
            id,
            Polygon::axis_rect(Point::new(cx, cy), w, h),
            128.0,
            None,
        )
    }

    #[test]
    fn scene_indexes_regions() {
        let scene = Scene::new(
            "t",
            vec![
                rect_region(0, 0.0, 0.0, 100.0, 100.0),
                rect_region(1, 120.0, 0.0, 100.0, 100.0), // 20 m gap from 0
                rect_region(2, 5000.0, 5000.0, 10.0, 10.0),
            ],
        );
        assert_eq!(scene.len(), 3);
        let n = scene.neighbours(0, 50.0);
        assert_eq!(n, vec![1]);
        assert!(scene.neighbours(2, 50.0).is_empty());
        assert!(scene.covered_area() > 20_000.0);
    }

    #[test]
    fn descriptors_are_populated() {
        let r = rect_region(0, 0.0, 0.0, 2000.0, 50.0);
        assert!(r.descriptors.elongation > 30.0);
        assert!(r.descriptors.is_linear(10.0));
    }
}
