//! The airport-domain consistency knowledge base.
//!
//! §2.2: "knowledge of the structure or layout of the task domain ... is
//! used to provide spatial constraints for evaluating consistency among
//! fragment hypotheses. For example, *runways intersect taxiways* and
//! *terminal buildings are adjacent to parking apron* ... It is important
//! to assemble a large collection of such consistency knowledge".
//!
//! Each table entry becomes a family of OPS5 productions (generated in
//! [`crate::rules`]) plus a geometric predicate evaluated by an external
//! function ([`crate::externals`]).

use crate::fragments::FragmentKind::{self, *};

/// A spatial relation testable between two fragments.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Relation {
    /// The polygons intersect.
    Intersects,
    /// Boundary gap at most the parameter (metres).
    AdjacentTo,
    /// Centroid distance at most the parameter (metres).
    Near,
    /// Centroid distance at least the parameter (metres).
    FarFrom,
    /// Long axes within 10° and laterally offset at most the parameter.
    ParallelTo,
    /// Collinear continuation: aligned axes, small lateral offset, end gap
    /// at most the parameter.
    AlignedWith,
}

impl Relation {
    /// Stable rule/WM name.
    pub fn name(self) -> &'static str {
        match self {
            Relation::Intersects => "intersects",
            Relation::AdjacentTo => "adjacent-to",
            Relation::Near => "near",
            Relation::FarFrom => "far-from",
            Relation::ParallelTo => "parallel-to",
            Relation::AlignedWith => "aligned-with",
        }
    }

    /// Parses from the WM name.
    pub fn from_name(s: &str) -> Option<Relation> {
        [
            Relation::Intersects,
            Relation::AdjacentTo,
            Relation::Near,
            Relation::FarFrom,
            Relation::ParallelTo,
            Relation::AlignedWith,
        ]
        .into_iter()
        .find(|r| r.name() == s)
    }
}

/// One consistency constraint: *subject kind* REL *object kind* (param).
#[derive(Clone, Copy, Debug)]
pub struct Constraint {
    /// Constraint id (dense; the Level-2 task discriminator).
    pub id: u32,
    /// The kind whose hypotheses this constraint evaluates.
    pub subject: FragmentKind,
    /// The partner kind searched for in the neighbourhood.
    pub object: FragmentKind,
    /// Spatial relation to test.
    pub relation: Relation,
    /// Relation parameter (metres; meaning depends on the relation).
    pub param: f64,
    /// Support contributed to *both* fragments when the relation holds.
    pub weight: i64,
}

const fn c(
    id: u32,
    subject: FragmentKind,
    object: FragmentKind,
    relation: Relation,
    param: f64,
    weight: i64,
) -> Constraint {
    Constraint {
        id,
        subject,
        object,
        relation,
        param,
        weight,
    }
}

/// The constraint table (the paper's "large collection of consistency
/// knowledge"). Deliberately redundant in places — several constraints per
/// class — because LCC's cost and the support statistics both depend on
/// the breadth of the knowledge base.
pub const CONSTRAINTS: &[Constraint] = &[
    // --- runway structure
    c(0, Runway, Taxiway, Relation::Intersects, 0.0, 3),
    c(1, Runway, Taxiway, Relation::ParallelTo, 400.0, 2),
    c(2, Runway, GrassyArea, Relation::AdjacentTo, 25.0, 1),
    c(3, Runway, Runway, Relation::AlignedWith, 600.0, 2),
    c(4, Runway, Tarmac, Relation::AdjacentTo, 25.0, 1),
    c(5, Runway, TerminalBuilding, Relation::FarFrom, 230.0, 1),
    // --- taxiway structure
    c(6, Taxiway, Runway, Relation::Intersects, 0.0, 3),
    c(7, Taxiway, ParkingApron, Relation::AdjacentTo, 40.0, 2),
    c(8, Taxiway, Taxiway, Relation::Intersects, 0.0, 1),
    c(9, Taxiway, GrassyArea, Relation::AdjacentTo, 25.0, 1),
    c(10, Taxiway, Hangar, Relation::Near, 300.0, 1),
    // --- terminal area
    c(
        11,
        TerminalBuilding,
        ParkingApron,
        Relation::AdjacentTo,
        60.0,
        3,
    ),
    c(12, TerminalBuilding, AccessRoad, Relation::Near, 250.0, 2),
    c(13, TerminalBuilding, ParkingLot, Relation::Near, 300.0, 1),
    c(
        14,
        TerminalBuilding,
        TerminalBuilding,
        Relation::Near,
        400.0,
        1,
    ),
    // --- aprons and tarmac
    c(15, ParkingApron, Taxiway, Relation::AdjacentTo, 40.0, 2),
    c(
        16,
        ParkingApron,
        TerminalBuilding,
        Relation::AdjacentTo,
        60.0,
        3,
    ),
    c(17, ParkingApron, Hangar, Relation::AdjacentTo, 80.0, 1),
    c(18, Tarmac, Taxiway, Relation::AdjacentTo, 30.0, 1),
    c(19, Tarmac, Runway, Relation::AdjacentTo, 30.0, 1),
    // --- ground transport
    c(20, AccessRoad, TerminalBuilding, Relation::Near, 250.0, 2),
    c(21, AccessRoad, ParkingLot, Relation::AdjacentTo, 40.0, 2),
    c(22, AccessRoad, AccessRoad, Relation::Intersects, 0.0, 1),
    c(23, ParkingLot, AccessRoad, Relation::AdjacentTo, 40.0, 2),
    c(24, ParkingLot, TerminalBuilding, Relation::Near, 300.0, 1),
    // --- support structures
    c(25, Hangar, Taxiway, Relation::Near, 300.0, 2),
    c(26, Hangar, ParkingApron, Relation::AdjacentTo, 80.0, 1),
    c(27, FuelTank, Tarmac, Relation::Near, 250.0, 2),
    c(28, FuelTank, TerminalBuilding, Relation::FarFrom, 230.0, 1),
    c(29, FuelTank, FuelTank, Relation::Near, 150.0, 1),
    // --- open areas
    c(30, GrassyArea, Runway, Relation::AdjacentTo, 25.0, 1),
    c(31, GrassyArea, Taxiway, Relation::AdjacentTo, 25.0, 1),
    // --- second-order layout knowledge
    c(32, Runway, ParkingLot, Relation::FarFrom, 230.0, 1),
    c(33, Taxiway, Taxiway, Relation::ParallelTo, 300.0, 1),
    c(34, AccessRoad, ParkingApron, Relation::Near, 400.0, 1),
    c(35, GrassyArea, GrassyArea, Relation::Near, 250.0, 1),
    c(36, Tarmac, Hangar, Relation::Near, 350.0, 1),
    c(37, ParkingApron, ParkingApron, Relation::Near, 600.0, 1),
    c(38, TerminalBuilding, Runway, Relation::FarFrom, 230.0, 1),
    c(39, Hangar, Hangar, Relation::Near, 300.0, 1),
    // --- suburban domain (the paper's second task area) ---
    c(40, House, Driveway, Relation::AdjacentTo, 8.0, 3),
    c(41, House, Street, Relation::Near, 60.0, 2),
    c(42, House, House, Relation::Near, 90.0, 1),
    c(43, House, Yard, Relation::AdjacentTo, 10.0, 2),
    c(44, Driveway, Street, Relation::AdjacentTo, 6.0, 3),
    c(45, Driveway, House, Relation::AdjacentTo, 8.0, 2),
    c(46, Driveway, Garage, Relation::AdjacentTo, 8.0, 1),
    c(47, Street, Street, Relation::Intersects, 0.0, 2),
    c(48, Street, Driveway, Relation::AdjacentTo, 6.0, 1),
    c(49, Street, Street, Relation::ParallelTo, 150.0, 1),
    c(50, Garage, House, Relation::Near, 35.0, 2),
    c(51, SwimmingPool, House, Relation::Near, 50.0, 2),
    c(52, SwimmingPool, Yard, Relation::AdjacentTo, 12.0, 1),
    c(53, Yard, House, Relation::AdjacentTo, 10.0, 2),
    c(54, Yard, Street, Relation::Near, 70.0, 1),
    c(55, Garage, Driveway, Relation::AdjacentTo, 8.0, 1),
];

/// Constraints whose subject is `kind` (one Level-3 task applies all of
/// these to one object).
pub fn constraints_for(kind: FragmentKind) -> impl Iterator<Item = &'static Constraint> {
    CONSTRAINTS.iter().filter(move |c| c.subject == kind)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fragments::ALL_KINDS;

    #[test]
    fn ids_are_dense_and_ordered() {
        for (i, c) in CONSTRAINTS.iter().enumerate() {
            assert_eq!(c.id as usize, i);
        }
    }

    #[test]
    fn every_kind_has_constraints() {
        for k in ALL_KINDS {
            assert!(
                constraints_for(k).count() >= 2,
                "{k} needs at least two constraints for a meaningful Level-2 decomposition"
            );
        }
    }

    #[test]
    fn relation_names_round_trip() {
        for c in CONSTRAINTS {
            assert_eq!(Relation::from_name(c.relation.name()), Some(c.relation));
        }
    }

    #[test]
    fn parameters_are_sane() {
        for c in CONSTRAINTS {
            assert!(c.param >= 0.0 && c.param < 10_000.0);
            assert!(c.weight >= 1);
        }
    }
}
