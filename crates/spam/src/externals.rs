//! External RHS functions: the task-related computation outside the match.
//!
//! The original SPAM "forks independent processes to perform geometric
//! computations in the RHS" (Lisp) — the ported baseline replaced them with
//! C function calls (§6). These Rust closures play that role: they really
//! compute the geometry (over [`spam_geometry`]) *and* report a
//! deterministic cost in work units calibrated to paper-era hardware, which
//! is what makes SPAM's profile unusual: "while many production systems
//! spend up to 90 % of their time in match, SPAM spends only about 30-50 %
//! of its time there" (§1).

use crate::constraints::{Relation, CONSTRAINTS};
use crate::fragments::{FragmentHypothesis, FragmentKind};
use crate::scene::Scene;
use ops5::{sym, Effects, Engine, Value};
use spam_geometry::{aligned, collinearity, Obb, ADJACENCY_GAP};
use std::sync::atomic::Ordering;
use std::sync::Arc;

/// Shared context captured by the external functions.
#[derive(Clone)]
pub struct ExternalCtx {
    /// The scene (regions + spatial index).
    pub scene: Arc<Scene>,
    /// Fragment table indexed by fragment id (empty during RTF, which
    /// creates the fragments).
    pub fragments: Arc<Vec<FragmentHypothesis>>,
    /// Base for ids handed out by `new-frag-id` (RTF task processes get
    /// disjoint ranges so ids stay globally unique).
    pub id_base: i64,
}

/// Cost model for the external (task-related) computation, in work units.
/// Calibrated so the LCC phase lands in the paper's 30–50 % match band and
/// RTF near 60 % (§6.5).
pub mod cost {
    /// Base cost of any external invocation (call + marshalling).
    pub const CALL: u64 = 150;
    /// Low-level feature measurement per region vertex.
    pub const MEASURE_PER_VERTEX: u64 = 520;
    /// Pairwise predicate: per edge-pair examined.
    pub const EDGE_PAIR: u64 = 70;
    /// OBB/alignment computation per vertex.
    pub const OBB_PER_VERTEX: u64 = 150;
    /// Centroid-distance test.
    pub const CENTROID: u64 = 1500;
    /// Per-task initialisation of the local-consistency machinery (§9
    /// names the LCC "initialization subphase" as a large cost).
    pub const LCC_INIT: u64 = 2500;
    /// Per-constraint-application set-up (loading the constraint's
    /// geometric context).
    pub const LCC_INIT_CHECK: u64 = 5000;
    /// Functional-area geometry per attach.
    pub const FA_GEOM: u64 = 2600;
    /// Stereo verification per area (expensive imagery operation).
    pub const STEREO: u64 = 80_000;
    /// Model scoring per area.
    pub const SCORE: u64 = 1_500;
}

fn int(v: &Value) -> i64 {
    v.as_int().unwrap_or(-1)
}

/// Registers the full external-function suite on an engine.
pub fn register(engine: &mut Engine, ctx: ExternalCtx) {
    // Engine-registered named counters: their values ride in snapshots, so
    // a restored engine resumes id allocation where the crashed run left
    // off instead of restarting at `id_base`.
    let frag_counter = engine.external_counter("frag-id", ctx.id_base);
    let check_counter = engine.external_counter("check-id", ctx.id_base);
    let area_counter = engine.external_counter("area-id", ctx.id_base);

    // --- id generators -----------------------------------------------------
    {
        let c = Arc::clone(&frag_counter);
        engine.register_external(
            "new-frag-id",
            Arc::new(move |_, eff: &mut Effects| {
                eff.cost = 20;
                Some(Value::Int(c.fetch_add(1, Ordering::Relaxed)))
            }),
        );
    }
    {
        let c = Arc::clone(&check_counter);
        engine.register_external(
            "new-check-id",
            Arc::new(move |_, eff| {
                eff.cost = 20;
                Some(Value::Int(c.fetch_add(1, Ordering::Relaxed)))
            }),
        );
    }
    {
        let c = Arc::clone(&area_counter);
        engine.register_external(
            "new-area-id",
            Arc::new(move |_, eff| {
                eff.cost = 20;
                Some(Value::Int(c.fetch_add(1, Ordering::Relaxed)))
            }),
        );
    }

    // --- RTF ---------------------------------------------------------------
    {
        let scene = Arc::clone(&ctx.scene);
        engine.register_external(
            "measure-region",
            Arc::new(move |args, eff| {
                let r = int(&args[0]);
                if let Some(region) = scene.regions.get(r as usize) {
                    eff.cost = cost::CALL + cost::MEASURE_PER_VERTEX * region.polygon.len() as u64;
                } else {
                    eff.cost = cost::CALL;
                }
                None
            }),
        );
    }
    {
        let scene = Arc::clone(&ctx.scene);
        engine.register_external(
            "rtf-conf",
            Arc::new(move |args, eff| {
                eff.cost = cost::CALL + 900;
                let r = int(&args[0]);
                // A non-negative third argument is a preset confidence
                // (weak prototype envelopes).
                if let Some(preset) = args.get(2).and_then(|v| v.as_f64()) {
                    if preset >= 0.0 {
                        return Some(Value::Float(preset));
                    }
                }
                let kind = args[1]
                    .as_sym()
                    .and_then(|s| FragmentKind::from_name(&s.name()));
                let Some(region) = scene.regions.get(r as usize) else {
                    return Some(Value::Float(0.0));
                };
                // Confidence: a smooth function of how prototypical the
                // descriptors are for the class.
                let d = &region.descriptors;
                let conf = match kind {
                    Some(FragmentKind::Runway) => {
                        sigmoid((d.elongation - 8.0) / 8.0) * sigmoid((d.length - 1500.0) / 500.0)
                    }
                    Some(FragmentKind::Taxiway) => {
                        sigmoid((d.elongation - 8.0) / 6.0) * sigmoid((45.0 - d.width) / 10.0)
                    }
                    Some(FragmentKind::AccessRoad) => sigmoid((d.elongation - 10.0) / 8.0),
                    Some(FragmentKind::TerminalBuilding) => {
                        sigmoid((region.intensity - 165.0) / 20.0)
                            * sigmoid((d.area - 4000.0) / 2000.0)
                    }
                    Some(FragmentKind::FuelTank) => sigmoid((d.compactness - 0.65) / 0.1),
                    _ => 0.6,
                };
                Some(Value::Float((conf * 1000.0).round() / 1000.0))
            }),
        );
    }

    // --- LCC ----------------------------------------------------------------
    {
        let scene = Arc::clone(&ctx.scene);
        let fragments = Arc::clone(&ctx.fragments);
        engine.register_external(
            "lcc-check-pair",
            Arc::new(move |args, eff| {
                let cid = int(&args[0]) as usize;
                let f = int(&args[1]);
                let g = int(&args[2]);
                let Some(constraint) = CONSTRAINTS.get(cid) else {
                    eff.cost = cost::CALL;
                    return Some(Value::symbol("no"));
                };
                let (Some(fa), Some(fb)) = (fragments.get(f as usize), fragments.get(g as usize))
                else {
                    eff.cost = cost::CALL;
                    return Some(Value::symbol("no"));
                };
                let pa = &scene.regions[fa.region as usize].polygon;
                let pb = &scene.regions[fb.region as usize].polygon;
                // Locality guard: constraints are *local* consistency
                // checks (the phase's name); partners beyond the relation's
                // own reach are rejected before any geometry runs. Because
                // the guard is a pure function of the pair, the result is
                // independent of the task decomposition level.
                if pa.bbox().distance_to(&pb.bbox()) > relation_radius(constraint) {
                    eff.cost = cost::CALL;
                    return Some(Value::symbol("no"));
                }
                let (holds, geom_cost) =
                    eval_relation(constraint.relation, constraint.param, pa, pb);
                eff.cost = cost::CALL + geom_cost;
                if holds {
                    eff.makes.push((
                        sym("consistent"),
                        vec![
                            (sym("a"), Value::Int(f)),
                            (sym("b"), Value::Int(g)),
                            (sym("rel"), Value::symbol(constraint.relation.name())),
                            (sym("weight"), Value::Int(constraint.weight)),
                        ],
                    ));
                }
                Some(Value::symbol(if holds { "yes" } else { "no" }))
            }),
        );
    }

    engine.register_external(
        "lcc-init",
        Arc::new(move |_, eff| {
            eff.cost = cost::LCC_INIT;
            None
        }),
    );
    engine.register_external(
        "lcc-init-check",
        Arc::new(move |_, eff| {
            eff.cost = cost::LCC_INIT_CHECK;
            None
        }),
    );

    // --- FA / MODEL ----------------------------------------------------------
    engine.register_external(
        "fa-geom",
        Arc::new(move |_, eff| {
            eff.cost = cost::FA_GEOM;
            None
        }),
    );
    engine.register_external(
        "stereo-verify",
        Arc::new(move |_, eff| {
            eff.cost = cost::STEREO;
            Some(Value::symbol("yes"))
        }),
    );
    {
        let fragments = Arc::clone(&ctx.fragments);
        engine.register_external(
            "area-score",
            Arc::new(move |args, eff| {
                eff.cost = cost::SCORE;
                let a = int(&args[0]);
                // Score grows with the seed fragment's accumulated support.
                let s = fragments
                    .get(a as usize)
                    .map(|f| f.support)
                    .unwrap_or(1)
                    .max(1);
                Some(Value::Int(s))
            }),
        );
    }
}

fn sigmoid(x: f64) -> f64 {
    1.0 / (1.0 + (-x).exp())
}

/// The bounding-box distance beyond which a constraint's relation cannot
/// possibly hold (or, for `far-from`, beyond which it holds trivially and
/// carries no information). Pairs past this reach are rejected without
/// running the geometry.
pub fn relation_radius(c: &crate::constraints::Constraint) -> f64 {
    match c.relation {
        Relation::Intersects => 40.0,
        Relation::AdjacentTo => c.param + 40.0,
        Relation::Near | Relation::FarFrom => c.param + 40.0,
        Relation::ParallelTo => c.param + 250.0,
        Relation::AlignedWith => c.param + 250.0,
    }
}

/// Evaluates a spatial relation between two region polygons, returning the
/// verdict and the (deterministic) geometric cost in work units.
pub fn eval_relation(
    rel: Relation,
    param: f64,
    pa: &spam_geometry::Polygon,
    pb: &spam_geometry::Polygon,
) -> (bool, u64) {
    let edge_pairs = (pa.len() * pb.len()) as u64;
    match rel {
        Relation::Intersects => (pa.intersects(pb), cost::EDGE_PAIR * edge_pairs),
        Relation::AdjacentTo => {
            let gap = if param > 0.0 { param } else { ADJACENCY_GAP };
            (pa.adjacent_to(pb, gap), cost::EDGE_PAIR * edge_pairs * 2)
        }
        Relation::Near => {
            let d = pa.centroid().distance(pb.centroid());
            (d <= param, cost::CENTROID)
        }
        Relation::FarFrom => {
            let d = pa.centroid().distance(pb.centroid());
            (d >= param, cost::CENTROID)
        }
        Relation::ParallelTo => {
            let (oa, ob) = (Obb::of_points(pa.vertices()), Obb::of_points(pb.vertices()));
            let c = cost::OBB_PER_VERTEX * (pa.len() + pb.len()) as u64;
            match (oa, ob) {
                (Some(oa), Some(ob)) => {
                    let r = collinearity(&oa, &ob);
                    (
                        r.angle_diff < 0.18 && r.lateral_offset <= param && r.end_gap < param,
                        c,
                    )
                }
                _ => (false, c),
            }
        }
        Relation::AlignedWith => {
            let (oa, ob) = (Obb::of_points(pa.vertices()), Obb::of_points(pb.vertices()));
            let c = cost::OBB_PER_VERTEX * (pa.len() + pb.len()) as u64;
            match (oa, ob) {
                (Some(oa), Some(ob)) => (aligned(&oa, &ob, 0.1, 60.0, param), c),
                _ => (false, c),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spam_geometry::{Point, Polygon};

    #[test]
    fn relations_evaluate_on_real_geometry() {
        let runway = Polygon::oriented_rect(Point::new(0.0, 0.0), 3000.0, 50.0, 0.0);
        let connector = Polygon::oriented_rect(
            Point::new(0.0, 80.0),
            200.0,
            18.0,
            std::f64::consts::FRAC_PI_2,
        );
        let taxi = Polygon::oriented_rect(Point::new(0.0, 180.0), 2500.0, 25.0, 0.0);
        let piece2 = Polygon::oriented_rect(Point::new(1750.0, 0.0), 300.0, 50.0, 0.0);

        assert!(eval_relation(Relation::Intersects, 0.0, &runway, &connector).0);
        assert!(!eval_relation(Relation::Intersects, 0.0, &runway, &taxi).0);
        assert!(eval_relation(Relation::ParallelTo, 400.0, &runway, &taxi).0);
        assert!(eval_relation(Relation::AlignedWith, 600.0, &runway, &piece2).0);
        assert!(eval_relation(Relation::Near, 300.0, &runway, &taxi).0);
        assert!(eval_relation(Relation::FarFrom, 5000.0, &runway, &taxi).1 > 0);
    }

    #[test]
    fn costs_scale_with_vertex_count() {
        let a = Polygon::regular(Point::new(0.0, 0.0), 10.0, 8);
        let b = Polygon::regular(Point::new(100.0, 0.0), 10.0, 16);
        let (_, c1) = eval_relation(Relation::Intersects, 0.0, &a, &a.clone());
        let (_, c2) = eval_relation(Relation::Intersects, 0.0, &a, &b);
        assert!(c2 > c1);
    }
}
