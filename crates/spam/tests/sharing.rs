//! Shared+indexed vs unshared-network differential over the real SPAM
//! phases: the network configuration must never change *what* the system
//! computes — hypotheses, firings, serial work — only how much match work
//! it takes, and the shared network must take substantially less (the
//! point of Rete sharing and memory indexing).

use spam::datasets;
use spam::generate::generate_scene;
use spam::lcc::{run_lcc, Level};
use spam::rtf::run_rtf;
use spam::rules::SpamProgram;
use std::sync::Arc;

fn programs() -> (SpamProgram, SpamProgram) {
    let shared = SpamProgram::build();
    let unshared = shared.clone().with_config(ops5::ReteConfig::unshared());
    (shared, unshared)
}

#[test]
fn rtf_results_are_network_independent() {
    let (sp_s, sp_u) = programs();
    let scene = Arc::new(generate_scene(&datasets::dc().spec));
    let s = run_rtf(&sp_s, &scene);
    let u = run_rtf(&sp_u, &scene);
    assert_eq!(s.fragments, u.fragments, "hypotheses diverge");
    assert_eq!(s.firings, u.firings, "firing counts diverge");
    // Serial-side work is identical; only match work may differ.
    assert_eq!(s.work.resolve_units, u.work.resolve_units);
    assert_eq!(s.work.act_units, u.work.act_units);
    assert_eq!(s.work.external_units, u.work.external_units);
    assert!(
        s.work.match_units <= u.work.match_units,
        "shared RTF match {} exceeds unshared {}",
        s.work.match_units,
        u.work.match_units
    );
}

#[test]
fn lcc_results_are_network_independent() {
    // L2 — the fine-grained decomposition the pipeline uses — exercises
    // hundreds of small task engines, including the negated-condition
    // paths; the network configuration must not change any output.
    let (sp_s, sp_u) = programs();
    let scene = Arc::new(generate_scene(&datasets::dc().spec));
    let frags = Arc::new(run_rtf(&sp_s, &scene).fragments);
    let s = run_lcc(&sp_s, &scene, &frags, Level::L2);
    let u = run_lcc(&sp_u, &scene, &frags, Level::L2);
    assert_eq!(s.fragments, u.fragments, "support totals diverge");
    assert_eq!(s.consistents, u.consistents, "consistency records diverge");
    assert_eq!(s.firings, u.firings, "firing counts diverge");
    assert_eq!(s.work.resolve_units, u.work.resolve_units);
    assert_eq!(s.work.act_units, u.work.act_units);
    assert_eq!(s.work.external_units, u.work.external_units);
    assert!(
        s.work.match_units <= u.work.match_units,
        "shared LCC match {} exceeds unshared {}",
        s.work.match_units,
        u.work.match_units
    );
}

#[test]
fn sharing_cuts_lcc_match_work() {
    // The quadratic-hot-path acceptance bar, measured where the quadratic
    // actually lives: at the coarse L4 decomposition one engine holds the
    // whole kind's working memory, so the unshared network's linear token
    // and alpha-memory scans dominate. (Finer decompositions shrink the
    // memories *by splitting the task* — task-level parallelism and match
    // indexing attack the same quadratic — so their reduction is smaller:
    // ~23% at L2 vs ~70% here on DC.)
    let (sp_s, sp_u) = programs();
    let scene = Arc::new(generate_scene(&datasets::dc().spec));
    let frags = Arc::new(run_rtf(&sp_s, &scene).fragments);
    let s = run_lcc(&sp_s, &scene, &frags, Level::L4);
    let u = run_lcc(&sp_u, &scene, &frags, Level::L4);
    assert_eq!(s.fragments, u.fragments, "support totals diverge");
    assert_eq!(s.firings, u.firings, "firing counts diverge");
    let reduction = (u.work.match_units - s.work.match_units) as f64 / u.work.match_units as f64;
    assert!(
        reduction >= 0.25,
        "LCC match reduction {:.1}% (shared {} vs unshared {})",
        reduction * 100.0,
        s.work.match_units,
        u.work.match_units
    );
}
