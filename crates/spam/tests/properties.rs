//! Property-based tests for the SPAM system.

use proptest::prelude::*;
use spam::constraints::{constraints_for, Relation, CONSTRAINTS};
use spam::externals::{eval_relation, relation_radius};
use spam::generate::AirportSpec;
use spam::lcc::{decompose, Level};
use spam_geometry::{Point, Polygon};

fn rect() -> impl Strategy<Value = Polygon> {
    (
        -500.0..500.0f64,
        -500.0..500.0f64,
        5.0..400.0f64,
        5.0..100.0f64,
        0.0..std::f64::consts::PI,
    )
        .prop_map(|(x, y, l, w, a)| Polygon::oriented_rect(Point::new(x, y), l, w, a))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The per-relation locality radius is sound: beyond it, positive
    /// relations can never hold (far-from is excluded — it holds trivially
    /// out there, which is why the guard rejects it as uninformative).
    #[test]
    fn relation_radius_is_a_sound_reject(a in rect(), b in rect()) {
        for c in CONSTRAINTS {
            if c.relation == Relation::FarFrom {
                continue;
            }
            let d = a.bbox().distance_to(&b.bbox());
            if d > relation_radius(c) {
                let (holds, _) = eval_relation(c.relation, c.param, &a, &b);
                prop_assert!(
                    !holds,
                    "{:?} param {} held at bbox distance {d:.1} (> radius {:.1})",
                    c.relation, c.param, relation_radius(c)
                );
            }
        }
    }

    /// Relations are deterministic and their reported cost is stable.
    #[test]
    fn eval_relation_is_deterministic(a in rect(), b in rect()) {
        for c in CONSTRAINTS.iter().take(12) {
            let r1 = eval_relation(c.relation, c.param, &a, &b);
            let r2 = eval_relation(c.relation, c.param, &a, &b);
            prop_assert_eq!(r1, r2);
            prop_assert!(r1.1 > 0);
        }
    }

    /// Scene generation never produces degenerate regions, for any seed.
    #[test]
    fn generator_is_robust_across_seeds(seed in 0u64..5000) {
        let spec = AirportSpec { seed, ..spam::datasets::dc().spec };
        let scene = spam::generate_scene(&spec);
        prop_assert!(scene.len() > 50);
        for r in &scene.regions {
            prop_assert!(r.polygon.area() > 0.5, "region {} area {}", r.id, r.polygon.area());
            prop_assert!(r.intensity >= 0.0 && r.intensity <= 255.0);
            prop_assert!(r.descriptors.elongation >= 1.0);
            prop_assert!(r.descriptors.compactness > 0.0 && r.descriptors.compactness <= 1.0);
        }
    }
}

/// Decomposition invariants hold on a real scene at every level (not a
/// proptest — generation + RTF dominate the cost, one case suffices and is
/// fully deterministic).
#[test]
fn decomposition_partitions_the_work() {
    let sp = spam::rules::SpamProgram::build();
    let scene = std::sync::Arc::new(spam::generate_scene(&spam::datasets::dc().spec));
    let rtf = spam::rtf::run_rtf(&sp, &scene);
    let frags = rtf.fragments;

    // L3: exactly one task per fragment, ids distinct.
    let l3 = decompose(&scene, &frags, Level::L3);
    assert_eq!(l3.len(), frags.len());

    // L2: exactly Σ constraints_for(kind) tasks, and the (frag, constraint)
    // pairs are unique.
    let l2 = decompose(&scene, &frags, Level::L2);
    let expected: usize = frags.iter().map(|f| constraints_for(f.kind).count()).sum();
    assert_eq!(l2.len(), expected);
    let mut pairs: Vec<(u32, u32)> = l2
        .iter()
        .map(|u| match u {
            spam::lcc::LccUnit::ObjectConstraint(f, c) => (*f, *c),
            other => panic!("unexpected unit {other:?}"),
        })
        .collect();
    pairs.sort_unstable();
    let n = pairs.len();
    pairs.dedup();
    assert_eq!(pairs.len(), n, "L2 units must be unique");

    // L1: every pair unit's constraint subject matches the fragment's kind
    // and the partner's kind matches the constraint object.
    let l1 = decompose(&scene, &frags, Level::L1);
    assert!(l1.len() > l2.len());
    for u in &l1 {
        if let spam::lcc::LccUnit::Pair {
            frag,
            constraint,
            other,
        } = u
        {
            let c = &CONSTRAINTS[*constraint as usize];
            assert_eq!(frags[*frag as usize].kind, c.subject);
            assert_eq!(frags[*other as usize].kind, c.object);
            assert_ne!(frag, other);
        } else {
            panic!("unexpected unit {u:?}");
        }
    }

    // L4: one task per kind present, covering all fragments.
    let l4 = decompose(&scene, &frags, Level::L4);
    let kinds: std::collections::BTreeSet<_> = frags.iter().map(|f| f.kind).collect();
    assert_eq!(l4.len(), kinds.len());
}
