//! Property-based tests of the discrete-event simulator.

use multimax_sim::{
    mp_speedup_curve, simulate, simulate_mp, MpConfig, MpPolicy, Schedule, SimConfig, Task, TaskSet,
};
use proptest::prelude::*;

fn tasks_strategy() -> impl Strategy<Value = Vec<Task>> {
    prop::collection::vec(0.01f64..20.0, 1..120).prop_map(|services| {
        services
            .into_iter()
            .enumerate()
            .map(|(i, s)| Task::new(i as u32, s))
            .collect()
    })
}

fn cheap(n: u32) -> SimConfig {
    let mut c = SimConfig::encore(n);
    c.dequeue_overhead = 0.0;
    c.fork_overhead = 0.0;
    c
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn busy_time_is_conserved(tasks in tasks_strategy(), n in 1u32..14) {
        let expected: f64 = tasks.iter().map(|t| t.service).sum();
        let r = simulate(&cheap(n), &tasks);
        prop_assert!((r.busy.iter().sum::<f64>() - expected).abs() < 1e-6);
        prop_assert_eq!(r.tasks_executed.iter().sum::<u32>() as usize, tasks.len());
        prop_assert_eq!(r.completions.len(), tasks.len());
    }

    #[test]
    fn makespan_bounds_hold(tasks in tasks_strategy(), n in 1u32..14) {
        let total: f64 = tasks.iter().map(|t| t.service).sum();
        let longest = tasks.iter().map(|t| t.service).fold(0.0f64, f64::max);
        let r = simulate(&cheap(n), &tasks);
        // Classic bounds: max(total/n, longest) <= makespan <= total.
        prop_assert!(r.makespan + 1e-9 >= total / n as f64);
        prop_assert!(r.makespan + 1e-9 >= longest);
        prop_assert!(r.makespan <= total + 1e-9);
        // List scheduling's Graham bound: <= total/n + longest.
        prop_assert!(r.makespan <= total / n as f64 + longest + 1e-9);
    }

    #[test]
    fn speedup_never_exceeds_processors(tasks in tasks_strategy(), n in 1u32..14) {
        let base = simulate(&cheap(1), &tasks).makespan;
        let r = simulate(&cheap(n), &tasks);
        prop_assert!(base / r.makespan <= n as f64 + 1e-9);
    }

    #[test]
    fn lpt_beats_or_matches_fifo_and_spt_is_legal(tasks in tasks_strategy(), n in 2u32..14) {
        let fifo = simulate(&cheap(n), &tasks).makespan;
        let lpt = simulate(
            &SimConfig { schedule: Schedule::Lpt, ..cheap(n) },
            &tasks,
        )
        .makespan;
        // LPT's 4/3 bound vs the FIFO list schedule: LPT can't be much
        // worse than FIFO's own Graham bound.
        let total: f64 = tasks.iter().map(|t| t.service).sum();
        let longest = tasks.iter().map(|t| t.service).fold(0.0f64, f64::max);
        prop_assert!(lpt <= total / n as f64 + longest + 1e-9);
        // And in the common case it helps:
        prop_assert!(lpt <= fifo * 1.35 + 1e-9);
    }

    #[test]
    fn overheads_only_slow_things_down(tasks in tasks_strategy(), n in 1u32..14) {
        let free = simulate(&cheap(n), &tasks).makespan;
        let real = simulate(&SimConfig::encore(n), &tasks).makespan;
        prop_assert!(real + 1e-9 >= free);
    }

    #[test]
    fn mp_work_is_conserved(tasks in tasks_strategy(), n in 1u32..14) {
        let expected: f64 = tasks.iter().map(|t| t.service).sum();
        for policy in [MpPolicy::Static, MpPolicy::DemandDriven] {
            let r = simulate_mp(&MpConfig::classic(n, policy), &tasks);
            prop_assert!((r.busy.iter().sum::<f64>() - expected).abs() < 1e-6);
        }
    }

    #[test]
    fn mp_curves_start_at_one(tasks in tasks_strategy()) {
        for policy in [MpPolicy::Static, MpPolicy::DemandDriven] {
            let curve = mp_speedup_curve(&tasks, policy, 4);
            prop_assert!((curve[0].1 - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn lognormal_tasksets_hit_target_mean(mean in 0.5f64..10.0, cv in 0.0f64..1.0, seed in 0u64..1000) {
        let ts = TaskSet::lognormal(4000, mean, cv, seed);
        prop_assert!((ts.mean() - mean).abs() / mean < 0.15,
            "mean {} target {}", ts.mean(), mean);
        prop_assert!(ts.tasks.iter().all(|t| t.service > 0.0));
    }

    #[test]
    fn match_speedup_shrinks_service_monotonically(
        service in 0.1f64..50.0,
        mf in 0.0f64..1.0,
        s1 in 1.0f64..8.0,
        s2 in 1.0f64..8.0,
    ) {
        let t = Task::with_match(0, service, mf);
        let (lo, hi) = if s1 <= s2 { (s1, s2) } else { (s2, s1) };
        prop_assert!(t.service_with_match_speedup(hi) <= t.service_with_match_speedup(lo) + 1e-12);
        prop_assert!(t.service_with_match_speedup(lo) <= service + 1e-12);
        // Never below the non-match floor.
        prop_assert!(t.service_with_match_speedup(1e9) + 1e-9 >= service * (1.0 - mf));
    }
}
