//! Machine descriptions: clusters of processors.

/// One shared-memory machine ("Encore").
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ClusterConfig {
    /// Total processors on the cluster.
    pub processors: u32,
    /// Processors occupied by the OS kernel / SVM server and unavailable to
    /// task processes (§5.2 reserves one for the control process and one
    /// for the operating system; §7 reports ≈2 per Encore under SVM).
    pub reserved: u32,
}

impl ClusterConfig {
    /// Processors usable by task processes.
    pub fn usable(&self) -> u32 {
        self.processors.saturating_sub(self.reserved)
    }
}

/// A machine: one local cluster, optionally coupled to a remote cluster via
/// shared virtual memory.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Machine {
    /// The cluster holding the task queue and the initial working memory.
    pub local: ClusterConfig,
    /// The remote cluster reached through the network SVM (Figure 9's
    /// second Encore), if any.
    pub remote: Option<ClusterConfig>,
}

impl Machine {
    /// The paper's base platform: one 16-processor Encore Multimax with one
    /// processor for the control process and one for the OS, leaving 14 for
    /// task/match processes (§5.2).
    pub fn encore_multimax() -> Machine {
        Machine {
            local: ClusterConfig {
                processors: 16,
                reserved: 2,
            },
            remote: None,
        }
    }

    /// The §7 platform: two 16-processor Encores under the shared-memory
    /// server; the Mach kernel + SVM occupy about 2 processors on each, and
    /// the paper could drive at most 13 + 9 = 22 task processes.
    pub fn dual_encore_svm() -> Machine {
        Machine {
            local: ClusterConfig {
                processors: 16,
                reserved: 3,
            },
            remote: Some(ClusterConfig {
                processors: 16,
                reserved: 3,
            }),
        }
    }

    /// Total usable task processors.
    pub fn usable(&self) -> u32 {
        self.local.usable() + self.remote.map_or(0, |c| c.usable())
    }

    /// Whether worker index `w` (0-based, local cluster filled first) runs
    /// on the remote cluster.
    pub fn is_remote(&self, w: u32) -> bool {
        w >= self.local.usable()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encore_has_14_usable() {
        let m = Machine::encore_multimax();
        assert_eq!(m.usable(), 14);
        assert!(!m.is_remote(13));
    }

    #[test]
    fn dual_encore_worker_placement() {
        let m = Machine::dual_encore_svm();
        assert_eq!(m.usable(), 26);
        assert!(!m.is_remote(12));
        assert!(m.is_remote(13));
        assert!(m.is_remote(21));
    }

    #[test]
    fn reserved_saturates() {
        let c = ClusterConfig {
            processors: 2,
            reserved: 5,
        };
        assert_eq!(c.usable(), 0);
    }
}
