//! Task sets: construction, synthesis, and the paper's per-level statistics.

use crate::task::{Task, TaskId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A set of independent tasks forming one phase's queue.
#[derive(Clone, Debug, Default)]
pub struct TaskSet {
    /// The tasks, in queue order.
    pub tasks: Vec<Task>,
}

impl TaskSet {
    /// Wraps an explicit task list.
    pub fn new(tasks: Vec<Task>) -> TaskSet {
        TaskSet { tasks }
    }

    /// Builds a task set from measured service times (the trace-driven
    /// path: times come from real engine runs).
    pub fn from_services(services: &[f64]) -> TaskSet {
        TaskSet {
            tasks: services
                .iter()
                .enumerate()
                .map(|(i, &s)| Task::new(i as TaskId, s))
                .collect(),
        }
    }

    /// Synthesises `n` tasks with a lognormal service distribution of the
    /// given `mean` and coefficient of variance `cv`, deterministically
    /// seeded. Used to reproduce Tables 5–7 style workloads directly from
    /// the published statistics when cross-checking the trace-driven path.
    pub fn lognormal(n: usize, mean: f64, cv: f64, seed: u64) -> TaskSet {
        assert!(mean > 0.0 && cv >= 0.0);
        let mut rng = StdRng::seed_from_u64(seed);
        // Lognormal parameters from mean m and cv c:
        //   sigma² = ln(1 + c²),  mu = ln(m) − sigma²/2.
        let sigma2 = (1.0 + cv * cv).ln();
        let sigma = sigma2.sqrt();
        let mu = mean.ln() - sigma2 / 2.0;
        let tasks = (0..n)
            .map(|i| {
                // Box–Muller from two uniforms (keeps us off external
                // distribution crates).
                let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
                let u2: f64 = rng.gen_range(0.0..1.0);
                let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
                Task::new(i as TaskId, (mu + sigma * z).exp())
            })
            .collect();
        TaskSet { tasks }
    }

    /// Number of tasks.
    pub fn len(&self) -> usize {
        self.tasks.len()
    }

    /// True when there are no tasks.
    pub fn is_empty(&self) -> bool {
        self.tasks.is_empty()
    }

    /// Total service demand (the 1-processor execution time, overheads
    /// aside).
    pub fn total_service(&self) -> f64 {
        self.tasks.iter().map(|t| t.service).sum()
    }

    /// Mean task service time.
    pub fn mean(&self) -> f64 {
        if self.tasks.is_empty() {
            0.0
        } else {
            self.total_service() / self.tasks.len() as f64
        }
    }

    /// Population standard deviation of service times.
    pub fn std_dev(&self) -> f64 {
        let n = self.tasks.len();
        if n == 0 {
            return 0.0;
        }
        let m = self.mean();
        let var = self
            .tasks
            .iter()
            .map(|t| (t.service - m) * (t.service - m))
            .sum::<f64>()
            / n as f64;
        var.sqrt()
    }

    /// Coefficient of variance `σ / mean` — the granularity statistic the
    /// paper's methodology tabulates per decomposition level (Tables 5–7).
    pub fn coeff_of_variance(&self) -> f64 {
        let m = self.mean();
        if m <= 0.0 {
            0.0
        } else {
            self.std_dev() / m
        }
    }

    /// Annotates every task with a match fraction.
    pub fn with_match_fraction(mut self, f: f64) -> TaskSet {
        for t in &mut self.tasks {
            t.match_fraction = f;
        }
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_of_known_set() {
        let ts = TaskSet::from_services(&[2.0, 4.0, 6.0]);
        assert_eq!(ts.len(), 3);
        assert!((ts.mean() - 4.0).abs() < 1e-12);
        assert!((ts.total_service() - 12.0).abs() < 1e-12);
        let expected_sd = ((4.0 + 0.0 + 4.0) / 3.0f64).sqrt();
        assert!((ts.std_dev() - expected_sd).abs() < 1e-12);
        assert!((ts.coeff_of_variance() - expected_sd / 4.0).abs() < 1e-12);
    }

    #[test]
    fn lognormal_hits_target_statistics() {
        let ts = TaskSet::lognormal(20_000, 5.0, 0.4, 42);
        assert!((ts.mean() - 5.0).abs() / 5.0 < 0.03, "mean {}", ts.mean());
        assert!(
            (ts.coeff_of_variance() - 0.4).abs() < 0.05,
            "cv {}",
            ts.coeff_of_variance()
        );
        assert!(ts.tasks.iter().all(|t| t.service > 0.0));
    }

    #[test]
    fn lognormal_is_deterministic() {
        let a = TaskSet::lognormal(100, 3.0, 0.5, 7);
        let b = TaskSet::lognormal(100, 3.0, 0.5, 7);
        assert_eq!(a.tasks, b.tasks);
        let c = TaskSet::lognormal(100, 3.0, 0.5, 8);
        assert_ne!(a.tasks, c.tasks);
    }

    #[test]
    fn empty_set_is_safe() {
        let ts = TaskSet::default();
        assert_eq!(ts.mean(), 0.0);
        assert_eq!(ts.std_dev(), 0.0);
        assert_eq!(ts.coeff_of_variance(), 0.0);
        assert!(ts.is_empty());
    }

    #[test]
    fn match_fraction_annotation() {
        let ts = TaskSet::from_services(&[1.0, 2.0]).with_match_fraction(0.4);
        assert!(ts.tasks.iter().all(|t| t.match_fraction == 0.4));
    }
}
