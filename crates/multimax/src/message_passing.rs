//! A message-passing execution model (§9: "we are currently investigating
//! implementations on message-passing computers", citing Acharya & Tambe's
//! simulation study).
//!
//! On a message-passing machine there is no shared task queue: the control
//! node *sends* tasks to workers, paying a per-message cost that covers the
//! task element plus the working-memory slice the task needs (SPAM/PSM's
//! WM distribution becomes physical data movement). Two distribution
//! policies:
//!
//! * **static** — tasks are dealt round-robin up front; zero steals, but
//!   imbalance is frozen in;
//! * **demand-driven** — workers request work when idle; every task costs a
//!   request/response round trip but the load balances like the shared
//!   queue.

use crate::sim::TaskExec;
use crate::task::Task;
use tlp_fault::FaultPlan;
use tlp_obs::{Category, Span, Timeline, Track};

/// Message-passing machine parameters.
#[derive(Clone, Copy, Debug)]
pub struct MpConfig {
    /// Worker nodes.
    pub nodes: u32,
    /// One-way message latency, seconds (1990s interconnects: ~1 ms).
    pub latency: f64,
    /// Per-task payload transfer time, seconds (task WME + WM slice).
    pub payload: f64,
    /// Sender timeout before a lost message is retransmitted, seconds.
    /// Only exercised when a [`FaultPlan`] injects message loss.
    pub retry_timeout: f64,
    /// Distribution policy.
    pub policy: MpPolicy,
}

/// Task distribution policy.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MpPolicy {
    /// Round-robin dealt before execution starts.
    Static,
    /// Idle workers request the next task from the control node.
    DemandDriven,
}

impl MpConfig {
    /// A 1990-class message-passing machine (iPSC/2-style numbers).
    pub fn classic(nodes: u32, policy: MpPolicy) -> MpConfig {
        MpConfig {
            nodes,
            latency: 0.001,
            payload: 0.010,
            retry_timeout: 0.004,
            policy,
        }
    }
}

/// Result of a message-passing run.
#[derive(Clone, Debug)]
pub struct MpResult {
    /// Completion time of the last task.
    pub makespan: f64,
    /// Total messages exchanged (including retransmissions).
    pub messages: u64,
    /// Per-node busy time.
    pub busy: Vec<f64>,
    /// Transmissions repeated because the original was lost.
    pub retransmissions: u64,
    /// Every task execution, in dispatch order. `queued_at` is when the
    /// send/request began, `acquired` when the payload arrived at the node.
    pub executions: Vec<TaskExec>,
}

impl MpResult {
    /// Reconstructs the per-node schedule as a [`Timeline`]: execution
    /// spans with receive-wait and idle fill, so coverage is complete.
    pub fn timeline(&self, name: &str) -> Timeline {
        let mut tl = Timeline::new(name, self.makespan);
        for w in 0..self.busy.len() {
            let mut spans = Vec::new();
            let mut cursor = 0.0f64;
            for e in self.executions.iter().filter(|e| e.worker == w as u32) {
                if e.started > cursor {
                    spans.push(Span::new("wait-recv", Category::Queue, cursor, e.started));
                }
                spans.push(Span::new(
                    format!("exec t{}", e.task),
                    Category::Sim,
                    e.started,
                    e.finished,
                ));
                cursor = e.finished;
            }
            if self.makespan > cursor {
                spans.push(Span::new("idle", Category::Sim, cursor, self.makespan));
            }
            tl.tracks.push(Track {
                name: format!("node {w}"),
                spans,
            });
        }
        tl
    }
}

/// Simulates `tasks` on the message-passing machine.
///
/// # Panics
/// Panics when `cfg.nodes` is 0.
pub fn simulate_mp(cfg: &MpConfig, tasks: &[Task]) -> MpResult {
    simulate_mp_with_faults(cfg, tasks, &FaultPlan::none())
}

/// Simulates `tasks` on the message-passing machine under injected message
/// loss.
///
/// Each transmission of message `m` (attempt `a`) is lost when
/// [`FaultPlan::message_lost`]`(m, a)` says so; the sender notices after
/// `cfg.retry_timeout` and retransmits, paying the transfer cost again.
/// Task-payload sends use message id `2·task`, demand-driven request
/// messages use `2·task + 1`, so the two draws are independent. With a
/// benign plan this is exactly [`simulate_mp`].
///
/// # Panics
/// Panics when `cfg.nodes` is 0.
pub fn simulate_mp_with_faults(cfg: &MpConfig, tasks: &[Task], plan: &FaultPlan) -> MpResult {
    assert!(cfg.nodes >= 1);
    let n = cfg.nodes as usize;
    let mut busy = vec![0.0f64; n];
    let mut messages = 0u64;
    let mut retransmissions = 0u64;
    let mut executions = Vec::with_capacity(tasks.len());
    match cfg.policy {
        MpPolicy::Static => {
            // Control sends each task's payload up front (pipelined: the
            // control node serialises the sends; workers start on first
            // receipt). Each node then runs its share without interaction.
            let mut send_done = vec![0.0f64; n];
            let mut clock = 0.0;
            let mut node_ready = vec![0.0f64; n];
            for (i, t) in tasks.iter().enumerate() {
                let w = i % n;
                let send_begin = clock;
                let mut attempt = 0u32;
                while plan.message_lost(2 * i as u64, attempt) {
                    // Lost in flight: the control node paid the transfer,
                    // waits out the timeout, and sends again.
                    clock += cfg.payload + cfg.retry_timeout;
                    messages += 1;
                    retransmissions += 1;
                    attempt += 1;
                }
                clock += cfg.payload; // control node serialises the sends
                messages += 1;
                let arrive = clock + cfg.latency;
                let start = node_ready[w].max(arrive);
                let finish = start + t.service;
                node_ready[w] = finish;
                busy[w] += t.service;
                send_done[w] = finish;
                executions.push(TaskExec {
                    task: t.id,
                    worker: w as u32,
                    queued_at: send_begin,
                    acquired: arrive,
                    started: start,
                    finished: finish,
                });
            }
            MpResult {
                makespan: send_done.iter().copied().fold(0.0, f64::max),
                messages,
                busy,
                retransmissions,
                executions,
            }
        }
        MpPolicy::DemandDriven => {
            // Workers request the next task when idle: each task costs a
            // request + response (latency both ways + payload), with the
            // control node serving one request at a time.
            let mut node_free: Vec<f64> = vec![0.0; n];
            let mut control_free = 0.0f64;
            let mut makespan = 0.0f64;
            for (i, t) in tasks.iter().enumerate() {
                // earliest-free worker asks next
                let (w, &free) = node_free
                    .iter()
                    .enumerate()
                    .min_by(|a, b| a.1.partial_cmp(b.1).unwrap())
                    .unwrap();
                let mut request_at = free + cfg.latency;
                let mut attempt = 0u32;
                while plan.message_lost(2 * i as u64 + 1, attempt) {
                    // Request lost: the worker re-requests after a timeout.
                    request_at += cfg.retry_timeout + cfg.latency;
                    messages += 1;
                    retransmissions += 1;
                    attempt += 1;
                }
                let served_at = request_at.max(control_free);
                control_free = served_at + cfg.payload;
                messages += 2;
                let mut attempt = 0u32;
                while plan.message_lost(2 * i as u64, attempt) {
                    // Payload lost: the control node resends after a
                    // timeout, staying busy for the repeated transfer.
                    control_free += cfg.retry_timeout + cfg.payload;
                    messages += 1;
                    retransmissions += 1;
                    attempt += 1;
                }
                let start = control_free + cfg.latency;
                let finish = start + t.service;
                node_free[w] = finish;
                busy[w] += t.service;
                makespan = makespan.max(finish);
                executions.push(TaskExec {
                    task: t.id,
                    worker: w as u32,
                    queued_at: free,
                    acquired: start,
                    started: start,
                    finished: finish,
                });
            }
            MpResult {
                makespan,
                messages,
                busy,
                retransmissions,
                executions,
            }
        }
    }
}

/// Speed-up curve on the message-passing machine.
pub fn mp_speedup_curve(tasks: &[Task], policy: MpPolicy, max_nodes: u32) -> Vec<(u32, f64)> {
    let base = simulate_mp(&MpConfig::classic(1, policy), tasks).makespan;
    (1..=max_nodes)
        .map(|n| {
            let r = simulate_mp(&MpConfig::classic(n, policy), tasks);
            (n, base / r.makespan)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::TaskSet;

    fn tasks() -> Vec<Task> {
        TaskSet::lognormal(300, 4.0, 0.6, 17).tasks
    }

    #[test]
    fn demand_driven_balances_better_than_static() {
        let t = tasks();
        let st = simulate_mp(&MpConfig::classic(14, MpPolicy::Static), &t);
        let dd = simulate_mp(&MpConfig::classic(14, MpPolicy::DemandDriven), &t);
        assert!(
            dd.makespan < st.makespan,
            "demand-driven {:.1} should beat static {:.1} under variance",
            dd.makespan,
            st.makespan
        );
        // But it costs twice the messages.
        assert!(dd.messages > st.messages);
    }

    #[test]
    fn work_is_conserved() {
        let t = tasks();
        let expected: f64 = t.iter().map(|x| x.service).sum();
        for policy in [MpPolicy::Static, MpPolicy::DemandDriven] {
            let r = simulate_mp(&MpConfig::classic(8, policy), &t);
            assert!((r.busy.iter().sum::<f64>() - expected).abs() < 1e-6);
        }
    }

    #[test]
    fn near_linear_at_moderate_scale() {
        let t = tasks();
        let curve = mp_speedup_curve(&t, MpPolicy::DemandDriven, 14);
        assert!((curve[0].1 - 1.0).abs() < 1e-9);
        assert!(curve[13].1 > 10.0, "got {:.2}", curve[13].1);
    }

    #[test]
    fn tiny_tasks_expose_message_costs() {
        // Fine-grained tasks (Level-1 style) make the control node a
        // bottleneck under demand-driven distribution.
        let tiny: Vec<Task> = (0..2000).map(|i| Task::new(i, 0.02)).collect();
        let curve = mp_speedup_curve(&tiny, MpPolicy::DemandDriven, 32);
        let best = curve.iter().map(|c| c.1).fold(0.0f64, f64::max);
        assert!(best < 8.0, "message costs must cap tiny tasks: {best:.1}");
    }

    #[test]
    fn executions_and_timeline_cover_the_run() {
        let t = tasks();
        for policy in [MpPolicy::Static, MpPolicy::DemandDriven] {
            let r = simulate_mp(&MpConfig::classic(6, policy), &t);
            assert_eq!(r.executions.len(), t.len(), "{policy:?}");
            let busy: f64 = r.executions.iter().map(|e| e.finished - e.started).sum();
            assert!((busy - r.busy.iter().sum::<f64>()).abs() < 1e-6);
            let tl = r.timeline("mp");
            assert_eq!(tl.tracks.len(), 6);
            assert!(tl.coverage() > 0.999_999, "{policy:?}: {}", tl.coverage());
        }
    }

    #[test]
    fn determinism() {
        let t = tasks();
        let a = simulate_mp(&MpConfig::classic(6, MpPolicy::DemandDriven), &t);
        let b = simulate_mp(&MpConfig::classic(6, MpPolicy::DemandDriven), &t);
        assert_eq!(a.makespan, b.makespan);
        assert_eq!(a.messages, b.messages);
    }

    #[test]
    fn benign_plan_is_exactly_the_plain_run() {
        let t = tasks();
        for policy in [MpPolicy::Static, MpPolicy::DemandDriven] {
            let cfg = MpConfig::classic(8, policy);
            let plain = simulate_mp(&cfg, &t);
            let benign = simulate_mp_with_faults(&cfg, &t, &FaultPlan::none());
            assert_eq!(plain.makespan, benign.makespan);
            assert_eq!(plain.messages, benign.messages);
            assert_eq!(plain.busy, benign.busy);
            assert_eq!(benign.retransmissions, 0);
        }
    }

    #[test]
    fn message_loss_costs_time_and_messages() {
        let t = tasks();
        let plan = FaultPlan::seeded(11).with_message_loss(0.2);
        for policy in [MpPolicy::Static, MpPolicy::DemandDriven] {
            let cfg = MpConfig::classic(8, policy);
            let clean = simulate_mp(&cfg, &t);
            let lossy = simulate_mp_with_faults(&cfg, &t, &plan);
            assert!(
                lossy.retransmissions > 0,
                "{policy:?}: no losses at rate 0.2"
            );
            assert!(
                lossy.makespan > clean.makespan,
                "{policy:?}: retransmissions must cost wall-clock time"
            );
            assert_eq!(
                lossy.messages,
                clean.messages + lossy.retransmissions,
                "{policy:?}: every retransmission is one extra message"
            );
            // Loss changes only delivery times, never the work done.
            let work: f64 = t.iter().map(|x| x.service).sum();
            assert!((lossy.busy.iter().sum::<f64>() - work).abs() < 1e-6);
        }
    }

    #[test]
    fn message_loss_is_deterministic_under_a_fixed_seed() {
        let t = tasks();
        let cfg = MpConfig::classic(6, MpPolicy::DemandDriven);
        let plan = FaultPlan::seeded(99).with_message_loss(0.15);
        let a = simulate_mp_with_faults(&cfg, &t, &plan);
        let b = simulate_mp_with_faults(&cfg, &t, &plan);
        assert_eq!(a.makespan, b.makespan);
        assert_eq!(a.messages, b.messages);
        assert_eq!(a.retransmissions, b.retransmissions);
        // A different seed draws a different loss pattern.
        let c = simulate_mp_with_faults(&cfg, &t, &FaultPlan::seeded(100).with_message_loss(0.15));
        assert_ne!(a.retransmissions, c.retransmissions);
    }
}
