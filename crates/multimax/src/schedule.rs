//! Task ordering policies.

use crate::task::Task;

/// Order in which the central queue serves tasks.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Schedule {
    /// Queue order as generated (the paper's system).
    #[default]
    Fifo,
    /// Longest processing time first — the fix §6.2 proposes for the
    /// tail-end effect ("use a separate task queue for the larger tasks and
    /// process them at the beginning of the phase").
    Lpt,
    /// Shortest first (pessimal for tail effects; ablation).
    Spt,
}

impl Schedule {
    /// Stable lowercase policy name (used in trace and metric labels).
    pub fn name(&self) -> &'static str {
        match self {
            Schedule::Fifo => "fifo",
            Schedule::Lpt => "lpt",
            Schedule::Spt => "spt",
        }
    }

    /// Applies the policy, returning the serving order.
    pub fn order(&self, tasks: &[Task]) -> Vec<Task> {
        let mut v = tasks.to_vec();
        match self {
            Schedule::Fifo => {}
            Schedule::Lpt => v.sort_by(|a, b| {
                b.service
                    .partial_cmp(&a.service)
                    .unwrap()
                    .then(a.id.cmp(&b.id))
            }),
            Schedule::Spt => v.sort_by(|a, b| {
                a.service
                    .partial_cmp(&b.service)
                    .unwrap()
                    .then(a.id.cmp(&b.id))
            }),
        }
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tasks() -> Vec<Task> {
        vec![Task::new(0, 5.0), Task::new(1, 50.0), Task::new(2, 1.0)]
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(Schedule::Fifo.name(), "fifo");
        assert_eq!(Schedule::Lpt.name(), "lpt");
        assert_eq!(Schedule::Spt.name(), "spt");
    }

    #[test]
    fn fifo_preserves_order() {
        let o = Schedule::Fifo.order(&tasks());
        assert_eq!(o.iter().map(|t| t.id).collect::<Vec<_>>(), vec![0, 1, 2]);
    }

    #[test]
    fn lpt_puts_long_first() {
        let o = Schedule::Lpt.order(&tasks());
        assert_eq!(o.iter().map(|t| t.id).collect::<Vec<_>>(), vec![1, 0, 2]);
    }

    #[test]
    fn spt_puts_short_first() {
        let o = Schedule::Spt.order(&tasks());
        assert_eq!(o.iter().map(|t| t.id).collect::<Vec<_>>(), vec![2, 0, 1]);
    }

    #[test]
    fn ties_break_by_id_deterministically() {
        let t = vec![Task::new(3, 2.0), Task::new(1, 2.0), Task::new(2, 2.0)];
        let o = Schedule::Lpt.order(&t);
        assert_eq!(o.iter().map(|t| t.id).collect::<Vec<_>>(), vec![1, 2, 3]);
    }
}
