//! Tasks: independent units of work with known service demand.

/// Identifier of a task within one task set.
pub type TaskId = u32;

/// One independent task (the paper's Level-2/Level-3 units: "apply multiple
/// constraints to a single object", etc.).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Task {
    /// Task id (position in the original queue order).
    pub id: TaskId,
    /// Service time in simulated seconds on one processor.
    pub service: f64,
    /// Fraction of `service` spent in the match phase (0..=1); used when a
    /// task process has dedicated match processes attached.
    pub match_fraction: f64,
}

impl Task {
    /// Creates a task with no match component annotation.
    pub fn new(id: TaskId, service: f64) -> Task {
        assert!(service.is_finite() && service >= 0.0, "bad service time");
        Task {
            id,
            service,
            match_fraction: 0.0,
        }
    }

    /// Creates a task with a match-fraction annotation.
    pub fn with_match(id: TaskId, service: f64, match_fraction: f64) -> Task {
        assert!((0.0..=1.0).contains(&match_fraction), "bad match fraction");
        let mut t = Task::new(id, service);
        t.match_fraction = match_fraction;
        t
    }

    /// Effective service time when the executing task process has
    /// `match_speedup ≥ 1` applied to its match component (dedicated match
    /// processes). The non-match component is untouched — this is exactly
    /// the Amdahl decomposition of §3.1.
    pub fn service_with_match_speedup(&self, match_speedup: f64) -> f64 {
        assert!(match_speedup >= 1.0);
        let m = self.service * self.match_fraction;
        let rest = self.service - m;
        rest + m / match_speedup
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn match_speedup_is_amdahl() {
        let t = Task::with_match(0, 100.0, 0.5);
        assert_eq!(t.service_with_match_speedup(1.0), 100.0);
        assert!((t.service_with_match_speedup(2.0) - 75.0).abs() < 1e-12);
        // Infinitely fast match halves the task, no more.
        assert!((t.service_with_match_speedup(1e12) - 50.0).abs() < 1e-6);
    }

    #[test]
    fn zero_match_fraction_ignores_speedup() {
        let t = Task::new(1, 42.0);
        assert_eq!(t.service_with_match_speedup(8.0), 42.0);
    }

    #[test]
    #[should_panic(expected = "bad service")]
    fn negative_service_rejected() {
        let _ = Task::new(0, -1.0);
    }
}
