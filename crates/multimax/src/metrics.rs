//! Derived metrics: speed-up curves and per-level decomposition statistics.

use crate::sim::{simulate, SimConfig};
use crate::workload::TaskSet;

/// Statistics for one decomposition level (one row of Tables 5–7).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LevelStats {
    /// Mean task time (seconds).
    pub mean: f64,
    /// Standard deviation (seconds).
    pub std_dev: f64,
    /// Coefficient of variance.
    pub cv: f64,
    /// Number of tasks.
    pub count: usize,
}

impl LevelStats {
    /// Computes the row for a task set.
    pub fn of(ts: &TaskSet) -> LevelStats {
        LevelStats {
            mean: ts.mean(),
            std_dev: ts.std_dev(),
            cv: ts.coeff_of_variance(),
            count: ts.len(),
        }
    }
}

/// One point of a speed-up curve: the paper's speed-up plus the
/// utilization/idle decomposition that explains its shape (the gap to
/// linear speed-up is exactly the idle processor-time).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SpeedupPoint {
    /// Task-process count.
    pub n: u32,
    /// `makespan(1) / makespan(n)`.
    pub speedup: f64,
    /// Mean processor utilization over the makespan at this point.
    pub utilization: f64,
    /// Idle processor-seconds over the makespan (`n·makespan − Σ busy`).
    pub idle: f64,
}

/// Computes the speed-up curve for 1..=`max_workers` task processes:
/// `speedup(n) = makespan(baseline with 1 process) / makespan(n)`,
/// with per-point utilization and idle time.
///
/// This is the paper's measurement (§5.2): the BASELINE version is the same
/// system with a single task process, so queue and fork overheads appear in
/// both numerator and denominator.
pub fn speedup_curve<F>(mut config_for: F, tasks: &TaskSet, max_workers: u32) -> Vec<SpeedupPoint>
where
    F: FnMut(u32) -> SimConfig,
{
    let base = simulate(&config_for(1), &tasks.tasks).makespan;
    (1..=max_workers)
        .map(|n| {
            let r = simulate(&config_for(n), &tasks.tasks);
            SpeedupPoint {
                n,
                speedup: base / r.makespan,
                utilization: r.utilization(),
                idle: r.makespan * n as f64 - r.busy.iter().sum::<f64>(),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn level_stats_match_taskset() {
        let ts = TaskSet::from_services(&[1.0, 3.0]);
        let s = LevelStats::of(&ts);
        assert_eq!(s.count, 2);
        assert!((s.mean - 2.0).abs() < 1e-12);
        assert!((s.cv - 0.5).abs() < 1e-12);
    }

    #[test]
    fn speedup_curve_starts_at_one_and_grows() {
        let ts = TaskSet::lognormal(400, 5.0, 0.4, 3);
        let curve = speedup_curve(SimConfig::encore, &ts, 14);
        assert_eq!(curve.len(), 14);
        assert!((curve[0].speedup - 1.0).abs() < 1e-9);
        for w in curve.windows(2) {
            assert!(
                w[1].speedup >= w[0].speedup - 1e-9,
                "speed-up should not regress"
            );
        }
        // Near-linear at the paper's scale: > 11x on 14 processors.
        assert!(curve[13].speedup > 11.0, "got {}", curve[13].speedup);
    }

    #[test]
    fn utilization_and_idle_decompose_the_makespan() {
        let ts = TaskSet::lognormal(300, 4.0, 0.5, 9);
        let curve = speedup_curve(SimConfig::encore, &ts, 14);
        for p in &curve {
            assert!(p.n >= 1);
            assert!(p.utilization > 0.0 && p.utilization <= 1.0, "{p:?}");
            assert!(p.idle >= 0.0, "{p:?}");
        }
        // Utilization falls with scale; idle time grows.
        assert!(curve[13].utilization < curve[0].utilization);
        assert!(curve[13].idle > curve[0].idle);
    }
}
