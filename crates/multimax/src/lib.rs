//! # multimax-sim
//!
//! A deterministic discrete-event simulator of an Encore-Multimax-class
//! shared-memory multiprocessor, with an optional network shared-virtual-
//! memory (SVM) extension coupling two machines — the experimental platform
//! of *"The Effectiveness of Task-Level Parallelism for High-Level Vision"*
//! (PPoPP 1990).
//!
//! ## Why a simulator
//!
//! The paper's speed-up curves (Figures 6–9, Table 9) are functions of the
//! task-service-time distribution, the central task queue's serialisation,
//! task-management overheads, and (for Figure 9) the remote-page-fault cost
//! of the CMU *netmemory* server. None of that hardware exists here (this
//! reproduction runs in a single-core container), so the simulator replays
//! *measured traces* — per-task service times produced by actually running
//! the SPAM tasks through the Rust OPS5 engine — at any processor count.
//! This mirrors the original methodology (§5.2): their control process also
//! only timed task execution; the physics being reproduced is queueing.
//!
//! ## Model
//!
//! * A [`Machine`](machine::Machine) is one or two clusters ("Encores") of
//!   processors; the kernel reserves some per cluster (§7: "the MACH kernel
//!   and the shared virtual memory system tend to occupy 2 processors").
//! * Task processes pull [`Task`](task::Task)s from a central queue guarded
//!   by a lock; dequeueing costs time and serialises (§6.2 measures this
//!   overhead at "less than 25 seconds ... less than .1 %").
//! * Workers on the remote cluster pay SVM costs per task
//!   ([`svm::SvmConfig`]): page faults at the measured 50 ms latency, with
//!   optional false-sharing amplification and the 64-byte sub-page shipping
//!   optimisation the netmemory designers added (§7).
//! * [`sim::simulate`] returns a full [`sim::SimResult`] (makespan, per-
//!   worker busy time, utilisation, queue-wait, tail statistics).
//!
//! Everything is deterministic: identical inputs give identical results.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod machine;
pub mod message_passing;
pub mod metrics;
pub mod schedule;
pub mod sim;
pub mod svm;
pub mod svm_sim;
pub mod task;
pub mod workload;

pub use machine::{ClusterConfig, Machine};
pub use message_passing::{
    mp_speedup_curve, simulate_mp, simulate_mp_with_faults, MpConfig, MpPolicy,
};
pub use metrics::{speedup_curve, LevelStats, SpeedupPoint};
pub use schedule::Schedule;
pub use sim::{simulate, simulate_with_faults, DeathEvent, SimConfig, SimResult, TaskExec};
pub use svm::SvmConfig;
pub use svm_sim::{
    simulate_svm, simulate_svm_with_faults, ClockDomain, PageStats, SvmOverheads, SvmSimConfig,
    SvmSimResult,
};
pub use task::{Task, TaskId};
pub use tlp_fault::FaultPlan;
pub use workload::TaskSet;
