//! The two-machine SVM simulation with distinct clock domains.
//!
//! [`crate::svm::SvmConfig`] is a *closed-form* cost model: remote workers
//! pay a fixed overhead per task and a warmup at fork, and that is all the
//! simulator knows. This module promotes the model into an event-emitting
//! simulation of the §7 platform — two Encores coupled by the CMU
//! netmemory server — so the observability stack can see *where* the
//! ≈1.5-processor translational cost goes:
//!
//! * Each machine has its **own wall clock** ([`ClockDomain`]: configurable
//!   skew and drift), exactly the situation of real cluster tracing. Events
//!   are stamped in machine-local microseconds; `tlp_obs::stitch` aligns
//!   the domains afterwards from the matched page-fault exchanges.
//! * Every remote page fault becomes a **four-leg exchange**: `page.fault`
//!   (request leaves, remote clock) → `page.req` (request arrives, home
//!   clock) → `page.send` (data leaves, home clock) → `page.recv` (data
//!   arrives, remote clock), correlated by an `xfer` id. One fault of cost
//!   `c` splits 0.2c request wire, 0.1c directory service, 0.7c data wire —
//!   the data leg dominates because pages are big and requests are not.
//! * A deterministic **page directory** tracks per-page coherence traffic:
//!   faults, actual transfers (a page already valid at the remote machine
//!   re-faults without moving data), bytes shipped (scaled by the 64-byte
//!   sub-page factor), and invalidations (home writes invalidate remote
//!   copies; remote write faults invalidate the home copy).
//! * `task.migrate` instants mark each dispatch of a task to the remote
//!   cluster.
//!
//! ## Determinism contract
//!
//! The simulation result is computed *first*, by the ordinary
//! [`simulate_with_faults`] event loop; events and counters are derived
//! from it afterwards and flow through level-gated `tlp-obs` sinks. Work
//! totals, makespan, and the coherence counters are therefore bit-identical
//! whether the recorder is off, on, or compiled out.

use crate::sim::{simulate_with_faults, SimConfig, SimResult};
use crate::task::Task;
use std::collections::{BTreeMap, BTreeSet};
use tlp_fault::FaultPlan;
use tlp_obs::stitch::{
    MachineLog, EV_PAGE_FAULT, EV_PAGE_RECV, EV_PAGE_REQ, EV_PAGE_SEND, XFER_ARG,
};
use tlp_obs::{
    ArgValue, Category, CounterSeries, EventKind, ObsLevel, Recorder, Span, Timeline, Track,
};

/// Event name of a directory invalidation (home machine).
pub const EV_PAGE_INVAL: &str = "page.inval";
/// Event name of a task dispatched to the remote cluster (home machine).
pub const EV_TASK_MIGRATE: &str = "task.migrate";

/// Fraction of one fault spent on the request wire leg.
const REQ_LEG: f64 = 0.2;
/// Fraction of one fault spent in directory service at the home machine.
const SERVICE_LEG: f64 = 0.1;
/// Fraction of one fault spent on the data wire leg (8 KB page vs a
/// request packet: the data leg dominates).
const WIRE_LEG: f64 = 0.7;

/// One machine's wall clock, as an affine map from true simulated time.
///
/// `local_us(t) = t·(1 + drift_ppm·10⁻⁶)·10⁶ + skew_us`. True time is the
/// simulator's internal clock, which no machine can observe — each log is
/// stamped only in its own local microseconds.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ClockDomain {
    /// Offset of this clock from true time at t = 0 (microseconds).
    pub skew_us: i64,
    /// Rate error in parts per million (positive runs fast).
    pub drift_ppm: f64,
}

impl ClockDomain {
    /// The reference clock: no skew, no drift.
    pub fn identity() -> ClockDomain {
        ClockDomain {
            skew_us: 0,
            drift_ppm: 0.0,
        }
    }

    /// A skewed, drifting clock.
    pub fn new(skew_us: i64, drift_ppm: f64) -> ClockDomain {
        ClockDomain { skew_us, drift_ppm }
    }

    /// Maps true simulated seconds to this machine's local microseconds
    /// (clamped at zero; monotone for any sane drift).
    pub fn local_us(&self, true_s: f64) -> u64 {
        let t = true_s * 1e6 * (1.0 + self.drift_ppm * 1e-6) + self.skew_us as f64;
        t.round().max(0.0) as u64
    }
}

/// Configuration of the two-machine SVM simulation.
#[derive(Clone, Copy, Debug)]
pub struct SvmSimConfig {
    /// The underlying simulation (machine, workers, schedule, SVM costs).
    pub sim: SimConfig,
    /// The home machine's clock (holds the task queue and page directory).
    pub home_clock: ClockDomain,
    /// The remote machine's clock.
    pub remote_clock: ClockDomain,
    /// Page size in bytes (the Encores used 8 KB pages).
    pub page_bytes: u64,
    /// Size of the shared page space the deterministic page map hashes
    /// into; smaller values mean more inter-task page sharing.
    pub page_table: u64,
    /// Recording level for the per-machine event logs.
    pub level: ObsLevel,
}

impl SvmSimConfig {
    /// The §7 dual-Encore platform with `n` task processes, reference
    /// clocks, and the recorder off.
    pub fn dual_encore(n: u32) -> SvmSimConfig {
        SvmSimConfig {
            sim: SimConfig::dual_encore(n),
            home_clock: ClockDomain::identity(),
            remote_clock: ClockDomain::identity(),
            page_bytes: 8192,
            page_table: 4096,
            level: ObsLevel::Off,
        }
    }
}

/// Coherence traffic counters (per page, and aggregated).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PageStats {
    /// Remote page faults taken (every fault costs time, even when the
    /// page is already cached — false sharing re-faults).
    pub faults: u64,
    /// Faults that actually moved data (page not valid at the remote).
    pub transfers: u64,
    /// Bytes shipped (transfers × page size × sub-page shipping factor).
    pub bytes: u64,
    /// Invalidations: home writes killing remote copies plus remote write
    /// faults killing the home copy.
    pub invalidations: u64,
}

/// The cross-machine overhead, decomposed in processor-seconds. Feeds the
/// SVM gap accountant in `spam-psm`.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct SvmOverheads {
    /// One-time warmup paid by every remote worker at fork.
    pub warmup_s: f64,
    /// Request + directory-service share of all per-task fault overhead.
    pub page_wait_s: f64,
    /// Data-wire share of all per-task fault overhead.
    pub transfer_s: f64,
}

impl SvmOverheads {
    /// Total cross-machine overhead in processor-seconds.
    pub fn total(&self) -> f64 {
        self.warmup_s + self.page_wait_s + self.transfer_s
    }
}

/// Result of one two-machine run: the plain simulation result plus the
/// derived coherence counters, overhead decomposition, and per-machine
/// event logs stamped in each machine's local clock.
#[derive(Clone, Debug)]
pub struct SvmSimResult {
    /// The configuration that produced this run.
    pub cfg: SvmSimConfig,
    /// The underlying simulation result (bit-identical to running
    /// [`simulate_with_faults`] directly).
    pub sim: SimResult,
    /// Overhead decomposition in processor-seconds.
    pub overheads: SvmOverheads,
    /// Aggregate coherence counters.
    pub totals: PageStats,
    /// Per-page coherence counters (page id → stats).
    pub pages: BTreeMap<u64, PageStats>,
    /// Home machine's event log (local clock). Empty below `Summary`.
    pub home: MachineLog,
    /// Remote machine's event log (local clock). Empty below `Summary`.
    pub remote: MachineLog,
    /// Per-execution fault overhead (seconds), parallel to
    /// `sim.executions`; zero for local workers, storm-adjusted for
    /// remote ones.
    pub fault_overheads: Vec<f64>,
}

/// A page operation in true simulated time, derived from the schedule.
enum PageOp {
    /// A remote worker faults on `page`; the exchange occupies `dur`
    /// seconds starting at `t`. `sample` marks the last fault of a task
    /// (or warmup run) — the coherence counters are sampled there.
    Fault {
        worker: u32,
        task: Option<u32>,
        page: u64,
        t: f64,
        dur: f64,
        write: bool,
        sample: bool,
    },
    /// A home worker commits `page` at `t`, invalidating any remote copy.
    HomeWrite { page: u64, t: f64 },
}

impl PageOp {
    fn time(&self) -> f64 {
        match self {
            PageOp::Fault { t, .. } => *t,
            PageOp::HomeWrite { t, .. } => *t,
        }
    }
}

/// Deterministic page map: which shared page fault `k` of `task` lands on.
/// Distinct tasks collide (the shared working memory is one address
/// space), which is what makes invalidation traffic non-trivial.
fn page_of(task: u32, k: u64, page_table: u64) -> u64 {
    (u64::from(task)
        .wrapping_mul(7919)
        .wrapping_add(k.wrapping_mul(61)))
        % page_table.max(1)
}

/// Pending event: (true time, tiebreak ordinal, name, kind, args).
type Pending = (
    f64,
    u64,
    &'static str,
    EventKind,
    Vec<(&'static str, ArgValue)>,
);

fn emit_sorted(sink: &mut tlp_obs::ThreadSink, clock: &ClockDomain, mut pending: Vec<Pending>) {
    pending.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
    for (t, _, name, kind, args) in pending {
        sink.emit_at(clock.local_us(t), Category::Svm, name, kind, args);
    }
}

/// Runs the two-machine SVM simulation (benign fault plan).
pub fn simulate_svm(cfg: &SvmSimConfig, tasks: &[Task]) -> SvmSimResult {
    simulate_svm_with_faults(cfg, tasks, &FaultPlan::none())
}

/// Runs the two-machine SVM simulation under an injected [`FaultPlan`].
///
/// The schedule is computed first by [`simulate_with_faults`]; page
/// traffic, coherence counters, and per-machine event logs are derived
/// from it afterwards, so observability can never perturb the result.
pub fn simulate_svm_with_faults(
    cfg: &SvmSimConfig,
    tasks: &[Task],
    plan: &FaultPlan,
) -> SvmSimResult {
    let sim = simulate_with_faults(&cfg.sim, tasks, plan);
    let svm = cfg.sim.svm;
    let machine = cfg.sim.machine;

    // ---- derive page operations in true time (pure) ----
    let mut ops: Vec<PageOp> = Vec::new();
    let mut warmup_s = 0.0f64;
    let mut fault_overheads: Vec<f64> = Vec::with_capacity(sim.executions.len());

    for w in 0..cfg.sim.task_processes {
        if !machine.is_remote(w) {
            continue;
        }
        let warm = svm.warmup_overhead();
        warmup_s += warm;
        let nf = svm
            .warmup_faults
            .round()
            .max(if warm > 0.0 { 1.0 } else { 0.0 }) as u64;
        if nf == 0 {
            continue;
        }
        let c = warm / nf as f64;
        for k in 0..nf {
            ops.push(PageOp::Fault {
                worker: w,
                task: None,
                page: k % cfg.page_table.max(1),
                t: cfg.sim.fork_overhead + k as f64 * c,
                dur: c,
                write: false,
                sample: k + 1 == nf,
            });
        }
    }

    let mut page_wait_s = 0.0f64;
    let mut transfer_s = 0.0f64;
    for e in &sim.executions {
        if !machine.is_remote(e.worker) {
            fault_overheads.push(0.0);
            // A home task's commit invalidates remote copies of its pages.
            let np = svm.faults_per_task.round() as u64;
            for k in 0..np {
                ops.push(PageOp::HomeWrite {
                    page: page_of(e.task, k, cfg.page_table),
                    t: e.finished,
                });
            }
            continue;
        }
        let storm = plan.page_fault_factor(e.task as usize);
        let overhead = svm.per_task_overhead_with_storm(storm);
        fault_overheads.push(overhead);
        page_wait_s += (REQ_LEG + SERVICE_LEG) * overhead;
        transfer_s += WIRE_LEG * overhead;
        let nf = (svm.faults_per_task * svm.false_sharing * storm)
            .round()
            .max(if overhead > 0.0 { 1.0 } else { 0.0 }) as u64;
        if nf == 0 {
            continue;
        }
        let c = overhead / nf as f64;
        for k in 0..nf {
            ops.push(PageOp::Fault {
                worker: e.worker,
                task: Some(e.task),
                page: page_of(e.task, k, cfg.page_table),
                t: e.started + k as f64 * c,
                dur: c,
                write: k % 3 == 0,
                sample: k + 1 == nf,
            });
        }
    }

    // Chronological order; insertion index breaks ties deterministically.
    let mut order: Vec<usize> = (0..ops.len()).collect();
    order.sort_by(|&a, &b| ops[a].time().total_cmp(&ops[b].time()).then(a.cmp(&b)));

    // ---- run the coherence protocol and emit events ----
    let home_rec = Recorder::new(cfg.level);
    let remote_rec = Recorder::new(cfg.level);
    let emit = home_rec.enabled(ObsLevel::Summary);
    let emit_full = home_rec.enabled(ObsLevel::Full);

    let mut control_pending: Vec<Pending> = Vec::new();
    let mut server_pending: Vec<Pending> = Vec::new();
    let mut pager_pending: BTreeMap<u32, Vec<Pending>> = (0..cfg.sim.task_processes)
        .filter(|&w| machine.is_remote(w))
        .map(|w| (w, Vec::new()))
        .collect();

    if emit {
        for e in sim
            .executions
            .iter()
            .filter(|e| machine.is_remote(e.worker))
        {
            control_pending.push((
                e.acquired,
                control_pending.len() as u64,
                EV_TASK_MIGRATE,
                EventKind::Instant,
                vec![
                    ("task", ArgValue::U64(u64::from(e.task))),
                    ("worker", ArgValue::U64(u64::from(e.worker))),
                ],
            ));
        }
    }

    let mut valid: BTreeSet<u64> = BTreeSet::new();
    let mut pages: BTreeMap<u64, PageStats> = BTreeMap::new();
    let mut totals = PageStats::default();
    let seg_bytes = (cfg.page_bytes as f64 * svm.segment_shipping_factor).round() as u64;
    let mut xfer = 0u64;
    for (ord, &i) in order.iter().enumerate() {
        let ord = ord as u64;
        match &ops[i] {
            PageOp::Fault {
                worker,
                task,
                page,
                t,
                dur,
                write,
                sample,
            } => {
                let st = pages.entry(*page).or_default();
                st.faults += 1;
                totals.faults += 1;
                let moved = valid.insert(*page);
                if moved {
                    st.transfers += 1;
                    st.bytes += seg_bytes;
                    totals.transfers += 1;
                    totals.bytes += seg_bytes;
                }
                if *write {
                    st.invalidations += 1;
                    totals.invalidations += 1;
                }
                if emit {
                    let id = xfer;
                    xfer += 1;
                    let mut args = vec![
                        (XFER_ARG, ArgValue::U64(id)),
                        ("page", ArgValue::U64(*page)),
                    ];
                    if let Some(task) = task {
                        args.push(("task", ArgValue::U64(u64::from(*task))));
                    }
                    let pager = pager_pending.get_mut(worker).expect("remote worker");
                    pager.push((*t, ord, EV_PAGE_FAULT, EventKind::Instant, args.clone()));
                    server_pending.push((
                        t + REQ_LEG * dur,
                        ord,
                        EV_PAGE_REQ,
                        EventKind::Instant,
                        args.clone(),
                    ));
                    server_pending.push((
                        t + (REQ_LEG + SERVICE_LEG) * dur,
                        ord,
                        EV_PAGE_SEND,
                        EventKind::Instant,
                        args.clone(),
                    ));
                    pager.push((t + dur, ord, EV_PAGE_RECV, EventKind::Instant, args));
                    if emit_full && *write {
                        // The remote write fault invalidates the home copy
                        // when the request reaches the directory.
                        server_pending.push((
                            t + REQ_LEG * dur,
                            ord,
                            EV_PAGE_INVAL,
                            EventKind::Instant,
                            vec![("page", ArgValue::U64(*page))],
                        ));
                    }
                    if *sample {
                        let ts = t + dur;
                        for (name, v) in [
                            ("svm.faults", totals.faults as f64),
                            ("svm.transfers", totals.transfers as f64),
                            ("svm.bytes", totals.bytes as f64),
                            ("svm.invalidations", totals.invalidations as f64),
                        ] {
                            server_pending.push((ts, ord, name, EventKind::Counter(v), Vec::new()));
                        }
                    }
                }
            }
            PageOp::HomeWrite { page, t } => {
                if valid.remove(page) {
                    let st = pages.entry(*page).or_default();
                    st.invalidations += 1;
                    totals.invalidations += 1;
                    if emit_full {
                        server_pending.push((
                            *t,
                            ord,
                            EV_PAGE_INVAL,
                            EventKind::Instant,
                            vec![("page", ArgValue::U64(*page))],
                        ));
                    }
                }
            }
        }
    }

    // Flush through real sinks so logical clocks and thread ordinals are
    // assigned exactly as a live recorder would.
    let mut control = home_rec.sink("control");
    let mut server = home_rec.sink("svm-server");
    emit_sorted(&mut control, &cfg.home_clock, control_pending);
    emit_sorted(&mut server, &cfg.home_clock, server_pending);
    drop(control);
    drop(server);
    for (w, pending) in pager_pending {
        let mut pager = remote_rec.sink(format!("pager {w}"));
        emit_sorted(&mut pager, &cfg.remote_clock, pending);
    }

    let home = MachineLog {
        name: "m0".into(),
        threads: home_rec.threads(),
        events: home_rec.events(),
    };
    let remote = MachineLog {
        name: "m1".into(),
        threads: remote_rec.threads(),
        events: remote_rec.events(),
    };

    SvmSimResult {
        cfg: *cfg,
        sim,
        overheads: SvmOverheads {
            warmup_s,
            page_wait_s,
            transfer_s,
        },
        totals,
        pages,
        home,
        remote,
        fault_overheads,
    }
}

impl SvmSimResult {
    /// Reconstructs one simulated-time [`Timeline`] per machine, in true
    /// seconds and with SVM activity split out: remote workers show
    /// `warmup` and per-task `page t<N>` spans before each `exec` span.
    /// Both timelines share the run's makespan, so every simulated instant
    /// on every processor of either machine is attributed to a span.
    pub fn timelines(&self) -> (Timeline, Timeline) {
        let machine = self.cfg.sim.machine;
        let mut home = Timeline::new(self.home.name.clone(), self.sim.makespan);
        let mut remote = Timeline::new(self.remote.name.clone(), self.sim.makespan);
        for w in 0..self.cfg.sim.task_processes {
            let is_rem = machine.is_remote(w);
            let ready = self.sim.fork_ready[w as usize];
            let mut spans = Vec::new();
            if is_rem {
                let fork_end = self.cfg.sim.fork_overhead.min(ready);
                if fork_end > 0.0 {
                    spans.push(Span::new("fork", Category::Sim, 0.0, fork_end));
                }
                if ready > fork_end {
                    spans.push(Span::new("warmup", Category::Svm, fork_end, ready));
                }
            } else if ready > 0.0 {
                spans.push(Span::new("fork", Category::Sim, 0.0, ready));
            }
            let mut cursor = ready;
            for (e, &overhead) in self
                .sim
                .executions
                .iter()
                .zip(&self.fault_overheads)
                .filter(|(e, _)| e.worker == w)
            {
                if e.acquired > cursor {
                    spans.push(Span::new("wait-queue", Category::Queue, cursor, e.acquired));
                }
                if e.started > e.acquired {
                    spans.push(Span::new("dequeue", Category::Queue, e.acquired, e.started));
                }
                let o = overhead.min(e.finished - e.started);
                if o > 0.0 {
                    spans.push(Span::new(
                        format!("page t{}", e.task),
                        Category::Svm,
                        e.started,
                        e.started + o,
                    ));
                }
                spans.push(Span::new(
                    format!("exec t{}", e.task),
                    Category::Sim,
                    e.started + o,
                    e.finished,
                ));
                cursor = e.finished;
            }
            if let Some(d) = self.sim.deaths.iter().find(|d| d.worker == w) {
                if d.acquired > cursor {
                    spans.push(Span::new("wait-queue", Category::Queue, cursor, d.acquired));
                }
                if d.died > d.acquired {
                    spans.push(Span::new("dequeue", Category::Queue, d.acquired, d.died));
                }
                spans.push(Span::new(
                    format!("death t{}", d.task),
                    Category::Sim,
                    d.died,
                    d.detected,
                ));
                cursor = d.detected;
            }
            if self.sim.makespan > cursor {
                spans.push(Span::new("idle", Category::Sim, cursor, self.sim.makespan));
            }
            let track = Track {
                name: format!("worker {w}"),
                spans,
            };
            if is_rem {
                remote.tracks.push(track);
            } else {
                home.tracks.push(track);
            }
        }
        let total = self.sim.completions.len() + self.sim.lost_tasks as usize;
        let mut samples = vec![(0.0, total as f64)];
        for (i, &(_, t)) in self.sim.completions.iter().enumerate() {
            samples.push((t, (total - i - 1) as f64));
        }
        home.counters.push(CounterSeries {
            name: "outstanding_tasks".into(),
            samples,
        });
        (home, remote)
    }

    /// Number of remote task processes in this run.
    pub fn remote_workers(&self) -> u32 {
        (0..self.cfg.sim.task_processes)
            .filter(|&w| self.cfg.sim.machine.is_remote(w))
            .count() as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::Machine;

    fn uniform_tasks(n: u32, service: f64) -> Vec<Task> {
        (0..n).map(|i| Task::new(i, service)).collect()
    }

    fn cfg(n: u32, level: ObsLevel) -> SvmSimConfig {
        let mut c = SvmSimConfig::dual_encore(n);
        c.level = level;
        c
    }

    #[test]
    fn svm_sim_is_bit_identical_to_plain_sim() {
        let tasks = uniform_tasks(120, 2.0);
        let c = cfg(20, ObsLevel::Full);
        let plain = simulate_with_faults(&c.sim, &tasks, &FaultPlan::none());
        let svm = simulate_svm(&c, &tasks);
        assert_eq!(svm.sim.makespan.to_bits(), plain.makespan.to_bits());
        assert_eq!(svm.sim.total_work.to_bits(), plain.total_work.to_bits());
        assert_eq!(svm.sim.busy, plain.busy);
        assert_eq!(svm.sim.completions, plain.completions);
    }

    #[test]
    fn recorder_level_never_changes_results() {
        let tasks = uniform_tasks(150, 1.5);
        let off = simulate_svm(&cfg(20, ObsLevel::Off), &tasks);
        let full = simulate_svm(&cfg(20, ObsLevel::Full), &tasks);
        assert_eq!(off.sim.makespan.to_bits(), full.sim.makespan.to_bits());
        assert_eq!(off.sim.total_work.to_bits(), full.sim.total_work.to_bits());
        assert_eq!(off.totals, full.totals);
        assert_eq!(off.pages, full.pages);
        assert_eq!(off.overheads, full.overheads);
        // Off records nothing; the result is derived, never observed.
        assert!(off.home.events.is_empty());
        assert!(off.remote.events.is_empty());
    }

    #[test]
    fn overheads_decompose_the_charged_service_exactly() {
        let tasks = uniform_tasks(200, 2.0);
        let c = cfg(20, ObsLevel::Off);
        let r = simulate_svm(&c, &tasks);
        let svm = c.sim.svm;
        // Warmup: every remote worker paid one warmup at fork.
        let remotes = f64::from(r.remote_workers());
        assert!((r.overheads.warmup_s - remotes * svm.warmup_overhead()).abs() < 1e-9);
        // Fault overhead: page-wait + transfer equals the charged extra
        // service exactly (0.3/0.7 split of the same total).
        let remote_tasks: u32 = r
            .sim
            .executions
            .iter()
            .filter(|e| c.sim.machine.is_remote(e.worker))
            .count() as u32;
        let charged = f64::from(remote_tasks) * svm.per_task_overhead();
        assert!(
            (r.overheads.page_wait_s + r.overheads.transfer_s - charged).abs() < 1e-6,
            "split {} vs charged {charged}",
            r.overheads.page_wait_s + r.overheads.transfer_s
        );
        assert!((r.overheads.page_wait_s / charged - 0.3).abs() < 1e-9);
        assert!((r.overheads.transfer_s / charged - 0.7).abs() < 1e-9);
    }

    #[test]
    fn coherence_counters_are_consistent() {
        let tasks = uniform_tasks(180, 2.0);
        let r = simulate_svm(&cfg(20, ObsLevel::Off), &tasks);
        assert!(r.totals.faults > 0);
        assert!(r.totals.transfers > 0);
        assert!(r.totals.transfers <= r.totals.faults);
        // Bytes are transfers × segment size.
        let seg = (8192.0 * r.cfg.sim.svm.segment_shipping_factor).round() as u64;
        assert_eq!(r.totals.bytes, r.totals.transfers * seg);
        // Home commits + remote write faults both invalidate.
        assert!(r.totals.invalidations > 0);
        // Per-page stats sum to the aggregate.
        let sum: u64 = r.pages.values().map(|p| p.faults).sum();
        assert_eq!(sum, r.totals.faults);
        // Deterministic replay.
        let r2 = simulate_svm(&cfg(20, ObsLevel::Off), &tasks);
        assert_eq!(r.totals, r2.totals);
        assert_eq!(r.pages, r2.pages);
    }

    #[test]
    fn zero_tasks_still_pays_warmup_but_nothing_else() {
        // Edge case: forked remote workers copy the initial working memory
        // even when the queue turns out to be empty — warmup is a property
        // of the fork, not of the tasks. Everything per-task stays zero.
        let r = simulate_svm(&cfg(20, ObsLevel::Full), &[]);
        let remotes = f64::from(r.remote_workers());
        assert!(remotes > 0.0);
        assert!((r.overheads.warmup_s - remotes * r.cfg.sim.svm.warmup_overhead()).abs() < 1e-9);
        assert_eq!(r.overheads.page_wait_s, 0.0);
        assert_eq!(r.overheads.transfer_s, 0.0);
        assert!(r.sim.executions.is_empty());
        assert!(r.sim.completions.is_empty());
        // Coherence counters show only the warmup fault storm.
        let warm_faults = r.cfg.sim.svm.warmup_faults.round() as u64 * remotes as u64;
        assert_eq!(r.totals.faults, warm_faults);
    }

    #[test]
    fn local_only_run_has_no_svm_traffic() {
        let tasks = uniform_tasks(60, 1.0);
        let r = simulate_svm(&cfg(13, ObsLevel::Full), &tasks);
        assert_eq!(r.totals, PageStats::default());
        assert_eq!(r.overheads.total(), 0.0);
        assert!(r.remote.events.is_empty());
        assert_eq!(r.remote_workers(), 0);
    }

    #[test]
    #[cfg(feature = "recorder")]
    fn event_logs_are_well_formed_and_stitchable_under_skew() {
        use tlp_obs::stitch::stitch;
        let tasks = uniform_tasks(160, 2.0);
        for skew_us in [-5_000i64, 0, 5_000] {
            let mut c = cfg(20, ObsLevel::Full);
            c.remote_clock = ClockDomain::new(skew_us, 150.0);
            let r = simulate_svm(&c, &tasks);
            assert!(!r.home.events.is_empty());
            assert!(!r.remote.events.is_empty());
            // Migration instants appear for remote dispatches only.
            assert!(r.home.events.iter().any(|e| e.name == EV_TASK_MIGRATE));
            let s = stitch(r.home.clone(), r.remote.clone()).unwrap();
            assert!(s.report.pairs > 100, "pairs {}", s.report.pairs);
            assert_eq!(s.report.inversions, 0, "skew {skew_us}");
            // The fitted offset recovers the injected skew to within the
            // asymmetric-leg bias (a fraction of one fault).
            let fault_us = 1e6 * c.sim.svm.per_task_overhead() / c.sim.svm.faults_per_task;
            assert!(
                (s.report.offset_us + skew_us as f64).abs() < fault_us,
                "skew {skew_us}: offset {}",
                s.report.offset_us
            );
        }
    }

    #[test]
    #[cfg(feature = "recorder")]
    fn stitched_chrome_trace_validates_with_high_coverage() {
        use tlp_obs::stitch::stitch;
        use tlp_obs::{validate_chrome_trace, TraceDoc};
        let tasks = uniform_tasks(160, 2.0);
        let mut c = cfg(20, ObsLevel::Full);
        c.remote_clock = ClockDomain::new(-3_500, 80.0);
        let r = simulate_svm(&c, &tasks);
        let s = stitch(r.home.clone(), r.remote.clone()).unwrap();
        let (home_tl, remote_tl) = r.timelines();
        let mut doc = TraceDoc::new();
        doc.add_machine(&s.home);
        doc.add_machine(&s.remote);
        doc.add_timeline(&home_tl);
        doc.add_timeline(&remote_tl);
        let sum = validate_chrome_trace(&doc.write()).unwrap();
        assert_eq!(sum.processes, 4);
        assert!(sum.coverage.unwrap() > 0.99, "coverage {:?}", sum.coverage);
    }

    #[test]
    fn timelines_cover_both_machines_fully() {
        let tasks = uniform_tasks(140, 2.0);
        let r = simulate_svm(&cfg(20, ObsLevel::Off), &tasks);
        let (home, remote) = r.timelines();
        assert_eq!(home.tracks.len(), 13);
        assert_eq!(remote.tracks.len(), 7);
        assert!(home.coverage() > 0.999_999, "home {}", home.coverage());
        assert!(
            remote.coverage() > 0.999_999,
            "remote {}",
            remote.coverage()
        );
        // Remote tracks show the SVM-specific spans.
        let names: Vec<&str> = remote.tracks[0]
            .spans
            .iter()
            .map(|s| s.name.as_str())
            .collect();
        assert!(names.contains(&"warmup"), "{names:?}");
        assert!(names.iter().any(|n| n.starts_with("page t")), "{names:?}");
    }

    #[test]
    fn clock_domain_maps_are_monotone_and_clamped() {
        let d = ClockDomain::new(-5_000, 100.0);
        assert_eq!(d.local_us(0.0), 0); // clamped
        let a = d.local_us(1.0);
        let b = d.local_us(2.0);
        assert!(b > a);
        // Drift: 100 ppm over 1 s is 100 µs.
        let i = ClockDomain::new(0, 100.0);
        assert_eq!(i.local_us(1.0), 1_000_100);
        assert_eq!(ClockDomain::identity().local_us(1.0), 1_000_000);
    }

    #[test]
    fn dual_encore_svm_machine_still_shapes_the_run() {
        // Sanity link to the machine model: exactly the workers at index
        // ≥ local usable are remote.
        let m = Machine::dual_encore_svm();
        assert_eq!(m.local.usable(), 13);
        assert!(m.is_remote(13));
        assert!(!m.is_remote(12));
    }
}
