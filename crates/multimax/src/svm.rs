//! The shared-virtual-memory (netmemory) cost model.
//!
//! §7 of the paper describes the CMU shared-memory server coupling two
//! Encore Multimaxes: a remote page fault costs ~50 ms; naive data layout
//! caused *false contention* (unrelated objects on one page ping-ponging
//! across the network) severe enough to halt initialisation; two fixes —
//! data-structure layout and 64-byte sub-page shipping — made real
//! speed-ups possible, at a residual cost equivalent to ≈1.5 processors
//! once remote processors join.

/// SVM cost parameters.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SvmConfig {
    /// Latency of one remote page fault, seconds (paper: 50 ms).
    pub fault_latency: f64,
    /// Page faults a remote task process takes per task (working-set pages
    /// for the task WME, productions are replicated so only data moves).
    pub faults_per_task: f64,
    /// One-time faults a remote worker takes at start-up (copying the
    /// initial working memory across).
    pub warmup_faults: f64,
    /// False-sharing amplification factor ≥ 1: multiplies the per-task
    /// fault count. 1.0 models the paper's final, layout-fixed system;
    /// large values reproduce the "brought our system to a halt" state.
    pub false_sharing: f64,
    /// Sub-page (64-byte segment) shipping: reduces the effective fault
    /// cost because only modified segments cross the network. 1.0 = full
    /// 8 KB pages; the optimised server ships 64-byte segments.
    pub segment_shipping_factor: f64,
}

impl SvmConfig {
    /// The tuned configuration reproducing Figure 9: remote processors are
    /// useful but cost ≈1.5 processors of throughput in aggregate.
    pub fn tuned() -> SvmConfig {
        SvmConfig {
            fault_latency: 0.050,
            faults_per_task: 60.0,
            warmup_faults: 600.0,
            false_sharing: 1.0,
            segment_shipping_factor: 0.25,
        }
    }

    /// The initial, naive configuration (§7: false contention on shared
    /// pages, full-page shipping) — used by the ablation bench.
    pub fn naive() -> SvmConfig {
        SvmConfig {
            fault_latency: 0.050,
            faults_per_task: 60.0,
            warmup_faults: 600.0,
            false_sharing: 40.0,
            segment_shipping_factor: 1.0,
        }
    }

    /// Extra seconds a remote task process pays per task.
    pub fn per_task_overhead(&self) -> f64 {
        self.fault_latency
            * self.faults_per_task
            * self.false_sharing
            * self.segment_shipping_factor
    }

    /// Per-task overhead under a page-fault storm: `storm_factor` (≥ 1)
    /// multiplies the fault count a remote task takes (a burst of working-
    /// set misses, e.g. after a remote worker's cache is invalidated).
    /// `storm_factor = 1.0` is exactly [`Self::per_task_overhead`].
    pub fn per_task_overhead_with_storm(&self, storm_factor: f64) -> f64 {
        self.fault_latency
            * self.faults_per_task
            * storm_factor
            * self.false_sharing
            * self.segment_shipping_factor
    }

    /// One-time start-up cost of a remote task process.
    pub fn warmup_overhead(&self) -> f64 {
        self.fault_latency * self.warmup_faults * self.segment_shipping_factor
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tuned_overhead_is_sub_second() {
        let s = SvmConfig::tuned();
        assert!(s.per_task_overhead() < 1.0);
        assert!(s.per_task_overhead() > 0.0);
    }

    #[test]
    fn storm_scales_overhead_and_unity_is_exact() {
        let s = SvmConfig::tuned();
        assert_eq!(s.per_task_overhead_with_storm(1.0), s.per_task_overhead());
        assert!((s.per_task_overhead_with_storm(8.0) - 8.0 * s.per_task_overhead()).abs() < 1e-12);
    }

    #[test]
    fn naive_is_orders_of_magnitude_worse() {
        let naive = SvmConfig::naive();
        let tuned = SvmConfig::tuned();
        assert!(naive.per_task_overhead() / tuned.per_task_overhead() > 50.0);
    }

    #[test]
    fn storm_factor_zero_means_no_faults_and_no_cost() {
        // A task whose working set is entirely resident takes no faults at
        // all — the storm multiplier scales through zero exactly.
        assert_eq!(SvmConfig::tuned().per_task_overhead_with_storm(0.0), 0.0);
        assert_eq!(SvmConfig::naive().per_task_overhead_with_storm(0.0), 0.0);
    }

    #[test]
    fn warmup_overhead_edge_cases() {
        // Tuned: 600 faults x 50 ms x 0.25 segment shipping = 7.5 s.
        assert!((SvmConfig::tuned().warmup_overhead() - 7.5).abs() < 1e-12);
        // No initial working memory to copy -> free fork, regardless of the
        // per-task parameters.
        let free = SvmConfig {
            warmup_faults: 0.0,
            ..SvmConfig::naive()
        };
        assert_eq!(free.warmup_overhead(), 0.0);
        // Warmup ships the initial image linearly: it scales with the
        // segment-shipping factor but is immune to false sharing (pages are
        // read once, not ping-ponged).
        let full_pages = SvmConfig {
            segment_shipping_factor: 1.0,
            ..SvmConfig::tuned()
        };
        assert!(
            (full_pages.warmup_overhead() - 4.0 * SvmConfig::tuned().warmup_overhead()).abs()
                < 1e-12
        );
        let contended = SvmConfig {
            false_sharing: 40.0,
            ..SvmConfig::tuned()
        };
        assert_eq!(
            contended.warmup_overhead(),
            SvmConfig::tuned().warmup_overhead()
        );
    }

    #[test]
    fn tuned_never_costs_more_than_naive() {
        // Ordering property: the layout-fixed + segment-shipping system is
        // at least as cheap as the naive one at every storm intensity, and
        // at warmup. (tuned multiplies by 1.0 x 0.25, naive by 40 x 1.0.)
        let tuned = SvmConfig::tuned();
        let naive = SvmConfig::naive();
        for storm in [0.0, 0.25, 0.5, 1.0, 2.0, 8.0, 32.0, 1e3] {
            assert!(
                tuned.per_task_overhead_with_storm(storm)
                    <= naive.per_task_overhead_with_storm(storm),
                "storm {storm}"
            );
        }
        assert!(tuned.warmup_overhead() <= naive.warmup_overhead());
    }
}
