//! The discrete-event simulation core.
//!
//! Fault injection: [`simulate_with_faults`] runs the same event loop under
//! a seeded [`FaultPlan`] — processor deaths (the in-flight task is requeued
//! after a detection delay), stragglers (service-time multipliers), and
//! page-fault storms on remote SVM workers. A benign plan reproduces
//! [`simulate`] bit-for-bit.

use crate::machine::Machine;
use crate::schedule::Schedule;
use crate::svm::SvmConfig;
use crate::task::Task;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};
use tlp_fault::FaultPlan;
use tlp_obs::{Category, CounterSeries, Span, Timeline, Track};

/// Simulation configuration.
#[derive(Clone, Copy, Debug)]
pub struct SimConfig {
    /// The machine to run on.
    pub machine: Machine,
    /// Number of task processes (≤ `machine.usable()`).
    pub task_processes: u32,
    /// Time to dequeue one task while holding the queue lock (seconds).
    /// §6.2: total task-management overhead "less than 25 seconds" for
    /// ~300–1000 tasks, so per-dequeue is tens of milliseconds.
    pub dequeue_overhead: f64,
    /// One-time fork / initialisation cost per task process (seconds).
    pub fork_overhead: f64,
    /// Speed-up applied to each task's match component (dedicated match
    /// processes; 1.0 = none).
    pub match_speedup: f64,
    /// Queue serving order.
    pub schedule: Schedule,
    /// SVM cost model, applied to workers on the remote cluster.
    pub svm: SvmConfig,
    /// Time for the control process to notice a dead task process and
    /// requeue its in-flight task (heartbeat timeout scale, seconds). Only
    /// exercised when a [`FaultPlan`] injects processor deaths.
    pub death_detection: f64,
}

impl SimConfig {
    /// Config for `n` task processes on a lone Encore Multimax with the
    /// paper's overhead scale.
    pub fn encore(n: u32) -> SimConfig {
        SimConfig {
            machine: Machine::encore_multimax(),
            task_processes: n,
            dequeue_overhead: 0.025,
            fork_overhead: 0.5,
            match_speedup: 1.0,
            schedule: Schedule::Fifo,
            svm: SvmConfig::tuned(),
            death_detection: 1.0,
        }
    }

    /// Config for `n` task processes across the dual-Encore SVM platform.
    pub fn dual_encore(n: u32) -> SimConfig {
        SimConfig {
            machine: Machine::dual_encore_svm(),
            ..SimConfig::encore(n)
        }
    }
}

/// One task execution on one worker (simulated seconds). Together with
/// [`DeathEvent`]s and [`SimResult::fork_ready`] these reconstruct the
/// complete per-processor schedule — see [`SimResult::timeline`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TaskExec {
    /// Task id.
    pub task: u32,
    /// Executing worker.
    pub worker: u32,
    /// When the worker began waiting on the queue lock for this task.
    pub queued_at: f64,
    /// When the worker acquired the queue lock.
    pub acquired: f64,
    /// When execution started (lock released).
    pub started: f64,
    /// When execution finished.
    pub finished: f64,
}

/// A worker death under fault injection (simulated seconds).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DeathEvent {
    /// The worker that died.
    pub worker: u32,
    /// Task it was dispatching when it died.
    pub task: u32,
    /// When it acquired the queue lock for its fatal dispatch.
    pub acquired: f64,
    /// When it crashed (lock released; execution never started).
    pub died: f64,
    /// When the control process noticed and requeued the task.
    pub detected: f64,
}

/// Result of one simulation run.
#[derive(Clone, Debug)]
pub struct SimResult {
    /// Wall-clock completion time of the last task (seconds).
    pub makespan: f64,
    /// Per-worker busy time (task execution only).
    pub busy: Vec<f64>,
    /// Per-worker count of executed tasks.
    pub tasks_executed: Vec<u32>,
    /// Total time spent waiting for the queue lock.
    pub queue_wait: f64,
    /// Total time spent in dequeue critical sections.
    pub queue_service: f64,
    /// Sum of task service times actually charged (incl. SVM overheads).
    pub total_work: f64,
    /// Completion time of each task, in serving order.
    pub completions: Vec<(u32, f64)>,
    /// Time at which each worker finished its last task (or its start-up,
    /// when it never got one).
    pub per_worker_finish: Vec<f64>,
    /// Workers that died mid-run (fault injection; empty without faults).
    pub failed_workers: Vec<u32>,
    /// Task dispatches repeated because the executing worker died.
    pub task_retries: u32,
    /// Tasks never completed because every worker died first.
    pub lost_tasks: u32,
    /// Every task execution, in dispatch order (flight-recorder feed).
    pub executions: Vec<TaskExec>,
    /// Worker deaths, in occurrence order (empty without faults).
    pub deaths: Vec<DeathEvent>,
    /// Per-worker fork/start-up completion time.
    pub fork_ready: Vec<f64>,
}

impl SimResult {
    /// Mean processor utilisation over the makespan.
    pub fn utilization(&self) -> f64 {
        if self.makespan <= 0.0 || self.busy.is_empty() {
            return 0.0;
        }
        self.busy.iter().sum::<f64>() / (self.makespan * self.busy.len() as f64)
    }

    /// The tail-end effect (§6.2): the fraction of the makespan during
    /// which at least one processor was already permanently idle,
    /// `(makespan − earliest worker finish) / makespan`.
    pub fn tail_fraction(&self) -> f64 {
        if self.makespan <= 0.0 || self.per_worker_finish.is_empty() {
            return 0.0;
        }
        let earliest = self
            .per_worker_finish
            .iter()
            .copied()
            .fold(f64::INFINITY, f64::min);
        ((self.makespan - earliest) / self.makespan).max(0.0)
    }

    /// Reconstructs the complete per-processor schedule as a
    /// [`Timeline`]: one track per worker with fork, lock-wait, dequeue,
    /// execution, death, and idle spans, plus an outstanding-task counter
    /// series. Every simulated instant on every worker is attributed to
    /// some span, so [`Timeline::coverage`] is 1.0 for any run.
    pub fn timeline(&self, name: &str) -> Timeline {
        let mut tl = Timeline::new(name, self.makespan);
        for (w, &ready) in self.fork_ready.iter().enumerate() {
            let mut spans = Vec::new();
            if ready > 0.0 {
                spans.push(Span::new("fork", Category::Sim, 0.0, ready));
            }
            let mut cursor = ready;
            for e in self.executions.iter().filter(|e| e.worker == w as u32) {
                if e.acquired > cursor {
                    spans.push(Span::new("wait-queue", Category::Queue, cursor, e.acquired));
                }
                if e.started > e.acquired {
                    spans.push(Span::new("dequeue", Category::Queue, e.acquired, e.started));
                }
                spans.push(Span::new(
                    format!("exec t{}", e.task),
                    Category::Sim,
                    e.started,
                    e.finished,
                ));
                cursor = e.finished;
            }
            // At most one death per worker, always after its last execution.
            if let Some(d) = self.deaths.iter().find(|d| d.worker == w as u32) {
                if d.acquired > cursor {
                    spans.push(Span::new("wait-queue", Category::Queue, cursor, d.acquired));
                }
                if d.died > d.acquired {
                    spans.push(Span::new("dequeue", Category::Queue, d.acquired, d.died));
                }
                spans.push(Span::new(
                    format!("death t{}", d.task),
                    Category::Sim,
                    d.died,
                    d.detected,
                ));
                cursor = d.detected;
            }
            if self.makespan > cursor {
                spans.push(Span::new("idle", Category::Sim, cursor, self.makespan));
            }
            tl.tracks.push(Track {
                name: format!("worker {w}"),
                spans,
            });
        }
        let total = self.completions.len() + self.lost_tasks as usize;
        let mut samples = vec![(0.0, total as f64)];
        for (i, &(_, t)) in self.completions.iter().enumerate() {
            samples.push((t, (total - i - 1) as f64));
        }
        tl.counters.push(CounterSeries {
            name: "outstanding_tasks".into(),
            samples,
        });
        tl
    }
}

/// Runs the simulation: `cfg.task_processes` workers pull `tasks` from a
/// central FIFO queue (after `cfg.schedule` reordering) until exhausted.
///
/// # Panics
/// Panics when `task_processes` is 0 or exceeds the machine's usable
/// processors.
pub fn simulate(cfg: &SimConfig, tasks: &[Task]) -> SimResult {
    simulate_with_faults(cfg, tasks, &FaultPlan::none())
}

/// Runs the simulation under an injected [`FaultPlan`].
///
/// Three fault kinds apply here, all pure functions of the plan and the
/// fault site's identity (so same plan ⇒ same result, always):
///
/// * **processor death** — a worker fated `Some(k)` by
///   [`FaultPlan::worker_death`] completes `k` tasks and dies while
///   executing the next one. The control process notices after
///   `cfg.death_detection` seconds and requeues the in-flight task at the
///   head of the queue; the dead worker never serves again. If every
///   worker dies, the remaining tasks are counted in
///   [`SimResult::lost_tasks`].
/// * **stragglers** — [`FaultPlan::service_factor`] multiplies the task's
///   service time (keyed by task id).
/// * **page-fault storms** — [`FaultPlan::page_fault_factor`] multiplies
///   the per-task SVM fault count for workers on the remote cluster.
///
/// With a benign plan this is exactly [`simulate`].
///
/// # Panics
/// Panics when `task_processes` is 0 or exceeds the machine's usable
/// processors.
pub fn simulate_with_faults(cfg: &SimConfig, tasks: &[Task], plan: &FaultPlan) -> SimResult {
    let n = cfg.task_processes;
    assert!(n >= 1, "need at least one task process");
    assert!(
        n <= cfg.machine.usable(),
        "machine has only {} usable processors, asked for {n}",
        cfg.machine.usable()
    );

    // Pending queue: (task, earliest dispatch time). Requeued tasks carry
    // the death-detection time; fresh tasks are ready immediately.
    let mut pending: VecDeque<(Task, f64)> = cfg
        .schedule
        .order(tasks)
        .into_iter()
        .map(|t| (t, 0.0))
        .collect();

    // Worker-available min-heap: (available_time, worker_index).
    let mut heap: BinaryHeap<Reverse<(OrdF64, u32)>> = BinaryHeap::new();
    let mut busy = vec![0.0f64; n as usize];
    let mut counts = vec![0u32; n as usize];
    let mut finishes = vec![0.0f64; n as usize];
    for w in 0..n {
        let mut t = cfg.fork_overhead;
        if cfg.machine.is_remote(w) {
            t += cfg.svm.warmup_overhead();
        }
        heap.push(Reverse((OrdF64(t), w)));
        finishes[w as usize] = t;
    }
    let deaths: Vec<Option<u64>> = (0..n).map(|w| plan.worker_death(w as usize)).collect();

    let mut lock_free_at = 0.0f64;
    let mut queue_wait = 0.0;
    let mut queue_service = 0.0;
    let mut total_work = 0.0;
    let mut completions = Vec::with_capacity(pending.len());
    let mut makespan: f64 = 0.0;
    let mut failed_workers = Vec::new();
    let mut task_retries = 0u32;
    let mut lost_tasks = 0u32;
    let mut executions = Vec::with_capacity(pending.len());
    let mut death_events = Vec::new();
    let fork_ready = finishes.clone();

    while let Some((task, ready_at)) = pending.pop_front() {
        let Some(Reverse((OrdF64(avail), w))) = heap.pop() else {
            // Every worker is dead; nothing can serve the rest.
            lost_tasks = 1 + pending.len() as u32;
            break;
        };
        let avail = avail.max(ready_at);
        // Acquire the queue lock (serialised).
        let acquired = avail.max(lock_free_at);
        queue_wait += acquired - avail;
        lock_free_at = acquired + cfg.dequeue_overhead;
        queue_service += cfg.dequeue_overhead;
        if deaths[w as usize] == Some(u64::from(counts[w as usize])) {
            // The worker crashes executing this task: the control process
            // notices after the detection timeout and puts the task back at
            // the head of the queue. The worker is gone for good.
            failed_workers.push(w);
            task_retries += 1;
            let detect = lock_free_at + cfg.death_detection;
            finishes[w as usize] = lock_free_at;
            makespan = makespan.max(detect);
            death_events.push(DeathEvent {
                worker: w,
                task: task.id,
                acquired,
                died: lock_free_at,
                detected: detect,
            });
            pending.push_front((task, detect));
            continue;
        }
        // Execute.
        let mut service = task.service_with_match_speedup(cfg.match_speedup)
            * plan.service_factor(task.id as usize);
        if cfg.machine.is_remote(w) {
            service += cfg
                .svm
                .per_task_overhead_with_storm(plan.page_fault_factor(task.id as usize));
        }
        let finish = lock_free_at + service;
        busy[w as usize] += service;
        counts[w as usize] += 1;
        finishes[w as usize] = finish;
        total_work += service;
        completions.push((task.id, finish));
        executions.push(TaskExec {
            task: task.id,
            worker: w,
            queued_at: avail,
            acquired,
            started: lock_free_at,
            finished: finish,
        });
        makespan = makespan.max(finish);
        heap.push(Reverse((OrdF64(finish), w)));
    }

    SimResult {
        makespan,
        busy,
        tasks_executed: counts,
        queue_wait,
        queue_service,
        total_work,
        completions,
        per_worker_finish: finishes,
        failed_workers,
        task_retries,
        lost_tasks,
        executions,
        deaths: death_events,
        fork_ready,
    }
}

/// Totally ordered f64 for the heap (times are finite by construction).
#[derive(Clone, Copy, PartialEq)]
struct OrdF64(f64);

impl Eq for OrdF64 {}

impl PartialOrd for OrdF64 {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for OrdF64 {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.partial_cmp(&other.0).expect("finite time")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn uniform_tasks(n: u32, service: f64) -> Vec<Task> {
        (0..n).map(|i| Task::new(i, service)).collect()
    }

    fn cheap_cfg(n: u32) -> SimConfig {
        let mut c = SimConfig::encore(n);
        c.dequeue_overhead = 0.0;
        c.fork_overhead = 0.0;
        c
    }

    #[test]
    fn single_worker_executes_serially() {
        let tasks = uniform_tasks(10, 2.0);
        let r = simulate(&cheap_cfg(1), &tasks);
        assert!((r.makespan - 20.0).abs() < 1e-9);
        assert_eq!(r.tasks_executed, vec![10]);
        assert!((r.utilization() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn equal_tasks_scale_linearly() {
        let tasks = uniform_tasks(140, 1.0);
        let base = simulate(&cheap_cfg(1), &tasks).makespan;
        for n in [2, 7, 14] {
            let r = simulate(&cheap_cfg(n), &tasks);
            let speedup = base / r.makespan;
            assert!(
                (speedup - n as f64).abs() < 1e-6,
                "n={n}: speedup {speedup}"
            );
        }
    }

    #[test]
    fn one_giant_task_caps_speedup() {
        let mut tasks = uniform_tasks(20, 1.0);
        tasks.push(Task::new(99, 100.0));
        let base = simulate(&cheap_cfg(1), &tasks).makespan;
        let r = simulate(&cheap_cfg(14), &tasks);
        // Makespan is dominated by the giant task.
        assert!(r.makespan >= 100.0);
        assert!(base / r.makespan < 1.2);
    }

    #[test]
    fn work_is_conserved() {
        let tasks: Vec<Task> = (0..50)
            .map(|i| Task::new(i, 0.5 + 0.1 * i as f64))
            .collect();
        let expected: f64 = tasks.iter().map(|t| t.service).sum();
        for n in [1, 3, 8] {
            let r = simulate(&cheap_cfg(n), &tasks);
            assert!((r.total_work - expected).abs() < 1e-9, "n={n}");
            assert!((r.busy.iter().sum::<f64>() - expected).abs() < 1e-9);
            assert_eq!(r.tasks_executed.iter().sum::<u32>(), 50);
        }
    }

    #[test]
    fn makespan_monotone_in_workers() {
        let tasks: Vec<Task> = (0..97)
            .map(|i| Task::new(i, 1.0 + ((i * 7919) % 13) as f64 * 0.3))
            .collect();
        let mut prev = f64::INFINITY;
        for n in 1..=14 {
            let r = simulate(&cheap_cfg(n), &tasks);
            assert!(
                r.makespan <= prev + 1e-9,
                "adding a worker must not slow FIFO list scheduling down here (n={n})"
            );
            prev = r.makespan;
        }
    }

    #[test]
    fn queue_lock_serialises() {
        // With a huge dequeue overhead, workers serialise on the lock and
        // extra workers stop helping.
        let mut cfg = cheap_cfg(14);
        cfg.dequeue_overhead = 1.0; // as long as the tasks themselves
        let tasks = uniform_tasks(100, 1.0);
        let r = simulate(&cfg, &tasks);
        // Lower bound: 100 dequeues × 1 s serialised.
        assert!(r.makespan >= 100.0);
        assert!(r.queue_wait > 0.0);
    }

    #[test]
    fn lpt_beats_fifo_with_tail_tasks() {
        // Long tasks at the END of the queue create the §6.2 tail-end
        // effect; LPT moves them first.
        let mut tasks = uniform_tasks(60, 1.0);
        tasks.push(Task::new(100, 20.0));
        tasks.push(Task::new(101, 25.0));
        let mut fifo = cheap_cfg(8);
        fifo.schedule = Schedule::Fifo;
        let mut lpt = cheap_cfg(8);
        lpt.schedule = Schedule::Lpt;
        let rf = simulate(&fifo, &tasks);
        let rl = simulate(&lpt, &tasks);
        assert!(
            rl.makespan < rf.makespan,
            "LPT {:.2} must beat FIFO {:.2}",
            rl.makespan,
            rf.makespan
        );
    }

    #[test]
    fn remote_workers_pay_svm_overhead() {
        let tasks = uniform_tasks(260, 2.0);
        let mut local_only = SimConfig::dual_encore(13);
        local_only.dequeue_overhead = 0.0;
        local_only.fork_overhead = 0.0;
        let mut with_remote = SimConfig::dual_encore(20);
        with_remote.dequeue_overhead = 0.0;
        with_remote.fork_overhead = 0.0;

        let base = simulate(
            &SimConfig {
                machine: Machine::dual_encore_svm(),
                ..cheap_cfg(1)
            },
            &tasks,
        )
        .makespan;
        let r13 = simulate(&local_only, &tasks);
        let r20 = simulate(&with_remote, &tasks);
        let s13 = base / r13.makespan;
        let s20 = base / r20.makespan;
        // More processors still help…
        assert!(s20 > s13);
        // …but less than their count: the translational loss of Figure 9.
        assert!(s20 < 20.0 - 0.5, "got {s20}");
    }

    #[test]
    fn match_speedup_shrinks_only_match_component() {
        let tasks: Vec<Task> = (0..30).map(|i| Task::with_match(i, 4.0, 0.5)).collect();
        let mut cfg = cheap_cfg(1);
        cfg.match_speedup = 2.0;
        let r = simulate(&cfg, &tasks);
        assert!((r.makespan - 30.0 * 3.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "usable")]
    fn too_many_workers_rejected() {
        let _ = simulate(&cheap_cfg(15), &uniform_tasks(5, 1.0));
    }

    #[test]
    fn determinism() {
        let tasks: Vec<Task> = (0..40)
            .map(|i| Task::new(i, ((i * 31) % 7) as f64 + 0.25))
            .collect();
        let a = simulate(&cheap_cfg(6), &tasks);
        let b = simulate(&cheap_cfg(6), &tasks);
        assert_eq!(a.makespan, b.makespan);
        assert_eq!(a.busy, b.busy);
        assert_eq!(a.completions, b.completions);
    }

    #[test]
    fn benign_plan_is_exactly_the_plain_run() {
        let tasks: Vec<Task> = (0..60)
            .map(|i| Task::new(i, 0.3 + (i % 5) as f64))
            .collect();
        let cfg = SimConfig::dual_encore(16);
        let plain = simulate(&cfg, &tasks);
        let benign = simulate_with_faults(&cfg, &tasks, &FaultPlan::none());
        assert_eq!(plain.makespan, benign.makespan);
        assert_eq!(plain.busy, benign.busy);
        assert_eq!(plain.completions, benign.completions);
        assert!(benign.failed_workers.is_empty());
        assert_eq!(benign.task_retries, 0);
        assert_eq!(benign.lost_tasks, 0);
    }

    #[test]
    fn worker_death_requeues_the_inflight_task() {
        let tasks = uniform_tasks(30, 1.0);
        // Worker 1 completes two tasks, then dies executing its third.
        let plan = FaultPlan::none().with_worker_death(1, 2);
        let r = simulate_with_faults(&cheap_cfg(3), &tasks, &plan);
        assert_eq!(r.failed_workers, vec![1]);
        assert_eq!(r.task_retries, 1);
        assert_eq!(r.lost_tasks, 0);
        assert_eq!(r.tasks_executed[1], 2);
        // Every task still completes — on the survivors.
        assert_eq!(r.tasks_executed.iter().sum::<u32>(), 30);
        assert_eq!(r.completions.len(), 30);
        // The detection delay plus the lost capacity cost wall-clock time.
        let clean = simulate(&cheap_cfg(3), &tasks);
        assert!(r.makespan > clean.makespan);
    }

    #[test]
    fn losing_every_worker_dead_letters_the_rest() {
        let tasks = uniform_tasks(10, 1.0);
        let plan = FaultPlan::none()
            .with_worker_death(0, 1)
            .with_worker_death(1, 0);
        let r = simulate_with_faults(&cheap_cfg(2), &tasks, &plan);
        assert_eq!(r.failed_workers.len(), 2);
        // Worker 0 finished one task before the pool died; the rest are lost.
        assert_eq!(r.tasks_executed.iter().sum::<u32>(), 1);
        assert_eq!(r.lost_tasks, 9);
        assert!(r.makespan.is_finite());
    }

    #[test]
    fn stragglers_stretch_the_makespan_deterministically() {
        let tasks = uniform_tasks(80, 1.0);
        let plan = FaultPlan::seeded(5).with_stragglers(0.2, 6.0);
        let clean = simulate(&cheap_cfg(8), &tasks);
        let a = simulate_with_faults(&cheap_cfg(8), &tasks, &plan);
        let b = simulate_with_faults(&cheap_cfg(8), &tasks, &plan);
        assert!(a.makespan > clean.makespan);
        assert_eq!(a.makespan, b.makespan);
        assert_eq!(a.busy, b.busy);
        assert_eq!(a.completions, b.completions);
    }

    #[test]
    fn page_storms_hit_only_remote_workers() {
        let tasks = uniform_tasks(200, 2.0);
        let storm = FaultPlan::seeded(3).with_page_storms(0.5, 8.0);
        // All-local machine: storms have nothing to amplify.
        let local = simulate_with_faults(&cheap_cfg(10), &tasks, &storm);
        let clean_local = simulate(&cheap_cfg(10), &tasks);
        assert_eq!(local.makespan, clean_local.makespan);
        // Remote workers pay the amplified SVM fault cost.
        let mut cfg = SimConfig::dual_encore(20);
        cfg.dequeue_overhead = 0.0;
        cfg.fork_overhead = 0.0;
        let clean_remote = simulate(&cfg, &tasks);
        let stormy = simulate_with_faults(&cfg, &tasks, &storm);
        assert!(stormy.makespan > clean_remote.makespan);
        assert!(stormy.total_work > clean_remote.total_work);
    }

    #[test]
    fn executions_reconstruct_the_full_schedule() {
        let tasks: Vec<Task> = (0..50)
            .map(|i| Task::new(i, 0.5 + (i % 7) as f64 * 0.3))
            .collect();
        let r = simulate(&SimConfig::encore(6), &tasks);
        assert_eq!(r.executions.len(), 50);
        assert_eq!(r.fork_ready.len(), 6);
        // Execution records agree with the aggregate accounting.
        let busy: f64 = r.executions.iter().map(|e| e.finished - e.started).sum();
        assert!((busy - r.busy.iter().sum::<f64>()).abs() < 1e-9);
        for e in &r.executions {
            assert!(e.queued_at <= e.acquired);
            assert!(e.acquired <= e.started);
            assert!(e.started <= e.finished);
        }
    }

    #[test]
    fn timeline_covers_the_whole_makespan() {
        let tasks: Vec<Task> = (0..80)
            .map(|i| Task::new(i, 0.2 + (i % 11) as f64 * 0.4))
            .collect();
        for n in [1, 4, 9] {
            let tl = simulate(&SimConfig::encore(n), &tasks).timeline("sim");
            assert_eq!(tl.tracks.len(), n as usize);
            assert!(
                tl.coverage() > 0.999_999,
                "n={n}: coverage {}",
                tl.coverage()
            );
        }
    }

    #[test]
    fn timeline_covers_faulty_runs_too() {
        let tasks = uniform_tasks(30, 1.0);
        let plan = FaultPlan::none().with_worker_death(1, 2);
        let r = simulate_with_faults(&SimConfig::encore(3), &tasks, &plan);
        assert_eq!(r.deaths.len(), 1);
        assert_eq!(r.deaths[0].worker, 1);
        let tl = r.timeline("faulty");
        assert!(tl.coverage() > 0.999_999, "coverage {}", tl.coverage());
        // The dead worker's track shows the death span.
        assert!(tl.tracks[1]
            .spans
            .iter()
            .any(|s| s.name.starts_with("death")));
    }

    #[test]
    fn rate_driven_deaths_replay_identically() {
        let tasks: Vec<Task> = (0..120)
            .map(|i| Task::new(i, 0.5 + (i % 7) as f64 * 0.4))
            .collect();
        let plan = FaultPlan::seeded(21).with_worker_death_rate(0.4);
        let a = simulate_with_faults(&cheap_cfg(10), &tasks, &plan);
        let b = simulate_with_faults(&cheap_cfg(10), &tasks, &plan);
        assert_eq!(a.makespan, b.makespan);
        assert_eq!(a.failed_workers, b.failed_workers);
        assert_eq!(a.completions, b.completions);
        assert!(!a.failed_workers.is_empty(), "rate 0.4 over 10 workers");
        // Survivors absorb the whole queue.
        assert_eq!(a.tasks_executed.iter().sum::<u32>() + a.lost_tasks, 120);
    }
}
