//! The discrete-event simulation core.

use crate::machine::Machine;
use crate::schedule::Schedule;
use crate::svm::SvmConfig;
use crate::task::Task;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Simulation configuration.
#[derive(Clone, Copy, Debug)]
pub struct SimConfig {
    /// The machine to run on.
    pub machine: Machine,
    /// Number of task processes (≤ `machine.usable()`).
    pub task_processes: u32,
    /// Time to dequeue one task while holding the queue lock (seconds).
    /// §6.2: total task-management overhead "less than 25 seconds" for
    /// ~300–1000 tasks, so per-dequeue is tens of milliseconds.
    pub dequeue_overhead: f64,
    /// One-time fork / initialisation cost per task process (seconds).
    pub fork_overhead: f64,
    /// Speed-up applied to each task's match component (dedicated match
    /// processes; 1.0 = none).
    pub match_speedup: f64,
    /// Queue serving order.
    pub schedule: Schedule,
    /// SVM cost model, applied to workers on the remote cluster.
    pub svm: SvmConfig,
}

impl SimConfig {
    /// Config for `n` task processes on a lone Encore Multimax with the
    /// paper's overhead scale.
    pub fn encore(n: u32) -> SimConfig {
        SimConfig {
            machine: Machine::encore_multimax(),
            task_processes: n,
            dequeue_overhead: 0.025,
            fork_overhead: 0.5,
            match_speedup: 1.0,
            schedule: Schedule::Fifo,
            svm: SvmConfig::tuned(),
        }
    }

    /// Config for `n` task processes across the dual-Encore SVM platform.
    pub fn dual_encore(n: u32) -> SimConfig {
        SimConfig {
            machine: Machine::dual_encore_svm(),
            ..SimConfig::encore(n)
        }
    }
}

/// Result of one simulation run.
#[derive(Clone, Debug)]
pub struct SimResult {
    /// Wall-clock completion time of the last task (seconds).
    pub makespan: f64,
    /// Per-worker busy time (task execution only).
    pub busy: Vec<f64>,
    /// Per-worker count of executed tasks.
    pub tasks_executed: Vec<u32>,
    /// Total time spent waiting for the queue lock.
    pub queue_wait: f64,
    /// Total time spent in dequeue critical sections.
    pub queue_service: f64,
    /// Sum of task service times actually charged (incl. SVM overheads).
    pub total_work: f64,
    /// Completion time of each task, in serving order.
    pub completions: Vec<(u32, f64)>,
    /// Time at which each worker finished its last task (or its start-up,
    /// when it never got one).
    pub per_worker_finish: Vec<f64>,
}

impl SimResult {
    /// Mean processor utilisation over the makespan.
    pub fn utilization(&self) -> f64 {
        if self.makespan <= 0.0 || self.busy.is_empty() {
            return 0.0;
        }
        self.busy.iter().sum::<f64>() / (self.makespan * self.busy.len() as f64)
    }

    /// The tail-end effect (§6.2): the fraction of the makespan during
    /// which at least one processor was already permanently idle,
    /// `(makespan − earliest worker finish) / makespan`.
    pub fn tail_fraction(&self) -> f64 {
        if self.makespan <= 0.0 || self.per_worker_finish.is_empty() {
            return 0.0;
        }
        let earliest = self
            .per_worker_finish
            .iter()
            .copied()
            .fold(f64::INFINITY, f64::min);
        ((self.makespan - earliest) / self.makespan).max(0.0)
    }
}

/// Runs the simulation: `cfg.task_processes` workers pull `tasks` from a
/// central FIFO queue (after `cfg.schedule` reordering) until exhausted.
///
/// # Panics
/// Panics when `task_processes` is 0 or exceeds the machine's usable
/// processors.
pub fn simulate(cfg: &SimConfig, tasks: &[Task]) -> SimResult {
    let n = cfg.task_processes;
    assert!(n >= 1, "need at least one task process");
    assert!(
        n <= cfg.machine.usable(),
        "machine has only {} usable processors, asked for {n}",
        cfg.machine.usable()
    );

    let ordered = cfg.schedule.order(tasks);

    // Worker-available min-heap: (available_time, worker_index).
    let mut heap: BinaryHeap<Reverse<(OrdF64, u32)>> = BinaryHeap::new();
    let mut busy = vec![0.0f64; n as usize];
    let mut counts = vec![0u32; n as usize];
    let mut finishes = vec![0.0f64; n as usize];
    for w in 0..n {
        let mut t = cfg.fork_overhead;
        if cfg.machine.is_remote(w) {
            t += cfg.svm.warmup_overhead();
        }
        heap.push(Reverse((OrdF64(t), w)));
        finishes[w as usize] = t;
    }

    let mut lock_free_at = 0.0f64;
    let mut queue_wait = 0.0;
    let mut queue_service = 0.0;
    let mut total_work = 0.0;
    let mut completions = Vec::with_capacity(ordered.len());
    let mut makespan: f64 = 0.0;

    for task in &ordered {
        let Reverse((OrdF64(avail), w)) = heap.pop().expect("worker available");
        // Acquire the queue lock (serialised).
        let acquired = avail.max(lock_free_at);
        queue_wait += acquired - avail;
        lock_free_at = acquired + cfg.dequeue_overhead;
        queue_service += cfg.dequeue_overhead;
        // Execute.
        let mut service = task.service_with_match_speedup(cfg.match_speedup);
        if cfg.machine.is_remote(w) {
            service += cfg.svm.per_task_overhead();
        }
        let finish = lock_free_at + service;
        busy[w as usize] += service;
        counts[w as usize] += 1;
        finishes[w as usize] = finish;
        total_work += service;
        completions.push((task.id, finish));
        makespan = makespan.max(finish);
        heap.push(Reverse((OrdF64(finish), w)));
    }

    SimResult {
        makespan,
        busy,
        tasks_executed: counts,
        queue_wait,
        queue_service,
        total_work,
        completions,
        per_worker_finish: finishes,
    }
}

/// Totally ordered f64 for the heap (times are finite by construction).
#[derive(Clone, Copy, PartialEq)]
struct OrdF64(f64);

impl Eq for OrdF64 {}

impl PartialOrd for OrdF64 {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for OrdF64 {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.partial_cmp(&other.0).expect("finite time")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn uniform_tasks(n: u32, service: f64) -> Vec<Task> {
        (0..n).map(|i| Task::new(i, service)).collect()
    }

    fn cheap_cfg(n: u32) -> SimConfig {
        let mut c = SimConfig::encore(n);
        c.dequeue_overhead = 0.0;
        c.fork_overhead = 0.0;
        c
    }

    #[test]
    fn single_worker_executes_serially() {
        let tasks = uniform_tasks(10, 2.0);
        let r = simulate(&cheap_cfg(1), &tasks);
        assert!((r.makespan - 20.0).abs() < 1e-9);
        assert_eq!(r.tasks_executed, vec![10]);
        assert!((r.utilization() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn equal_tasks_scale_linearly() {
        let tasks = uniform_tasks(140, 1.0);
        let base = simulate(&cheap_cfg(1), &tasks).makespan;
        for n in [2, 7, 14] {
            let r = simulate(&cheap_cfg(n), &tasks);
            let speedup = base / r.makespan;
            assert!(
                (speedup - n as f64).abs() < 1e-6,
                "n={n}: speedup {speedup}"
            );
        }
    }

    #[test]
    fn one_giant_task_caps_speedup() {
        let mut tasks = uniform_tasks(20, 1.0);
        tasks.push(Task::new(99, 100.0));
        let base = simulate(&cheap_cfg(1), &tasks).makespan;
        let r = simulate(&cheap_cfg(14), &tasks);
        // Makespan is dominated by the giant task.
        assert!(r.makespan >= 100.0);
        assert!(base / r.makespan < 1.2);
    }

    #[test]
    fn work_is_conserved() {
        let tasks: Vec<Task> = (0..50).map(|i| Task::new(i, 0.5 + 0.1 * i as f64)).collect();
        let expected: f64 = tasks.iter().map(|t| t.service).sum();
        for n in [1, 3, 8] {
            let r = simulate(&cheap_cfg(n), &tasks);
            assert!((r.total_work - expected).abs() < 1e-9, "n={n}");
            assert!((r.busy.iter().sum::<f64>() - expected).abs() < 1e-9);
            assert_eq!(r.tasks_executed.iter().sum::<u32>(), 50);
        }
    }

    #[test]
    fn makespan_monotone_in_workers() {
        let tasks: Vec<Task> = (0..97)
            .map(|i| Task::new(i, 1.0 + ((i * 7919) % 13) as f64 * 0.3))
            .collect();
        let mut prev = f64::INFINITY;
        for n in 1..=14 {
            let r = simulate(&cheap_cfg(n), &tasks);
            assert!(
                r.makespan <= prev + 1e-9,
                "adding a worker must not slow FIFO list scheduling down here (n={n})"
            );
            prev = r.makespan;
        }
    }

    #[test]
    fn queue_lock_serialises() {
        // With a huge dequeue overhead, workers serialise on the lock and
        // extra workers stop helping.
        let mut cfg = cheap_cfg(14);
        cfg.dequeue_overhead = 1.0; // as long as the tasks themselves
        let tasks = uniform_tasks(100, 1.0);
        let r = simulate(&cfg, &tasks);
        // Lower bound: 100 dequeues × 1 s serialised.
        assert!(r.makespan >= 100.0);
        assert!(r.queue_wait > 0.0);
    }

    #[test]
    fn lpt_beats_fifo_with_tail_tasks() {
        // Long tasks at the END of the queue create the §6.2 tail-end
        // effect; LPT moves them first.
        let mut tasks = uniform_tasks(60, 1.0);
        tasks.push(Task::new(100, 20.0));
        tasks.push(Task::new(101, 25.0));
        let mut fifo = cheap_cfg(8);
        fifo.schedule = Schedule::Fifo;
        let mut lpt = cheap_cfg(8);
        lpt.schedule = Schedule::Lpt;
        let rf = simulate(&fifo, &tasks);
        let rl = simulate(&lpt, &tasks);
        assert!(
            rl.makespan < rf.makespan,
            "LPT {:.2} must beat FIFO {:.2}",
            rl.makespan,
            rf.makespan
        );
    }

    #[test]
    fn remote_workers_pay_svm_overhead() {
        let tasks = uniform_tasks(260, 2.0);
        let mut local_only = SimConfig::dual_encore(13);
        local_only.dequeue_overhead = 0.0;
        local_only.fork_overhead = 0.0;
        let mut with_remote = SimConfig::dual_encore(20);
        with_remote.dequeue_overhead = 0.0;
        with_remote.fork_overhead = 0.0;

        let base = simulate(&SimConfig { machine: Machine::dual_encore_svm(), ..cheap_cfg(1) }, &tasks).makespan;
        let r13 = simulate(&local_only, &tasks);
        let r20 = simulate(&with_remote, &tasks);
        let s13 = base / r13.makespan;
        let s20 = base / r20.makespan;
        // More processors still help…
        assert!(s20 > s13);
        // …but less than their count: the translational loss of Figure 9.
        assert!(s20 < 20.0 - 0.5, "got {s20}");
    }

    #[test]
    fn match_speedup_shrinks_only_match_component() {
        let tasks: Vec<Task> = (0..30).map(|i| Task::with_match(i, 4.0, 0.5)).collect();
        let mut cfg = cheap_cfg(1);
        cfg.match_speedup = 2.0;
        let r = simulate(&cfg, &tasks);
        assert!((r.makespan - 30.0 * 3.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "usable")]
    fn too_many_workers_rejected() {
        let _ = simulate(&cheap_cfg(15), &uniform_tasks(5, 1.0));
    }

    #[test]
    fn determinism() {
        let tasks: Vec<Task> = (0..40)
            .map(|i| Task::new(i, ((i * 31) % 7) as f64 + 0.25))
            .collect();
        let a = simulate(&cheap_cfg(6), &tasks);
        let b = simulate(&cheap_cfg(6), &tasks);
        assert_eq!(a.makespan, b.makespan);
        assert_eq!(a.busy, b.busy);
        assert_eq!(a.completions, b.completions);
    }
}
