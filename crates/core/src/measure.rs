//! The decomposition-selection methodology of §4.
//!
//! "In order to choose the right level of decomposition at which to
//! parallelize the SPAM LCC phase, we instrumented the SPAM system to
//! obtain measurements at each level for the number of tasks and their
//! run-time average, standard deviation, and coefficient of variance"
//! (Tables 5–7), plus the Table 8 baseline characterisation.

use crate::trace::lcc_trace;
use multimax_sim::LevelStats;
use spam::fragments::FragmentHypothesis;
use spam::lcc::{run_lcc, run_lcc_profiled, LccPhaseResult, Level};
use spam::phases::MIPS;
use spam::rules::SpamProgram;
use spam::scene::Scene;
use std::sync::Arc;

/// One measured row of Tables 5–7.
#[derive(Clone, Copy, Debug)]
pub struct LevelRowMeasured {
    /// The decomposition level.
    pub level: Level,
    /// Mean / σ / CV / count statistics.
    pub stats: LevelStats,
}

/// One measured row of Table 8.
#[derive(Clone, Copy, Debug)]
pub struct Table8Row {
    /// The decomposition level.
    pub level: Level,
    /// Total time for all tasks (simulated seconds).
    pub total_seconds: f64,
    /// Number of tasks executed.
    pub tasks: usize,
    /// Average time per task.
    pub avg_seconds: f64,
    /// Productions fired.
    pub prods_fired: u64,
    /// RHS actions performed.
    pub rhs_actions: u64,
}

/// Measures the per-level task statistics (one Tables 5–7 block) by
/// actually executing every task at every level and timing it.
pub fn level_rows(
    sp: &SpamProgram,
    scene: &Arc<Scene>,
    fragments: &Arc<Vec<FragmentHypothesis>>,
) -> Vec<LevelRowMeasured> {
    [Level::L4, Level::L3, Level::L2, Level::L1]
        .into_iter()
        .map(|level| {
            let phase = run_lcc(sp, scene, fragments, level);
            let trace = lcc_trace(&phase);
            LevelRowMeasured {
                level,
                stats: LevelStats::of(&trace.tasks),
            }
        })
        .collect()
}

/// Measures one Table 8 row (the BASELINE: a single task process executing
/// the whole queue).
pub fn table8_row(
    sp: &SpamProgram,
    scene: &Arc<Scene>,
    fragments: &Arc<Vec<FragmentHypothesis>>,
    level: Level,
) -> Table8Row {
    let phase = run_lcc(sp, scene, fragments, level);
    let total = phase.work.seconds_at(MIPS);
    let n = phase.units.len();
    Table8Row {
        level,
        total_seconds: total,
        tasks: n,
        avg_seconds: if n == 0 { 0.0 } else { total / n as f64 },
        prods_fired: phase.firings,
        rhs_actions: phase.units.iter().map(|u| u.rhs_actions).sum(),
    }
}

/// Runs the LCC phase at `level` with match-level profiling enabled and
/// returns the Table 8 row, the merged per-production/per-node profile
/// (`None` when the ops5 `profiler` feature is off), and the raw phase
/// result (for trace building). The profiled run performs byte-identical
/// work to [`table8_row`]'s — the profiler only reads the deterministic
/// counters — so the row is interchangeable with the unprofiled one.
pub fn profiled_lcc(
    sp: &SpamProgram,
    scene: &Arc<Scene>,
    fragments: &Arc<Vec<FragmentHypothesis>>,
    level: Level,
) -> (Table8Row, Option<ops5::MatchProfile>, LccPhaseResult) {
    let (phase, profile) = run_lcc_profiled(sp, scene, fragments, level);
    let total = phase.work.seconds_at(MIPS);
    let n = phase.units.len();
    let row = Table8Row {
        level,
        total_seconds: total,
        tasks: n,
        avg_seconds: if n == 0 { 0.0 } else { total / n as f64 },
        prods_fired: phase.firings,
        rhs_actions: phase.units.iter().map(|u| u.rhs_actions).sum(),
    };
    (row, profile, phase)
}

/// §4 factor 2 — *ratio of tasks to processors*: "at lower task to
/// processor ratios, a large variance in task processing time will have a
/// negative impact on processor utilization ... with higher ratios, the
/// impact is less pronounced." Measures utilisation as a function of the
/// ratio for a given coefficient of variance (synthetic workload, mean 1 s).
pub fn utilization_by_ratio(
    cv: f64,
    ratios: &[f64],
    processors: u32,
    seed: u64,
) -> Vec<(f64, f64)> {
    use multimax_sim::{simulate, SimConfig, TaskSet};
    const REPS: u64 = 24; // average out workload-draw noise, deterministically
    ratios
        .iter()
        .map(|&r| {
            let n = ((r * processors as f64).round() as usize).max(1);
            let mut total = 0.0;
            for k in 0..REPS {
                let ts = TaskSet::lognormal(n, 1.0, cv, seed.wrapping_add(k));
                let mut cfg = SimConfig::encore(processors);
                cfg.dequeue_overhead = 0.0;
                cfg.fork_overhead = 0.0;
                total += simulate(&cfg, &ts.tasks).utilization();
            }
            (r, total / REPS as f64)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use spam::rtf::run_rtf;

    fn setup() -> (SpamProgram, Arc<Scene>, Arc<Vec<FragmentHypothesis>>) {
        let sp = SpamProgram::build();
        let scene = Arc::new(spam::generate_scene(&spam::datasets::dc().spec));
        let rtf = run_rtf(&sp, &scene);
        let frags = Arc::new(rtf.fragments);
        (sp, scene, frags)
    }

    #[test]
    fn level_statistics_follow_the_papers_structure() {
        let (sp, scene, frags) = setup();
        let rows = level_rows(&sp, &scene, &frags);
        assert_eq!(rows.len(), 4);
        let (l4, l3, l2, l1) = (rows[0].stats, rows[1].stats, rows[2].stats, rows[3].stats);

        // Counts nest: L4 < L3 < L2 < L1 (Figure 4).
        assert!(l4.count < l3.count && l3.count < l2.count && l2.count < l1.count);
        // L4 has a handful of tasks (the paper: 9) — fewer than processors.
        assert!(l4.count <= 10);
        // Granularity decreases monotonically.
        assert!(l4.mean > l3.mean && l3.mean > l2.mean && l2.mean > l1.mean);
        // Level 1 is the most uniform (the paper's CVs: ~0.13-0.16 at L1
        // vs ~0.39-0.49 at the upper levels).
        assert!(l1.cv < l3.cv, "L1 cv {:.2} < L3 cv {:.2}", l1.cv, l3.cv);
        assert!(l1.cv < l2.cv);
        // Levels 2 and 3 have enough tasks to feed 14 processors.
        assert!(l3.count >= 50 && l2.count >= 100);
    }

    #[test]
    fn utilization_grows_with_task_to_processor_ratio() {
        // §4 factor 2, quantified: with CV ≈ 0.5 (the paper's workload),
        // utilisation climbs from poor at ratio ~1 to near-full at ~20.
        let curve = utilization_by_ratio(0.5, &[1.0, 2.0, 5.0, 10.0, 20.0, 50.0], 14, 11);
        for w in curve.windows(2) {
            assert!(
                w[1].1 >= w[0].1 - 0.02,
                "utilisation should not fall as the ratio grows: {curve:?}"
            );
        }
        assert!(
            curve[0].1 < 0.85,
            "ratio 1 wastes processors: {:.2}",
            curve[0].1
        );
        assert!(
            curve[5].1 > 0.95,
            "ratio 50 nearly saturates: {:.2}",
            curve[5].1
        );

        // And higher variance hurts more at low ratios (the synchronous-vs-
        // asynchronous argument's quantitative core).
        let calm = utilization_by_ratio(0.1, &[1.5], 14, 11)[0].1;
        let wild = utilization_by_ratio(1.2, &[1.5], 14, 11)[0].1;
        assert!(
            wild < calm,
            "variance must cost utilisation: {wild:.2} vs {calm:.2}"
        );
    }

    #[test]
    fn profiled_row_is_interchangeable_with_plain_row() {
        let (sp, scene, frags) = setup();
        let plain = table8_row(&sp, &scene, &frags, Level::L3);
        let (row, profile, phase) = profiled_lcc(&sp, &scene, &frags, Level::L3);
        assert_eq!(row.tasks, plain.tasks);
        assert_eq!(row.prods_fired, plain.prods_fired);
        assert_eq!(row.rhs_actions, plain.rhs_actions);
        assert!((row.total_seconds - plain.total_seconds).abs() < 1e-12);
        assert_eq!(phase.units.len(), row.tasks);
        if let Some(p) = profile {
            // Profiler firings reconcile with the row.
            let fired: u64 = p.productions.iter().map(|x| x.firings).sum();
            assert_eq!(fired, row.prods_fired);
        }
    }

    #[test]
    fn table8_rows_are_consistent() {
        let (sp, scene, frags) = setup();
        let r3 = table8_row(&sp, &scene, &frags, Level::L3);
        let r2 = table8_row(&sp, &scene, &frags, Level::L2);
        assert_eq!(r3.tasks, frags.len());
        assert!(r2.tasks > r3.tasks);
        // Total time is nearly level-independent (§6.1: "there is a small
        // difference in the total execution time between the two levels").
        let rel = (r3.total_seconds - r2.total_seconds).abs() / r3.total_seconds;
        assert!(rel < 0.25, "levels differ by {:.0}%", rel * 100.0);
        assert!((r3.avg_seconds * r3.tasks as f64 - r3.total_seconds).abs() < 1e-6);
        assert!(r3.prods_fired > 0 && r3.rhs_actions > 0);
    }
}
