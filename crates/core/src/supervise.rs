//! Supervised task execution for the PSM thread pool.
//!
//! The paper's runs simply died when a task process did: one rogue rule or
//! one bad WME took down the whole phase. This module is the control
//! process acting as a *supervisor* (§5.1's control process, hardened):
//!
//! * every task attempt runs under [`std::panic::catch_unwind`], so a
//!   panicking task is isolated — the phase completes with the results of
//!   the surviving tasks;
//! * a task failure is retried up to [`SupervisorConfig::max_retries`]
//!   times with linear backoff; tasks that exhaust their budget go to the
//!   dead-letter list in the [`TaskReport`];
//! * an optional *soft* deadline is enforced post-hoc: task threads cannot
//!   be preempted, so an attempt that returns after the deadline has its
//!   result discarded and is treated as a failure;
//! * deterministic fault injection: a [`FaultPlan`] can fate specific
//!   `(task, attempt)` pairs to panic, making the whole retry machinery
//!   reproducible under test.
//!
//! The runner keeps the seed architecture: the calling thread is the
//! control process; `n` worker threads drain a shared closeable queue;
//! results stream back over a channel. Retry decisions are made by the
//! control process, which pushes the repeat attempt back onto the queue.

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex, Once, PoisonError};
use std::time::{Duration, Instant};
use tlp_fault::{FaultPlan, SuperviseError, SupervisorConfig, TaskOutcome, TaskReport, TaskStatus};
use tlp_obs::{
    series_key, Category, Live, ObsLevel, Recorder, SceneSpan, SloMonitor, SpanId, SpanKind,
    SpanRecord, SpanSink,
};

/// Name prefix of supervised worker threads; the quiet panic hook uses it
/// to keep injected/caught panics out of test output. Shared with the
/// work-stealing executor (`crate::exec`), whose workers take the same
/// prefix so one hook covers both runners.
pub(crate) const WORKER_NAME: &str = "psm-task";

/// Installs (once) a panic hook that suppresses default printing for
/// panics on supervised worker threads — those panics are caught and
/// reported through the [`TaskReport`], so the default stderr dump is
/// noise. Other threads keep the previous hook behaviour.
pub(crate) fn install_quiet_hook() {
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let suppress = std::thread::current()
                .name()
                .is_some_and(|n| n.starts_with(WORKER_NAME));
            if !suppress {
                prev(info);
            }
        }));
    });
}

pub(crate) fn payload_to_string(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "panic with non-string payload".to_string()
    }
}

/// A closeable multi-producer work queue of `(task, attempt)` jobs.
///
/// Queue state is a plain `(jobs, closed)` pair — no invariant can be left
/// half-updated by a panicking holder — so every lock acquisition recovers
/// from poisoning with [`PoisonError::into_inner`] instead of unwrapping.
/// Before this, a panic *outside* `catch_unwind` while holding the lock
/// (e.g. an allocation failure, or a chaos fault injected in the push path)
/// poisoned the mutex and every subsequent `push`/`pop` panicked in turn,
/// deadlocking the control process behind a dead queue.
struct JobQueue {
    state: Mutex<(VecDeque<(usize, u32)>, bool)>,
    cv: Condvar,
}

impl JobQueue {
    fn new(n_tasks: usize) -> JobQueue {
        JobQueue {
            state: Mutex::new(((0..n_tasks).map(|i| (i, 0)).collect(), false)),
            cv: Condvar::new(),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, (VecDeque<(usize, u32)>, bool)> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    fn push(&self, job: (usize, u32)) {
        let mut st = self.lock();
        st.0.push_back(job);
        drop(st);
        self.cv.notify_one();
    }

    fn close(&self) {
        self.lock().1 = true;
        self.cv.notify_all();
    }

    /// Blocks for the next job; `None` once the queue is closed and empty.
    fn pop(&self) -> Option<(usize, u32)> {
        let mut st = self.lock();
        loop {
            if let Some(job) = st.0.pop_front() {
                return Some(job);
            }
            if st.1 {
                return None;
            }
            st = self.cv.wait(st).unwrap_or_else(PoisonError::into_inner);
        }
    }
}

struct AttemptMsg<T> {
    task: usize,
    attempt: u32,
    result: Result<T, String>,
    /// When the attempt began executing on a worker (after any backoff).
    started: Instant,
    elapsed: Duration,
}

/// One scheduled execution of a task, handed to the task closure. Carries
/// the structural coordinates the supervisor knows — which task, which
/// attempt — plus, when a scene trace is active, a [`SpanSink`] whose
/// children parent under this attempt's `task.exec` span. The attempt
/// number lets recovery paths distinguish a fresh run from a re-run
/// without keeping their own counters.
pub struct TaskAttempt {
    /// Task index within the phase.
    pub task: usize,
    /// Zero-based attempt number (0 = first execution, >0 = retry).
    pub attempt: u32,
    /// Aux-span sink parented under this attempt's span, when tracing.
    pub trace: Option<SpanSink>,
}

/// Why the last attempt of a task failed (drives the final dead-letter
/// status).
#[derive(Clone, Copy, PartialEq, Eq)]
enum FailKind {
    Panic,
    Deadline,
}

/// Runs `labels.len()` tasks on `n_workers` supervised worker threads.
///
/// Returns one `Option<T>` slot per task (in task order; `None` marks a
/// dead-lettered task) plus the [`TaskReport`]. Fails fast with
/// [`SuperviseError::NoWorkers`] when `n_workers` is zero.
///
/// `task` must be pure with respect to retries: attempt `k+1` re-runs the
/// same closure with the same index. The spam phase runners satisfy this
/// by building a fresh engine per attempt from shared immutable inputs
/// (that is also what makes `AssertUnwindSafe` sound here — a poisoned
/// half-updated state cannot leak across attempts).
pub fn supervise<T: Send>(
    n_workers: usize,
    labels: Vec<String>,
    cfg: &SupervisorConfig,
    plan: &FaultPlan,
    task: impl Fn(usize) -> T + Sync,
) -> Result<(Vec<Option<T>>, TaskReport), SuperviseError> {
    supervise_traced(n_workers, labels, cfg, plan, &Recorder::off(), task)
}

/// [`supervise`] with a flight recorder attached.
///
/// Every worker thread registers its own [`tlp_obs::ThreadSink`]; the
/// control process registers a `supervisor` sink. At `Summary` level the
/// phase is one span; at `Full` level each attempt is a `task.exec` span on
/// its worker's track and every supervisor decision (retry, deadline
/// rejection, dead-letter, completion) is an instant event. Work-unit
/// accounting never flows through the recorder, so results are identical at
/// every level.
pub fn supervise_traced<T: Send>(
    n_workers: usize,
    labels: Vec<String>,
    cfg: &SupervisorConfig,
    plan: &FaultPlan,
    rec: &Arc<Recorder>,
    task: impl Fn(usize) -> T + Sync,
) -> Result<(Vec<Option<T>>, TaskReport), SuperviseError> {
    supervise_observed(
        n_workers,
        labels,
        cfg,
        plan,
        rec,
        &Live::off(),
        None,
        None,
        |_, _| {},
        |a: TaskAttempt| task(a.task),
    )
}

/// [`supervise_traced`] with live telemetry attached.
///
/// When `live` is enabled the supervisor publishes its runtime health into
/// the sliding-window registry while the phase runs:
///
/// * `spam_live_tasks_completed` / `spam_live_task_retries` /
///   `spam_live_dead_letters` — control-process counters mirroring every
///   terminal decision;
/// * `spam_live_task_latency_seconds` — wall-clock latency histogram of
///   successful attempts;
/// * `spam_live_queue_depth` — gauge of tasks still outstanding
///   (queued or in flight);
/// * `spam_live_worker_busy_us{worker="w"}` /
///   `spam_live_worker_tasks{worker="w"}` — per-worker busy time and
///   attempt counts, emitted from each worker's own shard.
///
/// Logical time advances one epoch per *terminal* task (success or dead
/// letter), so window widths read as "the last N finished tasks". When an
/// [`SloMonitor`] is attached it is advanced on the same clock, and a
/// dead-lettered task is charged to it as a breach (failed work burns
/// error budget even though no latency sample exists for it).
///
/// `on_complete` runs on the control thread once per successful task,
/// before the epoch advances — callers mirror task results (work counters,
/// SLO latency observations) into `live` from there. With `live` disabled
/// every emit is a single branch and behaviour is identical to
/// [`supervise_traced`].
///
/// When `scene` is an enabled [`SceneSpan`], the supervisor propagates its
/// trace context through every scheduling decision: each attempt becomes a
/// `task.exec` span under the scene root (recorded by the worker that ran
/// it, so worker hops are visible), retries and dead letters become marker
/// spans recorded by the control thread, and the task closure receives a
/// [`SpanSink`] parented under the attempt span for engine/recovery
/// emissions. Span ids are derived from `(trace, task, attempt)`, so both
/// sides of the channel agree on them without coordination. The closure
/// now receives a [`TaskAttempt`] rather than a bare index — the attempt
/// number rides along, which is what the recovery runner needs to decide
/// whether to restore from a checkpoint.
#[allow(clippy::too_many_arguments)]
pub fn supervise_observed<T: Send>(
    n_workers: usize,
    labels: Vec<String>,
    cfg: &SupervisorConfig,
    plan: &FaultPlan,
    rec: &Arc<Recorder>,
    live: &Arc<Live>,
    slo: Option<&Arc<SloMonitor>>,
    scene: Option<&SceneSpan>,
    on_complete: impl Fn(usize, &T),
    task: impl Fn(TaskAttempt) -> T + Sync,
) -> Result<(Vec<Option<T>>, TaskReport), SuperviseError> {
    if n_workers == 0 {
        return Err(SuperviseError::NoWorkers);
    }
    // A disabled scene handle records nothing; drop it so the hot path
    // sees one branch.
    let scene = scene.filter(|sc| sc.enabled());
    install_quiet_hook();
    let phase_start = Instant::now();
    let n_tasks = labels.len();
    let mut slots: Vec<Option<T>> = (0..n_tasks).map(|_| None).collect();
    let mut outcomes: Vec<TaskOutcome> = labels
        .into_iter()
        .enumerate()
        .map(|(task, label)| TaskOutcome {
            task,
            label,
            status: TaskStatus::Ok,
            attempts: 0,
            elapsed: Duration::ZERO,
            queue_wait: Duration::ZERO,
            retry_latency: Duration::ZERO,
            error: None,
        })
        .collect();
    if n_tasks == 0 {
        return Ok((slots, TaskReport { outcomes }));
    }

    let queue = JobQueue::new(n_tasks);
    let (tx, rx) = mpsc::channel::<AttemptMsg<T>>();
    let mut last_fail: Vec<Option<FailKind>> = vec![None; n_tasks];
    let mut first_start: Vec<Option<Instant>> = vec![None; n_tasks];
    let mut remaining = n_tasks;

    let mut ctl = rec.sink("supervisor");
    if ctl.enabled(ObsLevel::Summary) {
        ctl.begin(
            Category::Supervisor,
            "supervise.phase",
            vec![
                ("tasks", (n_tasks as u64).into()),
                ("workers", (n_workers as u64).into()),
            ],
        );
        if ctl.enabled(ObsLevel::Full) {
            for i in 0..n_tasks {
                ctl.instant(
                    Category::Task,
                    "task.enqueue",
                    vec![("task", (i as u64).into())],
                );
            }
        }
    }

    let ctl_live = live.handle();
    std::thread::scope(|s| {
        for w in 0..n_workers.min(n_tasks) {
            let tx = tx.clone();
            let queue = &queue;
            let task = &task;
            let wlive = Arc::clone(live);
            std::thread::Builder::new()
                .name(format!("{WORKER_NAME}-{w}"))
                .spawn_scoped(s, move || {
                    // Each worker owns a private sink; it flushes on drop
                    // when the queue closes and the thread exits.
                    let mut sink = rec.sink(format!("{WORKER_NAME}-{w}"));
                    if let Some(sc) = scene {
                        // Tag recorder events with the scene's trace id so
                        // flight-recorder output joins against the retained
                        // span trees.
                        sink.set_trace(sc.trace_id());
                    }
                    // And a private live shard, with its series keys built
                    // once — the per-attempt emits must not allocate.
                    let wh = wlive.handle();
                    let worker = w.to_string();
                    let busy_key = series_key("spam_live_worker_busy_us", &[("worker", &worker)]);
                    let tasks_key = series_key("spam_live_worker_tasks", &[("worker", &worker)]);
                    while let Some((i, attempt)) = queue.pop() {
                        if attempt > 0 {
                            // Linear backoff before a retry attempt.
                            std::thread::sleep(cfg.backoff * attempt);
                        }
                        if sink.enabled(ObsLevel::Full) {
                            sink.begin(
                                Category::Task,
                                format!("task.exec t{i}"),
                                vec![
                                    ("task", (i as u64).into()),
                                    ("attempt", (attempt as u64).into()),
                                ],
                            );
                        }
                        // Derive this attempt's span id up front: the sink
                        // handed to the task parents engine/recovery spans
                        // under it, and the span itself is recorded below
                        // once the outcome is known.
                        let attempt_span = scene.map(|sc| {
                            (
                                SpanId::derive(
                                    sc.trace_id(),
                                    "task.exec",
                                    i as u64,
                                    u64::from(attempt),
                                ),
                                sc.now_us(),
                            )
                        });
                        let invocation = TaskAttempt {
                            task: i,
                            attempt,
                            trace: scene
                                .zip(attempt_span)
                                .map(|(sc, (span, _))| sc.sink_under(span)),
                        };
                        let start = Instant::now();
                        let result = catch_unwind(AssertUnwindSafe(|| {
                            if plan.task_panics(i, attempt) {
                                panic!("injected fault: task {i} attempt {attempt}");
                            }
                            task(invocation)
                        }))
                        .map_err(payload_to_string);
                        if sink.enabled(ObsLevel::Full) {
                            sink.end(
                                Category::Task,
                                format!("task.exec t{i}"),
                                vec![("ok", u64::from(result.is_ok()).into())],
                            );
                        }
                        let elapsed = start.elapsed();
                        if let (Some(sc), Some((span, start_us))) = (scene, attempt_span) {
                            sc.record_span(SpanRecord {
                                id: span,
                                parent: Some(sc.root()),
                                kind: SpanKind::Task,
                                name: format!("task.exec t{i} a{attempt}"),
                                worker: format!("{WORKER_NAME}-{w}"),
                                start_us,
                                end_us: sc.now_us(),
                                error: result.as_ref().err().cloned(),
                            });
                        }
                        if wh.enabled() {
                            wh.inc(&busy_key, elapsed.as_micros() as u64);
                            wh.inc(&tasks_key, 1);
                        }
                        let msg = AttemptMsg {
                            task: i,
                            attempt,
                            result,
                            started: start,
                            elapsed,
                        };
                        if tx.send(msg).is_err() {
                            break;
                        }
                    }
                })
                .expect("spawn supervised worker");
        }
        drop(tx);

        // Control process: collect attempts, decide retries, fill slots.
        while remaining > 0 {
            let msg = rx.recv().expect("workers alive while tasks outstanding");
            let i = msg.task;
            if msg.attempt == 0 {
                first_start[i] = Some(msg.started);
                outcomes[i].queue_wait = msg.started.duration_since(phase_start);
            } else if let Some(first) = first_start[i] {
                outcomes[i].retry_latency = msg.started.duration_since(first);
            }
            let o = &mut outcomes[i];
            o.attempts = msg.attempt + 1;
            o.elapsed = msg.elapsed;
            let failure = match msg.result {
                Err(err) => {
                    last_fail[i] = Some(FailKind::Panic);
                    Some(err)
                }
                Ok(value) => match cfg.deadline {
                    Some(d) if msg.elapsed > d => {
                        last_fail[i] = Some(FailKind::Deadline);
                        if ctl.enabled(ObsLevel::Full) {
                            ctl.instant(
                                Category::Supervisor,
                                "task.deadline",
                                vec![
                                    ("task", (i as u64).into()),
                                    ("attempt", (msg.attempt as u64).into()),
                                    ("elapsed_s", msg.elapsed.as_secs_f64().into()),
                                ],
                            );
                        }
                        Some(format!(
                            "deadline exceeded: {:.1?} > {:.1?}; result discarded",
                            msg.elapsed, d
                        ))
                    }
                    _ => {
                        if ctl_live.enabled() {
                            ctl_live.inc("spam_live_tasks_completed", 1);
                            ctl_live
                                .observe(tlp_obs::TASK_LATENCY_FAMILY, msg.elapsed.as_secs_f64());
                        }
                        // Mirror the task's result before its epoch closes,
                        // so caller-side series land in the window of the
                        // task that produced them.
                        on_complete(i, &value);
                        let epoch = live.advance_epoch();
                        if let Some(slo) = slo {
                            slo.advance(epoch);
                        }
                        slots[i] = Some(value);
                        o.status = if msg.attempt == 0 {
                            TaskStatus::Ok
                        } else {
                            TaskStatus::Retried(msg.attempt)
                        };
                        o.error = None;
                        remaining -= 1;
                        if ctl.enabled(ObsLevel::Full) {
                            ctl.instant(
                                Category::Task,
                                "task.complete",
                                vec![
                                    ("task", (i as u64).into()),
                                    ("attempts", ((msg.attempt + 1) as u64).into()),
                                ],
                            );
                        }
                        None
                    }
                },
            };
            if let Some(err) = failure {
                o.error = Some(err);
                if msg.attempt < cfg.max_retries {
                    queue.push((i, msg.attempt + 1));
                    ctl_live.inc("spam_live_task_retries", 1);
                    if let Some(sc) = scene {
                        sc.tracing().note_retry(sc.trace_id());
                        let now = sc.now_us();
                        sc.record_span(SpanRecord {
                            id: SpanId::derive(
                                sc.trace_id(),
                                "supervisor.retry",
                                i as u64,
                                u64::from(msg.attempt),
                            ),
                            parent: Some(sc.root()),
                            kind: SpanKind::Aux,
                            name: format!("supervisor.retry t{i} a{}", msg.attempt + 1),
                            worker: "psm-control".into(),
                            start_us: now,
                            end_us: now,
                            error: None,
                        });
                    }
                    if ctl.enabled(ObsLevel::Full) {
                        ctl.instant(
                            Category::Supervisor,
                            "supervisor.retry",
                            vec![
                                ("task", (i as u64).into()),
                                ("next_attempt", ((msg.attempt + 1) as u64).into()),
                            ],
                        );
                    }
                } else {
                    o.status = match last_fail[i] {
                        Some(FailKind::Deadline) => TaskStatus::TimedOut,
                        _ => TaskStatus::Panicked,
                    };
                    ctl_live.inc("spam_live_dead_letters", 1);
                    if let Some(sc) = scene {
                        sc.tracing().note_dead_letter(sc.trace_id());
                        let now = sc.now_us();
                        sc.record_span(SpanRecord {
                            id: SpanId::derive(
                                sc.trace_id(),
                                "supervisor.dead_letter",
                                i as u64,
                                u64::from(msg.attempt),
                            ),
                            parent: Some(sc.root()),
                            kind: SpanKind::Aux,
                            name: format!("supervisor.dead_letter t{i}"),
                            worker: "psm-control".into(),
                            start_us: now,
                            end_us: now,
                            error: o.error.clone(),
                        });
                    }
                    if let Some(slo) = slo {
                        // A dead letter is a breach: the work never
                        // completed, so it burns error budget.
                        slo.observe(msg.elapsed.as_secs_f64(), false);
                    }
                    let epoch = live.advance_epoch();
                    if let Some(slo) = slo {
                        slo.advance(epoch);
                    }
                    remaining -= 1;
                    if ctl.enabled(ObsLevel::Full) {
                        ctl.instant(
                            Category::Supervisor,
                            "supervisor.dead_letter",
                            vec![
                                ("task", (i as u64).into()),
                                ("attempts", ((msg.attempt + 1) as u64).into()),
                            ],
                        );
                    }
                }
            }
            ctl_live.gauge("spam_live_queue_depth", remaining as f64);
        }
        queue.close();
    });

    if ctl.enabled(ObsLevel::Summary) {
        let dead = outcomes.iter().filter(|o| !o.status.succeeded()).count();
        let retries: u32 = outcomes.iter().map(|o| o.attempts.saturating_sub(1)).sum();
        ctl.end(
            Category::Supervisor,
            "supervise.phase",
            vec![
                ("ok", ((n_tasks - dead) as u64).into()),
                ("retries", (retries as u64).into()),
                ("dead_letters", (dead as u64).into()),
            ],
        );
    }
    ctl.flush();

    Ok((slots, TaskReport { outcomes }))
}

/// Aggregate supervision overhead of one supervised phase — the
/// wall-clock cost of fault tolerance, summarised for the speed-up doctor
/// (`spamctl profile` folds these into its attribution narrative: retry
/// latency and dead letters explain measured-vs-simulated divergence that
/// the fault-free simulator cannot).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct SupervisionOverhead {
    /// Tasks in the phase.
    pub tasks: usize,
    /// Total seconds tasks spent enqueued before their first attempt.
    pub queue_wait_s: f64,
    /// Total seconds of extra latency from retried attempts.
    pub retry_latency_s: f64,
    /// Total retry attempts across all tasks.
    pub retries: u32,
    /// Tasks that exhausted every attempt.
    pub dead_letters: usize,
}

/// Summarises a [`TaskReport`] into its supervision overhead totals.
pub fn supervision_overhead(report: &TaskReport) -> SupervisionOverhead {
    SupervisionOverhead {
        tasks: report.outcomes.len(),
        queue_wait_s: report
            .outcomes
            .iter()
            .map(|o| o.queue_wait.as_secs_f64())
            .sum(),
        retry_latency_s: report
            .outcomes
            .iter()
            .map(|o| o.retry_latency.as_secs_f64())
            .sum(),
        retries: report.total_retries(),
        dead_letters: report.dead_letters().len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn labels(n: usize) -> Vec<String> {
        (0..n).map(|i| format!("t{i}")).collect()
    }

    #[test]
    fn all_tasks_succeed_cleanly() {
        let (slots, report) = supervise(
            4,
            labels(10),
            &SupervisorConfig::default(),
            &FaultPlan::none(),
            |i| i * 2,
        )
        .unwrap();
        assert!(report.is_clean());
        assert_eq!(
            slots.into_iter().map(Option::unwrap).collect::<Vec<_>>(),
            (0..10).map(|i| i * 2).collect::<Vec<_>>()
        );
    }

    #[test]
    fn empty_task_list_is_fine() {
        let (slots, report) = supervise(
            3,
            labels(0),
            &SupervisorConfig::default(),
            &FaultPlan::none(),
            |i| i,
        )
        .unwrap();
        assert!(slots.is_empty());
        assert!(report.outcomes.is_empty());
        assert!(report.is_clean());
    }

    #[test]
    fn more_workers_than_tasks_is_fine() {
        let (slots, report) = supervise(
            16,
            labels(3),
            &SupervisorConfig::default(),
            &FaultPlan::none(),
            |i| i,
        )
        .unwrap();
        assert_eq!(slots.iter().flatten().count(), 3);
        assert!(report.is_clean());
    }

    #[test]
    fn zero_workers_rejected() {
        let r = supervise(
            0,
            labels(3),
            &SupervisorConfig::default(),
            &FaultPlan::none(),
            |i| i,
        );
        assert_eq!(r.err(), Some(SuperviseError::NoWorkers));
    }

    #[test]
    fn overhead_summary_totals_match_the_report() {
        let plan = FaultPlan::none().with_task_panic(2, 1);
        let cfg = SupervisorConfig::default().with_retries(2);
        let (_, report) = supervise(2, labels(6), &cfg, &plan, |i| i).unwrap();
        let oh = supervision_overhead(&report);
        assert_eq!(oh.tasks, 6);
        assert_eq!(oh.retries, report.total_retries());
        assert_eq!(oh.retries, 1);
        assert_eq!(oh.dead_letters, 0);
        let qw: f64 = report
            .outcomes
            .iter()
            .map(|o| o.queue_wait.as_secs_f64())
            .sum();
        assert!((oh.queue_wait_s - qw).abs() < 1e-12);
        assert!(oh.retry_latency_s >= 0.0);
    }

    #[test]
    fn panicking_task_is_dead_lettered_and_others_complete() {
        let plan = FaultPlan::none().with_task_panic(3, u32::MAX);
        let (slots, report) =
            supervise(2, labels(8), &SupervisorConfig::default(), &plan, |i| i).unwrap();
        assert_eq!(slots.iter().flatten().count(), 7);
        assert!(slots[3].is_none());
        assert_eq!(report.succeeded(), 7);
        let dead = report.dead_letters();
        assert_eq!(dead.len(), 1);
        assert_eq!(dead[0].task, 3);
        assert_eq!(dead[0].status, TaskStatus::Panicked);
        assert!(dead[0].error.as_deref().unwrap().contains("injected fault"));
    }

    #[test]
    fn retry_recovers_a_single_fault() {
        // Task 5 panics only on attempt 0; one retry must fully recover.
        let plan = FaultPlan::none().with_task_panic(5, 1);
        let cfg = SupervisorConfig::default()
            .with_retries(1)
            .with_backoff(Duration::from_millis(1));
        let (slots, report) = supervise(3, labels(8), &cfg, &plan, |i| i).unwrap();
        assert_eq!(slots.iter().flatten().count(), 8);
        assert_eq!(report.outcomes[5].status, TaskStatus::Retried(1));
        assert_eq!(report.outcomes[5].attempts, 2);
        assert_eq!(report.total_retries(), 1);
    }

    #[test]
    fn retry_budget_is_bounded() {
        let plan = FaultPlan::none().with_task_panic(0, u32::MAX);
        let cfg = SupervisorConfig::default()
            .with_retries(2)
            .with_backoff(Duration::from_millis(1));
        let (slots, report) = supervise(2, labels(2), &cfg, &plan, |i| i).unwrap();
        assert!(slots[0].is_none());
        assert_eq!(report.outcomes[0].status, TaskStatus::Panicked);
        assert_eq!(report.outcomes[0].attempts, 3); // initial + 2 retries
    }

    #[test]
    fn soft_deadline_times_out_slow_tasks() {
        let cfg = SupervisorConfig::default().with_deadline(Duration::from_millis(20));
        let (slots, report) = supervise(2, labels(4), &cfg, &FaultPlan::none(), |i| {
            if i == 2 {
                std::thread::sleep(Duration::from_millis(80));
            }
            i
        })
        .unwrap();
        assert!(slots[2].is_none(), "late result must be discarded");
        assert_eq!(report.outcomes[2].status, TaskStatus::TimedOut);
        assert_eq!(slots.iter().flatten().count(), 3);
    }

    #[test]
    fn queue_wait_and_retry_latency_are_recorded() {
        let plan = FaultPlan::none().with_task_panic(1, 1);
        let cfg = SupervisorConfig::default()
            .with_retries(1)
            .with_backoff(Duration::from_millis(5));
        let (_, report) = supervise(2, labels(3), &cfg, &plan, |i| {
            std::thread::sleep(Duration::from_millis(2));
            i
        })
        .unwrap();
        for o in &report.outcomes {
            // queue_wait is measured from phase start, so it is always
            // well-defined (and tiny for the first tasks grabbed).
            assert!(o.queue_wait < Duration::from_secs(5), "{o:?}");
        }
        // The retried task's retry latency spans first-attempt exec (2 ms)
        // plus backoff (5 ms); the clean tasks report zero.
        assert!(report.outcomes[1].retry_latency >= Duration::from_millis(5));
        assert_eq!(report.outcomes[0].retry_latency, Duration::ZERO);
        let text = report.display(true).to_string();
        assert!(text.contains("queue-wait"), "{text}");
    }

    #[test]
    fn scene_traced_supervision_builds_a_wellformed_span_tree() {
        use tlp_obs::{validate_span_tree, RetainReason, SampleVerdict, SamplerConfig, Tracing};
        let tracing = Tracing::new(SamplerConfig::default());
        let scene = tracing.start_scene(42, "dc");
        // Task 1 fails once and recovers; task 2 dies for good.
        let plan = FaultPlan::none()
            .with_task_panic(1, 1)
            .with_task_panic(2, u32::MAX);
        let cfg = SupervisorConfig::default()
            .with_retries(1)
            .with_backoff(Duration::from_millis(1));
        let live = Live::off();
        let (slots, report) = supervise_observed(
            2,
            labels(4),
            &cfg,
            &plan,
            &Recorder::off(),
            &live,
            None,
            Some(&scene),
            |_, _| {},
            |a: TaskAttempt| {
                // Stand-in for the engine's cycle mirror: record one aux
                // span through the handed sink.
                if let Some(mut tr) = a.trace {
                    let t0 = tr.now_us();
                    tr.record_aux("engine.cycles x1", t0, tr.now_us(), None);
                }
                a.task
            },
        )
        .unwrap();
        assert_eq!(slots.iter().flatten().count(), 3);
        assert_eq!(report.dead_letters().len(), 1);
        let verdict = scene.finish();
        assert_eq!(
            verdict,
            SampleVerdict::Retained(RetainReason::Errored),
            "a scene with retries and dead letters must be retained"
        );
        let retained = tracing.retained();
        assert_eq!(retained.len(), 1);
        let t = &retained[0];
        assert_eq!(t.retries, 2, "t1's recovery retry + t2's doomed retry");
        assert_eq!(t.dead_letters, 1);
        // One task.exec span per attempt (4 first + 1 retry of t1 + 1
        // retry of t2), one retry marker per re-enqueue, one dead-letter
        // marker, plus the root and the per-attempt engine aux spans.
        let count = |prefix: &str| {
            t.spans
                .iter()
                .filter(|s| s.name.starts_with(prefix))
                .count()
        };
        assert_eq!(count("task.exec"), 6);
        assert_eq!(count("supervisor.retry"), 2);
        assert_eq!(count("supervisor.dead_letter"), 1);
        // Injected panics fire before the task body runs, so only the
        // successful attempts reach the engine stand-in.
        assert_eq!(count("engine.cycles"), 3);
        // Failed attempts carry their panic payload.
        let failed: Vec<_> = t
            .spans
            .iter()
            .filter(|s| s.name.starts_with("task.exec") && s.error.is_some())
            .collect();
        assert_eq!(failed.len(), 3, "t1 a0, t2 a0, t2 a1");
        // The whole tree validates: unique ids, one root, parents exist,
        // intervals nest.
        let doc = t.to_json().write();
        validate_span_tree(&doc).expect("retained trace must be a well-formed span tree");
        // Deterministic ids: a rerun of the same seed + scene yields the
        // same trace id.
        assert_eq!(
            t.trace,
            tlp_obs::TraceId::derive(42, "dc"),
            "trace ids must be derivable for benchdiff comparison"
        );
    }

    #[test]
    fn traced_supervision_emits_phase_and_task_events() {
        use tlp_obs::EventKind;
        let rec = Recorder::new(ObsLevel::Full);
        let plan = FaultPlan::none()
            .with_task_panic(1, 1)
            .with_task_panic(2, u32::MAX);
        let cfg = SupervisorConfig::default()
            .with_retries(1)
            .with_backoff(Duration::from_millis(1));
        let (slots, report) = supervise_traced(2, labels(4), &cfg, &plan, &rec, |i| i).unwrap();
        assert_eq!(slots.iter().flatten().count(), 3);
        assert_eq!(report.dead_letters().len(), 1);
        let events = rec.events();
        let names: Vec<&str> = events.iter().map(|e| e.name.as_str()).collect();
        assert!(names.contains(&"supervise.phase"));
        assert!(names.contains(&"task.enqueue"));
        assert!(names.contains(&"task.complete"));
        assert!(names.contains(&"supervisor.retry"));
        assert!(names.contains(&"supervisor.dead_letter"));
        // One exec span pair per attempt: 4 first attempts + 1 retry of
        // task 1 + 1 retry of task 2.
        let begins = events
            .iter()
            .filter(|e| e.kind == EventKind::SpanBegin && e.name.starts_with("task.exec"))
            .count();
        let ends = events
            .iter()
            .filter(|e| e.kind == EventKind::SpanEnd && e.name.starts_with("task.exec"))
            .count();
        assert_eq!(begins, 6);
        assert_eq!(ends, 6);
        let threads = rec.threads();
        assert!(threads.iter().any(|t| t == "supervisor"));
        assert!(threads.iter().any(|t| t.starts_with(WORKER_NAME)));
    }

    #[test]
    fn untraced_supervision_records_no_events() {
        let rec = Recorder::off();
        let (slots, _) = supervise_traced(
            2,
            labels(4),
            &SupervisorConfig::default(),
            &FaultPlan::none(),
            &rec,
            |i| i,
        )
        .unwrap();
        assert_eq!(slots.iter().flatten().count(), 4);
        assert!(rec.is_empty());
    }

    #[test]
    fn job_queue_survives_a_poisoned_lock() {
        // Regression: a panic while holding the queue mutex used to poison
        // it, after which every push/pop/close unwrapped a PoisonError and
        // the control process deadlocked behind a dead queue. The queue
        // must now recover the guard and keep serving jobs.
        let queue = Arc::new(JobQueue::new(0));
        let q = Arc::clone(&queue);
        let _ = std::thread::Builder::new()
            // Worker-name prefix keeps the injected panic out of test output.
            .name(format!("{WORKER_NAME}-poisoner"))
            .spawn(move || {
                let _guard = q.state.lock().unwrap();
                panic!("injected: die while holding the queue lock");
            })
            .unwrap()
            .join();
        assert!(queue.state.is_poisoned(), "setup must actually poison");
        queue.push((7, 2));
        assert_eq!(queue.pop(), Some((7, 2)));
        queue.close();
        assert_eq!(queue.pop(), None, "closed empty queue still drains");
    }

    #[test]
    fn supervision_proceeds_after_queue_poisoning() {
        // End-to-end flavour of the regression above: a full supervised
        // phase with retries (which exercises push from the control loop)
        // must complete even though an earlier holder poisoned the lock.
        // We cannot reach the private queue of a running phase from here,
        // so instead verify a phase that retries and dead-letters right
        // after the unit-level poisoning ran in this process still works.
        let plan = FaultPlan::none().with_task_panic(1, 1);
        let cfg = SupervisorConfig::default()
            .with_retries(1)
            .with_backoff(Duration::from_millis(1));
        let (slots, report) = supervise(2, labels(4), &cfg, &plan, |i| i).unwrap();
        assert_eq!(slots.iter().flatten().count(), 4);
        assert_eq!(report.outcomes[1].status, TaskStatus::Retried(1));
    }

    #[test]
    fn dead_letter_details_survive_death_during_retry() {
        // Task 2 dies on the first attempt AND again on its only retry.
        // The dead-letter entry must still carry the full post-mortem:
        // the final error string, the true attempt count, and a non-zero
        // retry latency — details recorded across the retry boundary, not
        // just from the first failure.
        let plan = FaultPlan::none().with_task_panic(2, 2);
        let cfg = SupervisorConfig::default()
            .with_retries(1)
            .with_backoff(Duration::from_millis(5));
        let (slots, report) = supervise(2, labels(5), &cfg, &plan, |i| i).unwrap();
        assert!(slots[2].is_none());
        assert_eq!(slots.iter().flatten().count(), 4);
        let dead = report.dead_letters();
        assert_eq!(dead.len(), 1);
        let o = dead[0];
        assert_eq!(o.task, 2);
        assert_eq!(o.status, TaskStatus::Panicked);
        assert_eq!(o.attempts, 2, "initial attempt + the fatal retry");
        // The error must be the *retry's* panic payload (attempt 1), not a
        // stale copy from attempt 0.
        assert_eq!(o.error.as_deref(), Some("injected fault: task 2 attempt 1"));
        // retry_latency spans first-attempt start → retry start, which
        // includes the 5 ms backoff.
        assert!(
            o.retry_latency >= Duration::from_millis(5),
            "retry latency must be recorded for dead letters too: {:?}",
            o.retry_latency
        );
        // And the report renders those details.
        let text = report.display(true).to_string();
        assert!(text.contains("task 2 [t2] after 2 attempts"), "{text}");
        assert!(text.contains("attempt 1"), "{text}");
        assert!(text.contains("retry-latency"), "{text}");
    }

    #[test]
    fn observed_supervision_publishes_live_series() {
        use tlp_obs::LiveValue;
        let live = Live::new(8);
        let plan = FaultPlan::none()
            .with_task_panic(1, 1)
            .with_task_panic(2, u32::MAX);
        let cfg = SupervisorConfig::default()
            .with_retries(1)
            .with_backoff(Duration::from_millis(1));
        let completed = std::sync::atomic::AtomicUsize::new(0);
        let (slots, report) = supervise_observed(
            2,
            labels(5),
            &cfg,
            &plan,
            &Recorder::off(),
            &live,
            None,
            None,
            |_, _| {
                completed.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            },
            |a: TaskAttempt| a.task,
        )
        .unwrap();
        assert_eq!(slots.iter().flatten().count(), 4);
        assert_eq!(report.dead_letters().len(), 1);
        assert_eq!(completed.load(std::sync::atomic::Ordering::Relaxed), 4);
        // Logical time: one epoch per terminal task, dead letters included.
        assert_eq!(live.epoch(), 5);
        let snap = live.snapshot();
        let counter_total = |name: &str| match snap.series.get(name) {
            Some(LiveValue::Counter { total, .. }) => *total,
            other => panic!("{name}: expected counter, got {other:?}"),
        };
        assert_eq!(counter_total("spam_live_tasks_completed"), 4);
        assert_eq!(counter_total("spam_live_task_retries"), 2);
        assert_eq!(counter_total("spam_live_dead_letters"), 1);
        assert_eq!(
            snap.series.get("spam_live_queue_depth"),
            Some(&LiveValue::Gauge(0.0)),
            "phase ended with nothing outstanding"
        );
        // Worker shards published busy time and per-attempt counts; total
        // attempts = 5 first attempts + 2 retries.
        assert!(snap
            .series
            .keys()
            .any(|k| k.starts_with("spam_live_worker_busy_us{")));
        let attempts: u64 = snap
            .series
            .iter()
            .filter(|(k, _)| k.starts_with("spam_live_worker_tasks{"))
            .map(|(_, v)| match v {
                LiveValue::Counter { total, .. } => *total,
                _ => 0,
            })
            .sum();
        assert_eq!(attempts, 7);
        match snap.series.get("spam_live_task_latency_seconds") {
            Some(LiveValue::Histogram(h)) => assert_eq!(h.count(), 4),
            other => panic!("latency histogram missing: {other:?}"),
        }
    }

    #[test]
    fn observed_supervision_drives_the_slo_clock() {
        use tlp_obs::{Health, SloConfig, SloMonitor};
        let live = Live::new(8);
        let slo = Arc::new(SloMonitor::new(
            SloConfig::for_scene("test").with_target(10.0),
            live.handle(),
        ));
        let (slots, _) = supervise_observed(
            2,
            labels(6),
            &SupervisorConfig::default(),
            &FaultPlan::none(),
            &Recorder::off(),
            &live,
            Some(&slo),
            None,
            |_i, _v| slo.observe(0.5, true),
            |a: TaskAttempt| a.task,
        )
        .unwrap();
        assert_eq!(slots.iter().flatten().count(), 6);
        assert_eq!(slo.health(), Health::Healthy);
        let snap = live.snapshot();
        assert!(snap.series.contains_key("spam_slo_burn_rate_fast"));
        assert!(snap
            .series
            .contains_key("spam_slo_error_budget_remaining_ratio"));
    }

    #[test]
    fn dead_letters_burn_slo_budget_via_the_supervisor() {
        use tlp_obs::{Health, SloConfig, SloMonitor};
        let live = Live::new(8);
        let slo = Arc::new(SloMonitor::new(
            SloConfig::for_scene("test").with_target(10.0),
            live.handle(),
        ));
        let mut plan = FaultPlan::none();
        for i in 0..40 {
            plan = plan.with_task_panic(i, u32::MAX);
        }
        let cfg = SupervisorConfig::default()
            .with_retries(0)
            .with_backoff(Duration::from_millis(1));
        let (slots, report) = supervise_observed(
            4,
            labels(40),
            &cfg,
            &plan,
            &Recorder::off(),
            &live,
            Some(&slo),
            None,
            |_, _| {},
            |a: TaskAttempt| a.task,
        )
        .unwrap();
        assert_eq!(slots.iter().flatten().count(), 0);
        assert_eq!(report.dead_letters().len(), 40);
        assert_eq!(live.epoch(), 40, "dead letters still advance the clock");
        assert_eq!(
            slo.health(),
            Health::Degraded,
            "a phase of pure failures must trip the burn-rate alert"
        );
        let (_, ok) = slo.healthz_json();
        assert!(!ok, "healthz reports not-ok while degraded");
    }

    #[test]
    fn observed_with_disabled_live_publishes_nothing() {
        let live = Live::off();
        let (slots, report) = supervise_observed(
            2,
            labels(4),
            &SupervisorConfig::default(),
            &FaultPlan::none(),
            &Recorder::off(),
            &live,
            None,
            None,
            |_, _| {},
            |a: TaskAttempt| a.task,
        )
        .unwrap();
        assert_eq!(slots.iter().flatten().count(), 4);
        assert!(report.is_clean());
        assert!(live.snapshot().series.is_empty());
    }

    #[test]
    fn rate_driven_faults_are_deterministic() {
        let plan = FaultPlan::seeded(99).with_task_panic_rate(0.4);
        let cfg = SupervisorConfig::default()
            .with_retries(2)
            .with_backoff(Duration::from_millis(1));
        let run = || {
            let (slots, report) = supervise(4, labels(20), &cfg, &plan, |i| i).unwrap();
            let ok: Vec<usize> = slots.into_iter().flatten().collect();
            let statuses: Vec<TaskStatus> =
                report.outcomes.iter().map(|o| o.status.clone()).collect();
            (ok, statuses)
        };
        let (ok_a, st_a) = run();
        let (ok_b, st_b) = run();
        assert_eq!(ok_a, ok_b, "survivors must be plan-determined");
        assert_eq!(st_a, st_b, "statuses must be plan-determined");
        assert!(st_a.iter().any(|s| !matches!(s, TaskStatus::Ok)));
    }
}
