//! Crash-consistent checkpointed execution and deterministic replay
//! recovery for LCC task processes.
//!
//! The paper's runs restarted a whole phase when a task process died; the
//! supervisor (PR 3) improved on that by retrying the dead task *from
//! scratch*. This module closes the loop with real crash recovery:
//!
//! * every task attempt persists a **write-ahead log** of its initial
//!   working-memory load (cycle-0 assert records) into the shared
//!   [`CheckpointStore`] *before* its run loop starts;
//! * every `interval` recognize–act cycles the attempt saves a versioned,
//!   checksummed **engine snapshot** ([`ops5::Engine::snapshot`]);
//! * when the supervisor retries a dead task, the retry *resumes*: it
//!   restores the last snapshot, replays any WAL records past the
//!   checkpoint cycle, and continues — re-executing only the cycles since
//!   the last checkpoint instead of the whole task.
//!
//! Recovery is deterministic: the restored engine is byte-identical to the
//! never-crashed engine at the checkpoint cycle (the ops5 snapshot tests
//! prove this), and OPS5 conflict resolution is deterministic, so the
//! resumed attempt produces exactly the results of a fault-free run —
//! including the work counters, which the snapshot carries across the
//! crash boundary.
//!
//! Fault tolerance of the recovery machinery itself:
//!
//! * the store's mutex is poison-tolerant ([`PoisonError::into_inner`]):
//!   a worker dying *while holding* the checkpoint lock (the
//!   `checkpoint_hold_kill` chaos fault) does not wedge later checkpoints
//!   or recoveries — the saved state is a plain value, never left
//!   half-updated;
//! * a torn WAL tail (crash mid-append) is truncated, not fatal: with a
//!   checkpoint the torn records are subsumed by the snapshot; without
//!   one, the tear means the crash happened before the run loop started,
//!   so a from-scratch rebuild loses nothing.

use crate::supervise::{supervise_observed, TaskAttempt};
use ops5::snapshot::apply_record;
use ops5::{Value, Wal, WalOp, WalRecord, WorkCounters};
use spam::fragments::FragmentHypothesis;
use spam::lcc::{
    decompose, harvest_lcc_unit, lcc_engine, load_unit_wm, restore_lcc_engine, ConsistentRec,
    LccPhaseResult, LccUnit, LccUnitResult, Level,
};
use spam::rules::SpamProgram;
use spam::scene::Scene;
use std::collections::HashMap;
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use std::time::Instant;
use tlp_fault::{FaultPlan, SuperviseError, SupervisorConfig, TaskReport};
use tlp_obs::{
    Category, Live, MetricsRegistry, ObsLevel, Recorder, SceneSpan, SloMonitor, SpanSink,
};

/// Checkpoint policy for a recoverable phase.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CheckpointConfig {
    /// Cycles between snapshots; `0` disables checkpointing (recovery then
    /// falls back to WAL replay from cycle 0).
    pub interval: u64,
}

impl Default for CheckpointConfig {
    fn default() -> Self {
        CheckpointConfig { interval: 8 }
    }
}

impl CheckpointConfig {
    /// Policy checkpointing every `interval` cycles.
    pub fn every(interval: u64) -> CheckpointConfig {
        CheckpointConfig { interval }
    }
}

/// A checkpoint as stored: the cycle it was taken at plus the snapshot
/// bytes.
pub type Checkpoint = (u64, Vec<u8>);

/// Persisted crash-recovery state of one task: its write-ahead log and the
/// most recent snapshot (with the cycle it was taken at).
#[derive(Clone, Debug, Default)]
struct TaskState {
    wal: Vec<u8>,
    checkpoint: Option<Checkpoint>,
}

/// The durable store checkpoints and WALs survive worker death in.
///
/// Lives on the control process, *outside* the workers'
/// `catch_unwind` boundary, so a dead attempt's last checkpoint is intact
/// when the supervisor schedules the retry. Every lock acquisition
/// recovers from poisoning: the stored state is a plain value that is
/// never left half-updated, so a holder dying mid-save (the
/// `checkpoint_hold_kill` chaos fault) invalidates nothing.
#[derive(Debug, Default)]
pub struct CheckpointStore {
    state: Mutex<HashMap<usize, TaskState>>,
}

impl CheckpointStore {
    /// An empty store.
    pub fn new() -> CheckpointStore {
        CheckpointStore::default()
    }

    fn lock(&self) -> MutexGuard<'_, HashMap<usize, TaskState>> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Persists `task`'s write-ahead log (replacing any previous one).
    pub fn save_wal(&self, task: usize, wal: Vec<u8>) {
        self.lock().entry(task).or_default().wal = wal;
    }

    /// Persists `task`'s snapshot taken at `cycle` (replacing any older
    /// checkpoint).
    pub fn save_checkpoint(&self, task: usize, cycle: u64, snapshot: Vec<u8>) {
        self.save_checkpoint_with(task, cycle, snapshot, || {});
    }

    /// [`save_checkpoint`](CheckpointStore::save_checkpoint), then runs
    /// `and_then` *while still holding the store lock*. The chaos harness
    /// injects its kill-while-holding-checkpoint fault here; the data is
    /// inserted before the hook runs, so a panicking hook poisons the
    /// mutex but never loses the checkpoint.
    pub fn save_checkpoint_with(
        &self,
        task: usize,
        cycle: u64,
        snapshot: Vec<u8>,
        and_then: impl FnOnce(),
    ) {
        let mut st = self.lock();
        st.entry(task).or_default().checkpoint = Some((cycle, snapshot));
        and_then();
    }

    /// `task`'s persisted `(wal, checkpoint)` state, if any attempt got far
    /// enough to save one.
    pub fn load(&self, task: usize) -> Option<(Vec<u8>, Option<Checkpoint>)> {
        self.lock()
            .get(&task)
            .map(|s| (s.wal.clone(), s.checkpoint.clone()))
    }

    /// The cycle of `task`'s most recent checkpoint, if any.
    pub fn checkpoint_cycle(&self, task: usize) -> Option<u64> {
        self.lock()
            .get(&task)
            .and_then(|s| s.checkpoint.as_ref().map(|c| c.0))
    }

    /// Drops all persisted state (between phases).
    pub fn clear(&self) {
        self.lock().clear();
    }

    /// Has a lock holder died while holding the store mutex? Recovery
    /// still works when true — the accessors recover the guard.
    pub fn is_poisoned(&self) -> bool {
        self.state.is_poisoned()
    }
}

/// How one task attempt started: from scratch, or resumed from persisted
/// crash-recovery state.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RecoveryInfo {
    /// Task index within the phase.
    pub task: usize,
    /// Which execution of the task this was (0 = first).
    pub attempt: u32,
    /// Cycle of the snapshot this attempt resumed from; `None` when it
    /// (re)built working memory from the WAL or from scratch.
    pub recovered_from_cycle: Option<u64>,
    /// Recognize–act cycles this attempt executed (for a resumed attempt:
    /// only the cycles since the checkpoint).
    pub cycles_replayed: u64,
    /// Cycles the checkpoint saved this attempt from re-executing.
    pub cycles_saved: u64,
    /// WAL records replayed into the engine by this attempt.
    pub wal_records_replayed: u64,
    /// Bytes dropped from a torn WAL tail during this attempt's replay.
    pub wal_bytes_dropped: u64,
}

/// Aggregated recovery accounting for one phase: every successful attempt
/// that resumed (or rebuilt) a previously crashed task.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Final (successful) attempt info for each task that crashed at
    /// least once, in completion order.
    pub recoveries: Vec<RecoveryInfo>,
    /// Total cycles re-executed by recovery attempts.
    pub cycles_replayed: u64,
    /// Total cycles checkpoints saved from re-execution.
    pub cycles_saved: u64,
    /// Total WAL records replayed.
    pub wal_records_replayed: u64,
    /// Total torn-tail bytes dropped.
    pub wal_bytes_dropped: u64,
}

impl RecoveryReport {
    fn add(&mut self, info: RecoveryInfo) {
        self.cycles_replayed += info.cycles_replayed;
        self.cycles_saved += info.cycles_saved;
        self.wal_records_replayed += info.wal_records_replayed;
        self.wal_bytes_dropped += info.wal_bytes_dropped;
        self.recoveries.push(info);
    }

    /// Tasks that crashed and were recovered.
    pub fn recovered_tasks(&self) -> usize {
        self.recoveries.len()
    }

    /// One-line human-readable summary.
    pub fn summary(&self) -> String {
        format!(
            "recovered {} task(s): {} cycles replayed, {} cycles saved by checkpoints, \
             {} WAL records replayed, {} torn bytes dropped",
            self.recovered_tasks(),
            self.cycles_replayed,
            self.cycles_saved,
            self.wal_records_replayed,
            self.wal_bytes_dropped,
        )
    }
}

/// Builds a fresh LCC task engine with its full working memory loaded, and
/// persists the WAL of that load into `store` *before* returning — so a
/// crash at any later point can rebuild the task's inputs from the log.
fn fresh_engine_with_wal(
    sp: &SpamProgram,
    scene: &Arc<Scene>,
    fragments: &Arc<Vec<FragmentHypothesis>>,
    unit: &LccUnit,
    task: usize,
    store: &CheckpointStore,
) -> ops5::Engine {
    let mut e = lcc_engine(sp, scene, fragments);
    e.enable_cycle_log();
    e.make_wme(
        "control",
        &[
            ("phase", Value::symbol("lcc")),
            ("status", Value::symbol("running")),
        ],
    )
    .expect("control");
    load_unit_wm(&mut e, scene, fragments, unit);
    // All of an LCC task's inputs are loaded up front, so the whole WAL is
    // cycle-0 assert records; replaying them through `insert_fields`
    // reproduces the identical ids and time tags.
    let mut wal = Wal::new();
    for (_, w) in e.wm().iter() {
        wal.append(&WalRecord {
            cycle: 0,
            op: WalOp::Assert {
                class: w.class,
                fields: w.fields.to_vec(),
            },
        });
    }
    store.save_wal(task, wal.into_bytes());
    e
}

/// Executes one LCC task attempt under the checkpoint protocol.
///
/// Attempt 0 runs fresh (persisting its WAL first, then checkpointing
/// every [`CheckpointConfig::interval`] cycles). A retry attempt resumes
/// from the persisted state: last snapshot + WAL records past the
/// checkpoint cycle; WAL-only rebuild when no checkpoint exists; clean
/// from-scratch rebuild when the WAL is torn and there is no checkpoint.
///
/// Chaos faults from `plan` are honoured: `cycle_kill` panics the attempt
/// once the engine reaches the fated cycle; `checkpoint_hold_kill` panics
/// it inside the store lock at its first checkpoint; `torn_log` chops
/// bytes off the WAL as read by recovery.
///
/// Results are identical to an uninterrupted [`spam::lcc::run_lcc_unit`]
/// run: the snapshot carries working memory, the conflict set, *and* the
/// work counters across the crash, and the match network rebuild resets
/// its counters to the recorded values.
#[allow(clippy::too_many_arguments)]
pub fn run_lcc_unit_checkpointed(
    sp: &SpamProgram,
    scene: &Arc<Scene>,
    fragments: &Arc<Vec<FragmentHypothesis>>,
    unit: &LccUnit,
    task: usize,
    attempt: u32,
    store: &CheckpointStore,
    ckpt: &CheckpointConfig,
    plan: &FaultPlan,
    rec: &Arc<Recorder>,
    metrics: Option<&MetricsRegistry>,
    mut trace: Option<SpanSink>,
) -> (LccUnitResult, RecoveryInfo) {
    let mut sink = rec.sink(format!("recover-t{task}"));
    let mut info = RecoveryInfo {
        task,
        attempt,
        ..RecoveryInfo::default()
    };

    let saved = if attempt > 0 { store.load(task) } else { None };
    let restore_start_us = trace.as_ref().map(|t| t.now_us());
    let (mut e, start_cycle) = match saved {
        Some((mut wal_bytes, checkpoint)) => {
            let t0 = Instant::now();
            if sink.enabled(ObsLevel::Summary) {
                sink.begin(
                    Category::Recovery,
                    "recover.restore",
                    vec![
                        ("task", (task as u64).into()),
                        ("attempt", u64::from(attempt).into()),
                    ],
                );
            }
            // The torn-log fault models a crash mid-append: the tail of
            // the log as recovery reads it is incomplete.
            if let Some(torn) = plan.torn_log(task) {
                let keep = wal_bytes.len().saturating_sub(torn as usize);
                wal_bytes.truncate(keep);
            }
            let replay = Wal::replay(&wal_bytes).ok();
            let built = match (&checkpoint, &replay) {
                (Some((cycle, snap)), Some(rep)) => {
                    match restore_lcc_engine(sp, scene, fragments, snap) {
                        Ok(mut e) => {
                            e.enable_cycle_log();
                            info.recovered_from_cycle = Some(*cycle);
                            info.cycles_saved = *cycle;
                            info.wal_bytes_dropped = rep.dropped_bytes as u64;
                            // Records at or before the checkpoint cycle are
                            // subsumed by the snapshot; replay the rest.
                            for r in rep.records.iter().filter(|r| r.cycle > *cycle) {
                                apply_record(&mut e, r);
                                info.wal_records_replayed += 1;
                            }
                            Some((e, *cycle))
                        }
                        // Corrupt snapshot: recovery must degrade to a
                        // from-scratch rebuild, never wedge the retry.
                        Err(_) => None,
                    }
                }
                (None, Some(rep)) if !rep.torn() => {
                    // No checkpoint yet, intact WAL: rebuild the initial
                    // working memory from the log.
                    let mut e = lcc_engine(sp, scene, fragments);
                    e.enable_cycle_log();
                    for r in &rep.records {
                        apply_record(&mut e, r);
                    }
                    info.wal_records_replayed = rep.records.len() as u64;
                    Some((e, 0))
                }
                // Torn WAL and no checkpoint: the crash happened while the
                // log itself was being persisted, before the run loop ever
                // started — a fresh rebuild loses nothing.
                _ => None,
            };
            let pair = match built {
                Some(pair) => pair,
                None => (
                    fresh_engine_with_wal(sp, scene, fragments, unit, task, store),
                    0,
                ),
            };
            if let Some(m) = metrics {
                m.record("lcc.recovery_latency_ms", t0.elapsed().as_secs_f64() * 1e3);
            }
            if sink.enabled(ObsLevel::Summary) {
                sink.end(
                    Category::Recovery,
                    "recover.restore",
                    vec![
                        ("from_cycle", info.recovered_from_cycle.unwrap_or(0).into()),
                        ("wal_records", info.wal_records_replayed.into()),
                        ("torn_bytes", info.wal_bytes_dropped.into()),
                    ],
                );
            }
            if let (Some(tr), Some(start_us)) = (trace.as_mut(), restore_start_us) {
                // Restore cost shows up in the retained span tree as an aux
                // leaf under the recovering attempt.
                let end_us = tr.now_us();
                tr.record_aux(
                    &format!(
                        "recover.restore from_cycle={} wal_records={}",
                        info.recovered_from_cycle.unwrap_or(0),
                        info.wal_records_replayed
                    ),
                    start_us,
                    end_us,
                    None,
                );
            }
            pair
        }
        None => (
            fresh_engine_with_wal(sp, scene, fragments, unit, task, store),
            0,
        ),
    };
    if let Some(tr) = trace.take() {
        e.set_trace(tr);
    }

    // The run loop: step, checkpointing every `interval` cycles. Injected
    // kills fire exactly where the plan fates them.
    let kill_at = plan.cycle_kill(task, attempt);
    let hold_kill = plan.checkpoint_hold_kill(task, attempt);
    let mut last_ckpt = start_cycle;
    let mut steps: u64 = 0;
    loop {
        let cycles = e.work().firings;
        if let Some(k) = kill_at {
            if cycles >= k {
                panic!("injected mid-cycle kill: task {task} attempt {attempt} at cycle {cycles}");
            }
        }
        if ckpt.interval > 0 && cycles > last_ckpt && cycles % ckpt.interval == 0 {
            let snap = e.snapshot();
            if sink.enabled(ObsLevel::Full) {
                sink.instant(
                    Category::Recovery,
                    "checkpoint.save",
                    vec![
                        ("task", (task as u64).into()),
                        ("cycle", cycles.into()),
                        ("bytes", (snap.len() as u64).into()),
                    ],
                );
            }
            if hold_kill {
                store.save_checkpoint_with(task, cycles, snap, || {
                    panic!(
                        "injected kill while holding the checkpoint lock: \
                         task {task} attempt {attempt} at cycle {cycles}"
                    );
                });
            } else {
                store.save_checkpoint(task, cycles, snap);
            }
            last_ckpt = cycles;
        }
        match e.step() {
            Ok(Some(_)) => {
                steps += 1;
                assert!(steps <= 1_000_000, "LCC task exceeded its cycle budget");
            }
            Ok(None) => break,
            Err(err) => panic!("LCC task engine error: {err}"),
        }
    }

    let firings = e.work().firings;
    info.cycles_replayed = firings - start_cycle;
    if attempt > 0 {
        if sink.enabled(ObsLevel::Summary) {
            sink.instant(
                Category::Recovery,
                "recover.complete",
                vec![
                    ("task", (task as u64).into()),
                    ("cycles_replayed", info.cycles_replayed.into()),
                    ("cycles_saved", info.cycles_saved.into()),
                ],
            );
        }
        if let Some(m) = metrics {
            m.count("lcc.recover.cycles_replayed", info.cycles_replayed);
            m.count("lcc.recover.cycles_saved", info.cycles_saved);
        }
    }
    sink.flush();
    e.publish_trace();
    (harvest_lcc_unit(&mut e, firings), info)
}

/// Runs the LCC phase in parallel under the checkpoint/recovery protocol:
/// [`run_parallel_lcc_traced`](crate::tlp::run_parallel_lcc_traced) where a
/// retried task *resumes from its last checkpoint* instead of starting
/// over. Returns the phase result plus the recovery accounting.
///
/// The phase's results are identical to the fault-free sequential run for
/// every plan the retry budget can absorb — including chaos plans that
/// kill workers mid-cycle, kill them while they hold the checkpoint-store
/// lock, and tear WAL tails.
#[allow(clippy::too_many_arguments)]
pub fn run_parallel_lcc_recoverable(
    sp: &SpamProgram,
    scene: &Arc<Scene>,
    fragments: &Arc<Vec<FragmentHypothesis>>,
    level: Level,
    n_workers: usize,
    cfg: &SupervisorConfig,
    plan: &FaultPlan,
    rec: &Arc<Recorder>,
    ckpt: &CheckpointConfig,
    metrics: Option<&MetricsRegistry>,
) -> Result<(LccPhaseResult, RecoveryReport), SuperviseError> {
    run_parallel_lcc_recoverable_live(
        sp,
        scene,
        fragments,
        level,
        n_workers,
        cfg,
        plan,
        rec,
        ckpt,
        metrics,
        &Live::off(),
        None,
        None,
    )
}

/// [`run_parallel_lcc_recoverable`] with live telemetry attached: on top of
/// the supervisor's task/queue series (see
/// [`crate::supervise::supervise_observed`]), every successful attempt that
/// recovered a previously crashed task publishes `spam_live_recoveries` and
/// a `spam_live_recovery_latency_seconds` sample (the recovering attempt's
/// wall time: restore + replay + remaining cycles). When an [`SloMonitor`]
/// is attached it is told about each recovery ([`SloMonitor::on_recovery`]
/// pins the health ladder at *recovering* until enough clean epochs pass)
/// and fed each completed unit's simulated latency. Results are identical
/// at every telemetry setting.
#[allow(clippy::too_many_arguments)]
pub fn run_parallel_lcc_recoverable_live(
    sp: &SpamProgram,
    scene: &Arc<Scene>,
    fragments: &Arc<Vec<FragmentHypothesis>>,
    level: Level,
    n_workers: usize,
    cfg: &SupervisorConfig,
    plan: &FaultPlan,
    rec: &Arc<Recorder>,
    ckpt: &CheckpointConfig,
    metrics: Option<&MetricsRegistry>,
    live: &Arc<Live>,
    slo: Option<&Arc<SloMonitor>>,
    span: Option<&SceneSpan>,
) -> Result<(LccPhaseResult, RecoveryReport), SuperviseError> {
    let units = decompose(scene, fragments, level);
    let labels: Vec<String> = units.iter().map(|u| u.label()).collect();
    let store = CheckpointStore::new();
    let lh = live.handle();
    let (slots, report) = supervise_observed(
        n_workers,
        labels,
        cfg,
        plan,
        rec,
        live,
        slo,
        span,
        |i, (r, info, attempt_s): &(LccUnitResult, RecoveryInfo, f64)| {
            if info.attempt > 0 {
                lh.inc("spam_live_recoveries", 1);
                lh.observe("spam_live_recovery_latency_seconds", *attempt_s);
                if let Some(slo) = slo {
                    slo.on_recovery();
                }
            }
            if let Some(slo) = slo {
                slo.observe(r.work.seconds_at(spam::phases::MIPS), true);
            }
            if let Some(span) = span {
                span.record_service(
                    i as u32,
                    r.work.seconds_at(spam::phases::MIPS),
                    r.work.match_fraction(),
                );
            }
        },
        |a: TaskAttempt| {
            let t0 = Instant::now();
            let (r, info) = run_lcc_unit_checkpointed(
                sp,
                scene,
                fragments,
                &units[a.task],
                a.task,
                a.attempt,
                &store,
                ckpt,
                plan,
                rec,
                metrics,
                a.trace,
            );
            (r, info, t0.elapsed().as_secs_f64())
        },
    )?;

    let mut recovery = RecoveryReport::default();
    let mut results: Vec<LccUnitResult> = Vec::new();
    for (r, info, _) in slots.into_iter().flatten() {
        if info.attempt > 0 {
            recovery.add(info);
        }
        results.push(r);
    }
    let phase = merge_lcc_results(level, fragments, results, report);
    Ok((phase, recovery))
}

/// Merges per-unit results into a phase result (the same accumulation the
/// plain parallel runner performs).
fn merge_lcc_results(
    level: Level,
    fragments: &Arc<Vec<FragmentHypothesis>>,
    results: Vec<LccUnitResult>,
    report: TaskReport,
) -> LccPhaseResult {
    let mut work = WorkCounters::default();
    let mut firings = 0;
    let mut consistents: Vec<ConsistentRec> = Vec::new();
    let mut supports = vec![0i64; fragments.len()];
    for r in &results {
        work.add(&r.work);
        firings += r.firings;
        consistents.extend(r.consistents.iter().copied());
        for &(f, sup) in &r.supports {
            supports[f as usize] += sup;
        }
    }
    let mut updated: Vec<FragmentHypothesis> = fragments.as_ref().clone();
    for f in &mut updated {
        f.support = supports[f.id as usize];
    }
    LccPhaseResult {
        level,
        fragments: updated,
        consistents,
        units: results,
        work,
        firings,
        report,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spam::lcc::run_lcc;
    use spam::rtf::run_rtf;
    use std::time::Duration;

    fn setup() -> (SpamProgram, Arc<Scene>, Arc<Vec<FragmentHypothesis>>) {
        let sp = SpamProgram::build();
        let scene = Arc::new(spam::generate_scene(&spam::datasets::dc().spec));
        let rtf = run_rtf(&sp, &scene);
        (sp, scene, Arc::new(rtf.fragments))
    }

    fn canonical(c: &[ConsistentRec]) -> Vec<(u32, u32, &'static str)> {
        let mut v: Vec<_> = c.iter().map(|r| (r.a, r.b, r.rel.name())).collect();
        v.sort();
        v
    }

    fn assert_phase_equal(a: &LccPhaseResult, b: &LccPhaseResult) {
        assert_eq!(a.firings, b.firings, "firings");
        for (i, (ua, ub)) in a.units.iter().zip(b.units.iter()).enumerate() {
            assert_eq!(ua.work, ub.work, "unit {i} work counters");
        }
        assert_eq!(a.work, b.work, "work counters");
        assert_eq!(canonical(&a.consistents), canonical(&b.consistents));
        let sa: Vec<i64> = a.fragments.iter().map(|f| f.support).collect();
        let sb: Vec<i64> = b.fragments.iter().map(|f| f.support).collect();
        assert_eq!(sa, sb, "supports");
    }

    #[test]
    fn checkpointed_fault_free_run_equals_sequential() {
        let (sp, scene, frags) = setup();
        let seq = run_lcc(&sp, &scene, &frags, Level::L3);
        let (par, recovery) = run_parallel_lcc_recoverable(
            &sp,
            &scene,
            &frags,
            Level::L3,
            3,
            &SupervisorConfig::default(),
            &FaultPlan::none(),
            &Recorder::off(),
            &CheckpointConfig::every(4),
            None,
        )
        .unwrap();
        assert!(par.report.is_clean());
        assert_eq!(recovery.recovered_tasks(), 0);
        assert_phase_equal(&par, &seq);
    }

    #[test]
    fn mid_cycle_kill_resumes_from_checkpoint_with_fewer_cycles() {
        let (sp, scene, frags) = setup();
        let seq = run_lcc(&sp, &scene, &frags, Level::L3);
        // Pick the unit with the most cycles so the kill lands well past
        // several checkpoints.
        let (victim, span) = seq
            .units
            .iter()
            .enumerate()
            .map(|(i, u)| (i, u.firings))
            .max_by_key(|&(_, f)| f)
            .unwrap();
        assert!(span >= 8, "need a long unit for this scenario: {span}");
        let kill_cycle = span - 1;
        let plan = FaultPlan::seeded(5).with_cycle_kill(victim, 0, kill_cycle);
        let cfg = SupervisorConfig::default()
            .with_retries(2)
            .with_backoff(Duration::from_millis(1));
        let metrics = MetricsRegistry::new();
        let (par, recovery) = run_parallel_lcc_recoverable(
            &sp,
            &scene,
            &frags,
            Level::L3,
            3,
            &cfg,
            &plan,
            &Recorder::off(),
            &CheckpointConfig::every(2),
            Some(&metrics),
        )
        .unwrap();
        // Every scene unit completed, with results equal to fault-free.
        assert_eq!(par.report.dead_letters().len(), 0);
        assert_phase_equal(&par, &seq);
        // The victim recovered from a checkpoint, replaying strictly fewer
        // cycles than a from-scratch retry would have.
        assert_eq!(recovery.recovered_tasks(), 1);
        let info = &recovery.recoveries[0];
        assert_eq!(info.task, victim);
        assert!(info.recovered_from_cycle.is_some(), "{info:?}");
        assert!(info.cycles_saved > 0, "{info:?}");
        assert!(
            info.cycles_replayed < span,
            "resume must replay fewer than the full {span} cycles: {info:?}"
        );
        assert_eq!(info.cycles_saved + info.cycles_replayed, span);
        // The recovery latency metric was recorded.
        let snap = metrics.snapshot();
        assert!(
            matches!(
                snap.get("lcc.recovery_latency_ms"),
                Some(tlp_obs::Metric::Histogram(h)) if h.count() == 1
            ),
            "recovery_latency_ms must be recorded once"
        );
    }

    #[test]
    fn live_recoverable_runner_publishes_recovery_series() {
        use tlp_obs::{Health, LiveValue, SloConfig};
        let (sp, scene, frags) = setup();
        let seq = run_lcc(&sp, &scene, &frags, Level::L3);
        let (victim, span) = seq
            .units
            .iter()
            .enumerate()
            .map(|(i, u)| (i, u.firings))
            .max_by_key(|&(_, f)| f)
            .unwrap();
        assert!(span >= 4, "need a non-trivial unit: {span}");
        let plan = FaultPlan::seeded(11).with_cycle_kill(victim, 0, span - 1);
        let cfg = SupervisorConfig::default()
            .with_retries(2)
            .with_backoff(Duration::from_millis(1));
        let live = Live::new(8);
        let slo = Arc::new(SloMonitor::new(SloConfig::for_scene("dc"), live.handle()));
        let (par, recovery) = run_parallel_lcc_recoverable_live(
            &sp,
            &scene,
            &frags,
            Level::L3,
            3,
            &cfg,
            &plan,
            &Recorder::off(),
            &CheckpointConfig::every(2),
            None,
            &live,
            Some(&slo),
            None,
        )
        .unwrap();
        assert_phase_equal(&par, &seq);
        assert_eq!(recovery.recovered_tasks(), 1);
        let snap = live.snapshot();
        match snap.series.get("spam_live_recoveries") {
            Some(LiveValue::Counter { total, .. }) => assert_eq!(*total, 1),
            other => panic!("recoveries counter missing: {other:?}"),
        }
        match snap.series.get("spam_live_recovery_latency_seconds") {
            Some(LiveValue::Histogram(h)) => assert!(h.count() >= 1),
            other => panic!("recovery latency histogram missing: {other:?}"),
        }
        // The supervisor's retry of the killed attempt is also visible.
        match snap.series.get("spam_live_task_retries") {
            Some(LiveValue::Counter { total, .. }) => assert_eq!(*total, 1),
            other => panic!("retry counter missing: {other:?}"),
        }
        // One crash absorbed by recovery must never read as degraded; it
        // either healed (enough clean epochs followed) or is recovering.
        assert_ne!(slo.health(), Health::Degraded);
    }

    #[test]
    fn recovery_emits_flight_recorder_spans() {
        let (sp, scene, frags) = setup();
        let seq = run_lcc(&sp, &scene, &frags, Level::L3);
        let (victim, span) = seq
            .units
            .iter()
            .enumerate()
            .map(|(i, u)| (i, u.firings))
            .max_by_key(|&(_, f)| f)
            .unwrap();
        let plan = FaultPlan::seeded(6).with_cycle_kill(victim, 0, span - 1);
        let cfg = SupervisorConfig::default()
            .with_retries(2)
            .with_backoff(Duration::from_millis(1));
        let rec = Recorder::new(ObsLevel::Full);
        let (par, _) = run_parallel_lcc_recoverable(
            &sp,
            &scene,
            &frags,
            Level::L3,
            2,
            &cfg,
            &plan,
            &rec,
            &CheckpointConfig::every(2),
            None,
        )
        .unwrap();
        assert_phase_equal(&par, &seq);
        let events = rec.events();
        let names: Vec<&str> = events.iter().map(|e| e.name.as_str()).collect();
        assert!(names.contains(&"checkpoint.save"), "{names:?}");
        assert!(names.contains(&"recover.restore"), "{names:?}");
        assert!(names.contains(&"recover.complete"), "{names:?}");
        assert!(events
            .iter()
            .any(|e| e.cat == Category::Recovery && e.name == "recover.restore"));
    }

    #[test]
    fn torn_wal_without_checkpoint_falls_back_to_scratch() {
        let (sp, scene, frags) = setup();
        let seq = run_lcc(&sp, &scene, &frags, Level::L3);
        // Kill at cycle 1 with checkpointing effectively disabled: the
        // retry finds only a WAL — and a torn one at that.
        let victim = 0usize;
        let plan = FaultPlan::seeded(7)
            .with_cycle_kill(victim, 0, 1)
            .with_torn_log(victim, 5);
        let cfg = SupervisorConfig::default()
            .with_retries(2)
            .with_backoff(Duration::from_millis(1));
        let (par, recovery) = run_parallel_lcc_recoverable(
            &sp,
            &scene,
            &frags,
            Level::L3,
            2,
            &cfg,
            &plan,
            &Recorder::off(),
            &CheckpointConfig::every(1_000_000),
            None,
        )
        .unwrap();
        assert_eq!(par.report.dead_letters().len(), 0);
        assert_phase_equal(&par, &seq);
        assert_eq!(recovery.recovered_tasks(), 1);
        let info = &recovery.recoveries[0];
        assert_eq!(info.recovered_from_cycle, None);
        assert_eq!(info.cycles_saved, 0);
        assert_eq!(
            info.wal_records_replayed, 0,
            "a torn log with no checkpoint must be discarded, not replayed"
        );
    }

    #[test]
    fn intact_wal_without_checkpoint_rebuilds_from_the_log() {
        let (sp, scene, frags) = setup();
        let seq = run_lcc(&sp, &scene, &frags, Level::L3);
        let victim = 1usize;
        let plan = FaultPlan::seeded(8).with_cycle_kill(victim, 0, 1);
        let cfg = SupervisorConfig::default()
            .with_retries(1)
            .with_backoff(Duration::from_millis(1));
        let (par, recovery) = run_parallel_lcc_recoverable(
            &sp,
            &scene,
            &frags,
            Level::L3,
            2,
            &cfg,
            &plan,
            &Recorder::off(),
            &CheckpointConfig::every(1_000_000),
            None,
        )
        .unwrap();
        assert_phase_equal(&par, &seq);
        assert_eq!(recovery.recovered_tasks(), 1);
        let info = &recovery.recoveries[0];
        assert_eq!(info.recovered_from_cycle, None);
        assert!(
            info.wal_records_replayed > 0,
            "the intact WAL must drive the rebuild: {info:?}"
        );
    }

    #[test]
    fn hold_kill_poisons_the_store_but_the_phase_still_completes() {
        let (sp, scene, frags) = setup();
        let seq = run_lcc(&sp, &scene, &frags, Level::L3);
        let (victim, span) = seq
            .units
            .iter()
            .enumerate()
            .map(|(i, u)| (i, u.firings))
            .max_by_key(|&(_, f)| f)
            .unwrap();
        assert!(span >= 6, "need room for two checkpoints: {span}");
        // Attempt 0 dies mid-cycle; attempt 1 dies at its first checkpoint
        // *while holding the store lock*; attempt 2 must recover from the
        // checkpoint that hold-kill still managed to save.
        let plan = FaultPlan::seeded(9)
            .with_cycle_kill(victim, 0, span - 1)
            .with_checkpoint_hold_kill(victim, 1);
        let cfg = SupervisorConfig::default()
            .with_retries(3)
            .with_backoff(Duration::from_millis(1));
        let (par, recovery) = run_parallel_lcc_recoverable(
            &sp,
            &scene,
            &frags,
            Level::L3,
            2,
            &cfg,
            &plan,
            &Recorder::off(),
            &CheckpointConfig::every(2),
            None,
        )
        .unwrap();
        assert_eq!(par.report.dead_letters().len(), 0);
        assert_phase_equal(&par, &seq);
        assert_eq!(recovery.recovered_tasks(), 1);
        let info = &recovery.recoveries[0];
        assert_eq!(info.attempt, 2, "two crashes, third execution succeeds");
        assert!(info.recovered_from_cycle.is_some());
        assert_eq!(par.report.outcomes[victim].attempts, 3);
    }

    #[test]
    fn checkpoint_store_is_poison_tolerant() {
        crate::supervise::install_quiet_hook();
        let store = Arc::new(CheckpointStore::new());
        let s = Arc::clone(&store);
        let _ = std::thread::Builder::new()
            .name("psm-task-poison".into())
            .spawn(move || {
                s.save_checkpoint_with(3, 8, vec![1, 2, 3], || {
                    panic!("injected: die holding the checkpoint store lock");
                });
            })
            .unwrap()
            .join();
        assert!(store.is_poisoned(), "setup must actually poison the store");
        // The checkpoint inserted before the hook panicked is intact, and
        // the store keeps accepting saves and loads.
        assert_eq!(store.checkpoint_cycle(3), Some(8));
        let (wal, ckpt) = {
            store.save_wal(3, vec![9]);
            store.load(3).unwrap()
        };
        assert_eq!(wal, vec![9]);
        assert_eq!(ckpt, Some((8, vec![1, 2, 3])));
        store.save_checkpoint(4, 16, vec![7]);
        assert_eq!(store.checkpoint_cycle(4), Some(16));
        store.clear();
        assert!(store.load(3).is_none());
    }

    #[test]
    fn chaos_schedule_with_three_kills_loses_no_scene_results() {
        // The module-level chaos acceptance scenario (the CI job and
        // `spamctl chaos` run bigger variants): three distinct victims
        // killed mid-cycle, one torn log, equal results, and strictly
        // fewer replayed cycles than from-scratch retries would cost.
        let (sp, scene, frags) = setup();
        let seq = run_lcc(&sp, &scene, &frags, Level::L3);
        let task_cycles: Vec<u64> = seq.units.iter().map(|u| u.firings).collect();
        let interval = 2;
        let plan = tlp_fault::chaos_schedule(42, 3, &task_cycles, interval);
        let victims: Vec<usize> = (0..task_cycles.len())
            .filter(|&t| plan.cycle_kill(t, 0).is_some())
            .collect();
        assert_eq!(victims.len(), 3, "{}", plan.describe());
        let cfg = SupervisorConfig::default()
            .with_retries(3)
            .with_backoff(Duration::from_millis(1));
        let (par, recovery) = run_parallel_lcc_recoverable(
            &sp,
            &scene,
            &frags,
            Level::L3,
            3,
            &cfg,
            &plan,
            &Recorder::off(),
            &CheckpointConfig::every(interval),
            None,
        )
        .unwrap();
        assert_eq!(
            par.report.dead_letters().len(),
            0,
            "no scene may be lost\n{}",
            plan.describe()
        );
        assert_phase_equal(&par, &seq);
        assert_eq!(recovery.recovered_tasks(), 3, "{}", plan.describe());
        let scratch_cost: u64 = victims.iter().map(|&t| task_cycles[t]).sum();
        assert!(
            recovery.cycles_replayed < scratch_cost,
            "recovery must replay strictly fewer cycles ({}) than from-scratch \
             retries ({scratch_cost})\n{}",
            recovery.cycles_replayed,
            plan.describe()
        );
        assert_eq!(
            recovery.cycles_saved + recovery.cycles_replayed,
            scratch_cost
        );
    }
}
