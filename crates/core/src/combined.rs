//! Combined task-level × match parallelism (Table 9).
//!
//! §6.4: "the speed-ups obtained in these combined runs were consistent
//! with the speed-ups predicted by the multiplication of speed-ups from the
//! two separate sources." A configuration `(Task_n, Match_m)` uses
//! `n + n·m` processors: `n` task processes, each with `m` dedicated match
//! processes.

use crate::trace::PhaseTrace;
use multimax_sim::{simulate, SimConfig};
use paraops5::costmodel::{match_component_speedup, CostModel};

/// One cell of the Table 9 grid.
#[derive(Clone, Copy, Debug)]
pub struct CombinedCell {
    /// Task processes.
    pub task_processes: u32,
    /// Dedicated match processes per task process.
    pub match_processes: u32,
    /// Measured combined speed-up (simulated run with both axes active).
    pub achieved: f64,
    /// Predicted speed-up: product of the isolated speed-ups.
    pub predicted: f64,
    /// Total processors used (`1 + n + n·m`, counting the control process
    /// as in §5.2).
    pub processors: u32,
}

/// Speed-up of the match component alone under `m` dedicated match
/// processes, derived from the phase's aggregate cycle log. `m` dedicated
/// processes plus the task process itself give `m + 1`-way match
/// parallelism (the paper's Figure 7 axis plots 0 dedicated = baseline).
pub fn match_axis_speedup(trace: &PhaseTrace, m: u32, model: &CostModel) -> f64 {
    if m == 0 {
        return 1.0;
    }
    match_component_speedup(&trace.cycle_log, m + 1, model)
}

/// The speed-up of the whole-task service time when its match component is
/// sped up by `match_speedup` (Amdahl over the phase's match fraction).
fn task_service_factor(trace: &PhaseTrace, match_speedup: f64) -> f64 {
    // Weighted by task service: sum(service_i scaled) / sum(service_i).
    let total: f64 = trace.tasks.total_service();
    let scaled: f64 = trace
        .tasks
        .tasks
        .iter()
        .map(|t| t.service_with_match_speedup(match_speedup))
        .sum();
    total / scaled
}

/// Computes one combined configuration.
pub fn combined_cell(
    trace: &PhaseTrace,
    task_processes: u32,
    match_processes: u32,
    model: &CostModel,
) -> CombinedCell {
    // Isolated axes.
    let base_cfg = SimConfig::encore(1);
    let base = simulate(&base_cfg, &trace.tasks.tasks).makespan;

    let tlp_only = {
        let cfg = SimConfig::encore(task_processes);
        base / simulate(&cfg, &trace.tasks.tasks).makespan
    };
    let match_component = match_axis_speedup(trace, match_processes, model);
    let match_only = task_service_factor(trace, match_component);

    // Combined run: every task process fields `match_processes` helpers, so
    // each task's match component shrinks; queueing effects still apply.
    let combined_cfg = SimConfig {
        match_speedup: match_component,
        ..SimConfig::encore(task_processes)
    };
    let achieved = base / simulate(&combined_cfg, &trace.tasks.tasks).makespan;

    CombinedCell {
        task_processes,
        match_processes,
        achieved,
        predicted: tlp_only * match_only,
        processors: 1 + task_processes * (1 + match_processes),
    }
}

/// Computes the Table 9 grid for the given axes, skipping configurations
/// that exceed `max_processors` (the paper marks those with asterisks).
pub fn combined_grid(
    trace: &PhaseTrace,
    task_axis: &[u32],
    match_axis: &[u32],
    max_processors: u32,
    model: &CostModel,
) -> Vec<Vec<Option<CombinedCell>>> {
    task_axis
        .iter()
        .map(|&n| {
            match_axis
                .iter()
                .map(|&m| {
                    let cell = combined_cell(trace, n, m, model);
                    if cell.processors <= max_processors {
                        Some(cell)
                    } else {
                        None
                    }
                })
                .collect()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::lcc_trace;
    use spam::lcc::{run_lcc, Level};
    use spam::rtf::run_rtf;
    use spam::rules::SpamProgram;
    use std::sync::Arc;

    fn trace() -> PhaseTrace {
        let sp = SpamProgram::build();
        let scene = Arc::new(spam::generate_scene(&spam::datasets::dc().spec));
        let rtf = run_rtf(&sp, &scene);
        let frags = Arc::new(rtf.fragments);
        lcc_trace(&run_lcc(&sp, &scene, &frags, Level::L2))
    }

    #[test]
    fn achieved_tracks_predicted() {
        let t = trace();
        let model = CostModel::default();
        for (n, m) in [(2, 1), (4, 2), (3, 1)] {
            let c = combined_cell(&t, n, m, &model);
            let rel = (c.achieved - c.predicted).abs() / c.predicted;
            assert!(
                rel < 0.12,
                "(Task{n}, Match{m}): achieved {:.2} vs predicted {:.2}",
                c.achieved,
                c.predicted
            );
            assert!(c.achieved > 1.0);
        }
    }

    #[test]
    fn combined_exceeds_either_axis_alone() {
        let t = trace();
        let model = CostModel::default();
        let tlp_only = combined_cell(&t, 4, 0, &model);
        let combined = combined_cell(&t, 4, 2, &model);
        assert!(combined.achieved > tlp_only.achieved);
    }

    #[test]
    fn grid_masks_configurations_beyond_the_machine() {
        let t = trace();
        let grid = combined_grid(&t, &[1, 4, 7], &[0, 1, 2, 3], 16, &CostModel::default());
        // (Task7, Match3) needs 1 + 7*4 = 29 > 16 processors → masked.
        assert!(grid[2][3].is_none());
        // (Task4, Match2) needs 13 ≤ 16 → present.
        assert!(grid[1][2].is_some());
    }
}
