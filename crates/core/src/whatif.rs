//! Causal what-if profiling on recorded traces (TASKPROF-style).
//!
//! The attribution layer (`crate::attribution`) explains where time *went*;
//! this module predicts where time *could go*. Given a recorded
//! [`PhaseTrace`] and (optionally) a per-production [`MatchProfile`], it
//! applies a **virtual speedup** of X% to a selected [`Target`] — a single
//! production's match cost, one task, the whole decomposition level, a gap
//! component of the scheduler, or the whole-phase match fraction — then
//! re-simulates under the same cost model and reports how the makespan, the
//! critical chain, and the gap decomposition move. Ranked over a candidate
//! set this becomes the "optimize this next" report behind `spamctl whatif`,
//! with a diminishing-returns curve (X ∈ {10, 25, 50, 75, 100}%) per
//! candidate.
//!
//! The predictions are *causal* in the profiler sense: nothing is
//! extrapolated from percentages alone — the perturbed workload is replayed
//! through the discrete-event scheduler, so queueing, tail-end, and
//! overhead effects all respond to the perturbation. `bench_whatif`
//! validates the whole chain against a real optimization: replaying the
//! unshared-Rete trace with match virtually sped up by the measured sharing
//! ratio must land within a gated tolerance of the measured shared run.

use crate::attribution::{critical_path_of, perturbed_attribution, CriticalPath, GapAttribution};
use crate::trace::PhaseTrace;
use multimax_sim::{simulate, speedup_curve, SimConfig, SpeedupPoint, Task, TaskSet};
use ops5::MatchProfile;
use std::fmt;
use tlp_obs::json::Json;

/// The diminishing-returns curve sampled for every candidate.
pub const CURVE_SCALES: [f64; 5] = [10.0, 25.0, 50.0, 75.0, 100.0];

/// A gap component the scheduler's cost model can virtually shrink.
///
/// Only *actionable* components are targets: fork and dequeue are direct
/// cost-model knobs; queue-wait and idle/tail are emergent (they shrink as
/// a *consequence* of other perturbations and cannot be dialled directly),
/// and fault time only exists under an injected plan.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum GapComponent {
    /// Per-task-process fork / initialisation cost.
    Fork,
    /// Per-task dequeue critical section.
    Dequeue,
}

impl GapComponent {
    /// The component's report name.
    pub fn name(self) -> &'static str {
        match self {
            GapComponent::Fork => "fork",
            GapComponent::Dequeue => "dequeue",
        }
    }
}

/// What the virtual speedup applies to.
#[derive(Clone, Debug, PartialEq)]
pub enum Target {
    /// The whole-phase match component: every task's match fraction.
    Match,
    /// One production's share of the match work (needs a profile).
    Production(String),
    /// One task's entire service time.
    Task(u32),
    /// Every task in the recorded decomposition level. A [`PhaseTrace`] is
    /// recorded at a single level, so this scales the whole task set; the
    /// CLI checks the requested number names the level actually recorded.
    Level(u32),
    /// A scheduler cost-model component.
    Component(GapComponent),
}

impl Target {
    /// Parses the `spamctl whatif --target` syntax:
    /// `match | prod:<name> | task:<id> | level:<n> | component:<fork|dequeue>`.
    pub fn parse(s: &str) -> Result<Target, String> {
        if s == "match" {
            return Ok(Target::Match);
        }
        if let Some(name) = s.strip_prefix("prod:") {
            if name.is_empty() {
                return Err("prod: needs a production name".into());
            }
            return Ok(Target::Production(name.to_string()));
        }
        if let Some(id) = s.strip_prefix("task:") {
            let id = id.parse().map_err(|e| format!("bad task id '{id}': {e}"))?;
            return Ok(Target::Task(id));
        }
        if let Some(n) = s.strip_prefix("level:") {
            let n: u32 = n.parse().map_err(|e| format!("bad level '{n}': {e}"))?;
            if !(1..=4).contains(&n) {
                return Err(format!("level:{n} out of range (1..=4)"));
            }
            return Ok(Target::Level(n));
        }
        if let Some(c) = s.strip_prefix("component:") {
            return match c {
                "fork" => Ok(Target::Component(GapComponent::Fork)),
                "dequeue" => Ok(Target::Component(GapComponent::Dequeue)),
                "queue-wait" | "idle" | "idle/tail" | "fault" => Err(format!(
                    "component:{c} is not directly actionable — queue-wait, idle/tail and \
                     fault time are consequences of the schedule, not cost-model knobs; \
                     try component:fork, component:dequeue, or a prod:/task:/match target"
                )),
                other => Err(format!("unknown component '{other}' (want fork|dequeue)")),
            };
        }
        Err(format!(
            "bad target '{s}' (want match | prod:<name> | task:<id> | level:<n> | \
             component:<fork|dequeue>)"
        ))
    }
}

impl fmt::Display for Target {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Target::Match => write!(f, "match"),
            Target::Production(n) => write!(f, "prod:{n}"),
            Target::Task(id) => write!(f, "task:{id}"),
            Target::Level(n) => write!(f, "level:{n}"),
            Target::Component(c) => write!(f, "component:{}", c.name()),
        }
    }
}

/// A virtually-perturbed workload: the task set and configuration to
/// re-simulate. Produced by [`apply_virtual_speedup`].
#[derive(Clone, Debug)]
pub struct Perturbed {
    /// The (possibly rescaled) task set.
    pub tasks: TaskSet,
    /// The (possibly rescaled) cost model.
    pub cfg: SimConfig,
}

/// Scales a task's match component by `s ∈ [0, 1]`, keeping the non-match
/// component fixed — the Amdahl decomposition the simulator itself uses.
fn scale_match(t: &Task, s: f64) -> Task {
    // Bit-exact identity at s = 1: `(service − m) + m` is not guaranteed
    // to round back to `service`, and a 0% what-if must be a true no-op.
    if s == 1.0 {
        return *t;
    }
    let m = t.service * t.match_fraction;
    let rest = t.service - m;
    let service = rest + m * s;
    let mf = if service > 0.0 {
        (m * s / service).clamp(0.0, 1.0)
    } else {
        0.0
    };
    Task::with_match(t.id, service, mf)
}

/// Applies a virtual speedup of `pct`% (`0..=100`) to `target`, returning
/// the perturbed workload to re-simulate. `pct = 0` is the identity;
/// `pct = 100` removes the target's cost entirely.
///
/// Production targets need `profile`; the production's share of the total
/// match work (a lower bound — shared alpha work is not credited, see
/// [`MatchProfile::production_match_share`]) scales every task's match
/// component, since per-production cost is not recorded per task.
pub fn apply_virtual_speedup(
    trace: &PhaseTrace,
    profile: Option<&MatchProfile>,
    cfg: &SimConfig,
    target: &Target,
    pct: f64,
) -> Result<Perturbed, String> {
    if !(0.0..=100.0).contains(&pct) || !pct.is_finite() {
        return Err(format!("scale {pct}% out of range (0..=100)"));
    }
    let s = 1.0 - pct / 100.0;
    let tasks = &trace.tasks.tasks;
    let (tasks, cfg) = match target {
        Target::Match => (tasks.iter().map(|t| scale_match(t, s)).collect(), *cfg),
        Target::Production(name) => {
            let profile = profile.ok_or(
                "prod: targets need a match profile (build ops5 with the `profiler` feature)",
            )?;
            let idx = profile
                .find_production(name)
                .ok_or_else(|| format!("no production named '{name}' in the profile"))?;
            let share = profile.production_match_share(idx);
            // The production owns `share` of the match work: removing
            // pct% of *its* cost scales the match component by this.
            let sp = 1.0 - share * pct / 100.0;
            (tasks.iter().map(|t| scale_match(t, sp)).collect(), *cfg)
        }
        Target::Task(id) => {
            if !tasks.iter().any(|t| t.id == *id) {
                return Err(format!("no task {id} in the trace"));
            }
            (
                tasks
                    .iter()
                    .map(|t| {
                        if t.id == *id {
                            Task::with_match(t.id, t.service * s, t.match_fraction)
                        } else {
                            *t
                        }
                    })
                    .collect(),
                *cfg,
            )
        }
        Target::Level(_) => (
            tasks
                .iter()
                .map(|t| Task::with_match(t.id, t.service * s, t.match_fraction))
                .collect(),
            *cfg,
        ),
        Target::Component(c) => {
            let mut cfg = *cfg;
            match c {
                GapComponent::Fork => cfg.fork_overhead *= s,
                GapComponent::Dequeue => cfg.dequeue_overhead *= s,
            }
            (tasks.clone(), cfg)
        }
    };
    Ok(Perturbed {
        tasks: TaskSet::new(tasks),
        cfg,
    })
}

/// One causal prediction: the re-simulated outcome of a virtual speedup.
#[derive(Clone, Debug)]
pub struct WhatifPrediction {
    /// The target, rendered (`prod:mh-…`, `match`, …).
    pub target: String,
    /// Virtual speedup percentage applied (0..=100).
    pub scale_pct: f64,
    /// Task-process count both runs were simulated at.
    pub workers: u32,
    /// Unperturbed makespan at `workers` (seconds).
    pub base_makespan: f64,
    /// Predicted makespan after the virtual speedup (seconds).
    pub predicted_makespan: f64,
    /// Critical chain of the unperturbed workload.
    pub base_critical: CriticalPath,
    /// Critical chain after the virtual speedup.
    pub critical: CriticalPath,
    /// Full gap decomposition of the perturbed run.
    pub attribution: GapAttribution,
}

impl WhatifPrediction {
    /// Predicted wall-clock saving, seconds (≥ 0 up to float rounding).
    pub fn saved(&self) -> f64 {
        self.base_makespan - self.predicted_makespan
    }

    /// Predicted saving as a fraction of the base makespan, in percent.
    pub fn saved_pct(&self) -> f64 {
        if self.base_makespan <= 0.0 {
            return 0.0;
        }
        100.0 * self.saved() / self.base_makespan
    }

    /// Predicted phase speedup, `base / predicted`.
    pub fn speedup(&self) -> f64 {
        if self.predicted_makespan <= 0.0 {
            return 0.0;
        }
        self.base_makespan / self.predicted_makespan
    }
}

/// Predicts the effect of virtually speeding `target` up by `pct`% on the
/// recorded `trace` under `cfg`: perturbs the workload, replays it through
/// the scheduler, and re-runs the attribution. The whatif entry point.
pub fn predict(
    trace: &PhaseTrace,
    profile: Option<&MatchProfile>,
    cfg: &SimConfig,
    target: &Target,
    pct: f64,
) -> Result<WhatifPrediction, String> {
    let p = apply_virtual_speedup(trace, profile, cfg, target, pct)?;
    let base_makespan = simulate(cfg, &trace.tasks.tasks).makespan;
    let (attribution, critical) = perturbed_attribution(&p.tasks, &p.cfg);
    Ok(WhatifPrediction {
        target: target.to_string(),
        scale_pct: pct,
        workers: cfg.task_processes,
        base_makespan,
        predicted_makespan: attribution.makespan,
        base_critical: critical_path_of(&trace.tasks.tasks, cfg),
        critical,
        attribution,
    })
}

/// One point of a diminishing-returns curve.
#[derive(Clone, Copy, Debug)]
pub struct CurvePoint {
    /// Virtual speedup percentage.
    pub scale_pct: f64,
    /// Predicted makespan at that speedup (seconds).
    pub predicted_makespan: f64,
    /// Predicted saving over the unperturbed makespan (seconds).
    pub saved: f64,
}

/// Samples the diminishing-returns curve for `target` at [`CURVE_SCALES`].
pub fn diminishing_returns(
    trace: &PhaseTrace,
    profile: Option<&MatchProfile>,
    cfg: &SimConfig,
    target: &Target,
) -> Result<Vec<CurvePoint>, String> {
    let base = simulate(cfg, &trace.tasks.tasks).makespan;
    CURVE_SCALES
        .iter()
        .map(|&pct| {
            let p = apply_virtual_speedup(trace, profile, cfg, target, pct)?;
            let predicted = simulate(&p.cfg, &p.tasks.tasks).makespan;
            Ok(CurvePoint {
                scale_pct: pct,
                predicted_makespan: predicted,
                saved: base - predicted,
            })
        })
        .collect()
}

/// One ranked candidate of a [`WhatifReport`].
#[derive(Clone, Debug)]
pub struct Candidate {
    /// The target.
    pub target: Target,
    /// Prediction at the report's reference scale.
    pub prediction: WhatifPrediction,
    /// Diminishing-returns curve at [`CURVE_SCALES`].
    pub curve: Vec<CurvePoint>,
}

/// The ranked "optimize this next" report behind `spamctl whatif`.
#[derive(Clone, Debug)]
pub struct WhatifReport {
    /// Dataset name (e.g. `DC`).
    pub dataset: String,
    /// Phase / level label (e.g. `LCC Level 4`).
    pub level: String,
    /// Task-process count the predictions are simulated at.
    pub workers: u32,
    /// Reference virtual-speedup percentage candidates are ranked at.
    pub scale_pct: f64,
    /// Unperturbed makespan at `workers` (seconds).
    pub base_makespan: f64,
    /// Critical chain of the unperturbed workload.
    pub base_critical: CriticalPath,
    /// Candidates ranked by predicted saving at `scale_pct`, descending.
    pub candidates: Vec<Candidate>,
    /// TLP speedup curve of the unperturbed workload, 1..=`workers`.
    pub base_curve: Vec<SpeedupPoint>,
    /// TLP speedup curve of the top candidate's perturbed workload.
    pub best_curve: Vec<SpeedupPoint>,
}

/// Builds the candidate list for a ranked report: the whole-phase match
/// component, the `top` hottest productions by match cost (when a profile
/// is available), both actionable cost-model components, and the critical
/// task chain's task.
fn candidate_targets(
    trace: &PhaseTrace,
    profile: Option<&MatchProfile>,
    cfg: &SimConfig,
    top: usize,
) -> Vec<Target> {
    let mut targets = vec![Target::Match];
    if let Some(p) = profile {
        for (_, prod) in p.hot_productions(top) {
            if prod.match_units > 0 {
                targets.push(Target::Production(prod.name.clone()));
            }
        }
    }
    targets.push(Target::Component(GapComponent::Fork));
    targets.push(Target::Component(GapComponent::Dequeue));
    if !trace.tasks.is_empty() {
        targets.push(Target::Task(critical_path_of(&trace.tasks.tasks, cfg).task));
    }
    targets
}

/// Builds a ranked [`WhatifReport`]: evaluates every candidate at
/// `scale_pct`, samples its diminishing-returns curve, and sorts by
/// predicted saving. `top` bounds the productions considered (when a
/// profile is available).
pub fn build_whatif_report(
    dataset: impl Into<String>,
    level: impl Into<String>,
    trace: &PhaseTrace,
    profile: Option<&MatchProfile>,
    cfg: &SimConfig,
    scale_pct: f64,
    top: usize,
) -> Result<WhatifReport, String> {
    let targets = candidate_targets(trace, profile, cfg, top);
    build_report_for(dataset, level, trace, profile, cfg, scale_pct, &targets)
}

/// [`build_whatif_report`] over an explicit target list — the single-target
/// path of `spamctl whatif --target`.
pub fn build_report_for(
    dataset: impl Into<String>,
    level: impl Into<String>,
    trace: &PhaseTrace,
    profile: Option<&MatchProfile>,
    cfg: &SimConfig,
    scale_pct: f64,
    targets: &[Target],
) -> Result<WhatifReport, String> {
    let mut candidates = Vec::with_capacity(targets.len());
    for t in targets {
        candidates.push(Candidate {
            target: t.clone(),
            prediction: predict(trace, profile, cfg, t, scale_pct)?,
            curve: diminishing_returns(trace, profile, cfg, t)?,
        });
    }
    candidates.sort_by(|a, b| {
        b.prediction
            .saved()
            .total_cmp(&a.prediction.saved())
            .then_with(|| a.target.to_string().cmp(&b.target.to_string()))
    });

    let workers = cfg.task_processes;
    let base_curve = speedup_curve(
        |n| SimConfig {
            task_processes: n,
            ..*cfg
        },
        &trace.tasks,
        workers,
    );
    let best_curve = match candidates.first() {
        Some(c) => {
            let p = apply_virtual_speedup(trace, profile, cfg, &c.target, scale_pct)?;
            speedup_curve(
                |n| SimConfig {
                    task_processes: n,
                    ..p.cfg
                },
                &p.tasks,
                workers,
            )
        }
        None => Vec::new(),
    };
    Ok(WhatifReport {
        dataset: dataset.into(),
        level: level.into(),
        workers,
        scale_pct,
        base_makespan: simulate(cfg, &trace.tasks.tasks).makespan,
        base_critical: critical_path_of(&trace.tasks.tasks, cfg),
        candidates,
        base_curve,
        best_curve,
    })
}

impl WhatifReport {
    /// The machine-readable report (`spamctl whatif --json`,
    /// `bench_whatif`).
    pub fn to_json(&self) -> Json {
        let curve_json = |c: &[SpeedupPoint]| {
            Json::Arr(
                c.iter()
                    .map(|p| {
                        Json::obj(vec![
                            ("n", Json::Num(p.n as f64)),
                            ("speedup", Json::Num(p.speedup)),
                            ("utilization", Json::Num(p.utilization)),
                        ])
                    })
                    .collect(),
            )
        };
        let candidates: Vec<Json> = self
            .candidates
            .iter()
            .map(|c| {
                let pred = &c.prediction;
                let comps: Vec<Json> = pred
                    .attribution
                    .components()
                    .iter()
                    .map(|(name, v)| {
                        Json::obj(vec![("name", Json::str(*name)), ("seconds", Json::Num(*v))])
                    })
                    .collect();
                let curve: Vec<Json> = c
                    .curve
                    .iter()
                    .map(|p| {
                        Json::obj(vec![
                            ("scale_pct", Json::Num(p.scale_pct)),
                            ("predicted_makespan_s", Json::Num(p.predicted_makespan)),
                            ("saved_s", Json::Num(p.saved)),
                        ])
                    })
                    .collect();
                Json::obj(vec![
                    ("target", Json::str(pred.target.clone())),
                    ("predicted_makespan_s", Json::Num(pred.predicted_makespan)),
                    ("saved_s", Json::Num(pred.saved())),
                    ("saved_pct", Json::Num(pred.saved_pct())),
                    ("speedup", Json::Num(pred.speedup())),
                    (
                        "critical_path",
                        Json::obj(vec![
                            ("task", Json::Num(pred.critical.task as f64)),
                            ("length_s", Json::Num(pred.critical.length)),
                        ]),
                    ),
                    ("gap_components", Json::Arr(comps)),
                    ("curve", Json::Arr(curve)),
                ])
            })
            .collect();
        Json::obj(vec![
            ("dataset", Json::str(self.dataset.clone())),
            ("level", Json::str(self.level.clone())),
            ("workers", Json::Num(self.workers as f64)),
            ("scale_pct", Json::Num(self.scale_pct)),
            ("base_makespan_s", Json::Num(self.base_makespan)),
            (
                "base_critical_path",
                Json::obj(vec![
                    ("task", Json::Num(self.base_critical.task as f64)),
                    ("length_s", Json::Num(self.base_critical.length)),
                ]),
            ),
            ("candidates", Json::Arr(candidates)),
            ("base_curve", curve_json(&self.base_curve)),
            ("best_curve", curve_json(&self.best_curve)),
        ])
    }
}

impl fmt::Display for WhatifReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "causal what-if — {} {} ({} task processes, base makespan {:.1}s, \
             critical chain task {} @ {:.1}s)",
            self.dataset,
            self.level,
            self.workers,
            self.base_makespan,
            self.base_critical.task,
            self.base_critical.length,
        )?;
        writeln!(f)?;
        writeln!(
            f,
            "optimize this next (virtual speedup {:.0}%, ranked by predicted saving):",
            self.scale_pct
        )?;
        writeln!(
            f,
            "  {:<4} {:<28} {:>10} {:>8} {:>10} {:>9}  curve 10/25/50/75/100%",
            "rank", "target", "makespan", "speedup", "saved", "saved%"
        )?;
        for (i, c) in self.candidates.iter().enumerate() {
            let p = &c.prediction;
            let curve = c
                .curve
                .iter()
                .map(|pt| format!("{:.1}", pt.saved))
                .collect::<Vec<_>>()
                .join("/");
            writeln!(
                f,
                "  {:<4} {:<28} {:>9.1}s {:>7.2}x {:>9.1}s {:>8.1}%  {curve}",
                i + 1,
                p.target,
                p.predicted_makespan,
                p.speedup(),
                p.saved(),
                p.saved_pct(),
            )?;
        }
        if let Some(best) = self.candidates.first() {
            writeln!(f)?;
            writeln!(
                f,
                "top candidate {} — predicted critical chain task {} @ {:.1}s \
                 (was task {} @ {:.1}s)",
                best.prediction.target,
                best.prediction.critical.task,
                best.prediction.critical.length,
                self.base_critical.task,
                self.base_critical.length,
            )?;
            writeln!(f, "TLP speedup curve (n: base -> predicted):")?;
            for (b, p) in self.base_curve.iter().zip(self.best_curve.iter()) {
                writeln!(
                    f,
                    "  {:>3}: {:>5.2}x -> {:>5.2}x",
                    b.n, b.speedup, p.speedup
                )?;
            }
        }
        Ok(())
    }
}

/// One worker-count point of a predicted-vs-measured validation.
#[derive(Clone, Copy, Debug)]
pub struct ValidationPoint {
    /// Task-process count.
    pub workers: u32,
    /// Makespan predicted by the what-if replay (seconds).
    pub predicted: f64,
    /// Makespan measured from the real (optimized) trace (seconds).
    pub measured: f64,
}

impl ValidationPoint {
    /// Relative error of the prediction, `|pred − meas| / meas`.
    pub fn rel_err(&self) -> f64 {
        if self.measured <= 0.0 {
            return 0.0;
        }
        (self.predicted - self.measured).abs() / self.measured
    }
}

/// Validates the what-if chain against a *real* optimization: virtually
/// speeds up the match component of `before` (the unoptimized trace) by
/// `match_ratio` — the measured aggregate `after/before` match-work ratio —
/// and compares the predicted makespan with the `after` trace actually
/// measured, at each worker count. Used by `bench_whatif` with the PR 5
/// Rete-sharing win as ground truth.
pub fn validate_against_measured(
    before: &PhaseTrace,
    after: &PhaseTrace,
    match_ratio: f64,
    workers: &[u32],
) -> Result<Vec<ValidationPoint>, String> {
    if !(0.0..=1.0).contains(&match_ratio) || !match_ratio.is_finite() {
        return Err(format!("match ratio {match_ratio} out of [0, 1]"));
    }
    let pct = (1.0 - match_ratio) * 100.0;
    workers
        .iter()
        .map(|&w| {
            let cfg = SimConfig::encore(w);
            let pred = predict(before, None, &cfg, &Target::Match, pct)?;
            let measured = simulate(&cfg, &after.tasks.tasks).makespan;
            Ok(ValidationPoint {
                workers: w,
                predicted: pred.predicted_makespan,
                measured,
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use multimax_sim::Task;

    fn trace_of(tasks: Vec<Task>) -> PhaseTrace {
        PhaseTrace {
            tasks: TaskSet::new(tasks),
            cycle_log: vec![],
            firings: 0,
            rhs_actions: 0,
        }
    }

    fn demo_trace() -> PhaseTrace {
        trace_of(vec![
            Task::with_match(0, 10.0, 0.5),
            Task::with_match(1, 30.0, 0.4),
            Task::with_match(2, 5.0, 0.0),
        ])
    }

    #[test]
    fn target_parsing_round_trips() {
        for s in [
            "match",
            "prod:mh-alpha",
            "task:7",
            "level:3",
            "component:fork",
        ] {
            assert_eq!(Target::parse(s).unwrap().to_string(), s);
        }
        assert!(Target::parse("component:idle")
            .unwrap_err()
            .contains("not directly actionable"));
        assert!(Target::parse("level:9").is_err());
        assert!(Target::parse("prod:").is_err());
        assert!(Target::parse("bogus").is_err());
    }

    #[test]
    fn zero_scale_is_identity() {
        let trace = demo_trace();
        let cfg = SimConfig::encore(4);
        for t in [
            Target::Match,
            Target::Task(1),
            Target::Level(3),
            Target::Component(GapComponent::Fork),
        ] {
            let pred = predict(&trace, None, &cfg, &t, 0.0).unwrap();
            assert_eq!(pred.predicted_makespan, pred.base_makespan, "{t}");
            assert_eq!(pred.critical.length, pred.base_critical.length, "{t}");
        }
    }

    #[test]
    fn full_match_speedup_leaves_the_serial_rest() {
        let trace = demo_trace();
        let p = apply_virtual_speedup(&trace, None, &SimConfig::encore(1), &Target::Match, 100.0)
            .unwrap();
        // Amdahl floor: only the non-match components remain.
        let rest: f64 = trace
            .tasks
            .tasks
            .iter()
            .map(|t| t.service * (1.0 - t.match_fraction))
            .sum();
        assert!((p.tasks.total_service() - rest).abs() < 1e-9);
        assert!(p.tasks.tasks.iter().all(|t| t.match_fraction == 0.0));
    }

    #[test]
    fn task_target_scales_only_that_task() {
        let trace = demo_trace();
        let p = apply_virtual_speedup(&trace, None, &SimConfig::encore(1), &Target::Task(1), 50.0)
            .unwrap();
        assert_eq!(p.tasks.tasks[0].service, 10.0);
        assert!((p.tasks.tasks[1].service - 15.0).abs() < 1e-12);
        assert_eq!(p.tasks.tasks[2].service, 5.0);
        assert!(apply_virtual_speedup(
            &trace,
            None,
            &SimConfig::encore(1),
            &Target::Task(99),
            50.0
        )
        .is_err());
    }

    #[test]
    fn component_target_scales_the_cost_model() {
        let trace = demo_trace();
        let cfg = SimConfig::encore(4);
        let p = apply_virtual_speedup(
            &trace,
            None,
            &cfg,
            &Target::Component(GapComponent::Dequeue),
            100.0,
        )
        .unwrap();
        assert_eq!(p.cfg.dequeue_overhead, 0.0);
        assert_eq!(p.cfg.fork_overhead, cfg.fork_overhead);
        assert_eq!(p.tasks.tasks, trace.tasks.tasks);
    }

    #[test]
    fn production_target_needs_profile_and_uses_share() {
        let trace = demo_trace();
        let cfg = SimConfig::encore(1);
        let t = Target::Production("p0".into());
        assert!(apply_virtual_speedup(&trace, None, &cfg, &t, 50.0)
            .unwrap_err()
            .contains("profile"));
        let mut profile = MatchProfile::default();
        profile.productions.push(ops5::ProductionProfile {
            name: "p0".into(),
            match_units: 40,
            ..Default::default()
        });
        profile.work.match_units = 100;
        // 100% speedup on a production owning 40% of the match: each match
        // component scales by 0.6.
        let p = apply_virtual_speedup(&trace, Some(&profile), &cfg, &t, 100.0).unwrap();
        let expect: f64 = trace
            .tasks
            .tasks
            .iter()
            .map(|x| x.service * (1.0 - x.match_fraction) + x.service * x.match_fraction * 0.6)
            .sum();
        assert!((p.tasks.total_service() - expect).abs() < 1e-9);
        assert!(apply_virtual_speedup(
            &trace,
            Some(&profile),
            &cfg,
            &Target::Production("nope".into()),
            10.0
        )
        .is_err());
    }

    #[test]
    fn predictions_respect_the_critical_path_bound() {
        let trace = demo_trace();
        let cfg = SimConfig::encore(8);
        for pct in CURVE_SCALES {
            let pred = predict(&trace, None, &cfg, &Target::Match, pct).unwrap();
            assert!(
                pred.predicted_makespan >= pred.critical.length - 1e-9,
                "pct {pct}: {} < {}",
                pred.predicted_makespan,
                pred.critical.length
            );
        }
    }

    #[test]
    fn ranked_report_sorted_and_rendered() {
        let trace = demo_trace();
        let cfg = SimConfig::encore(4);
        let report =
            build_whatif_report("demo", "LCC Level 3", &trace, None, &cfg, 100.0, 5).unwrap();
        // match + fork + dequeue + critical task.
        assert_eq!(report.candidates.len(), 4);
        for w in report.candidates.windows(2) {
            assert!(w[0].prediction.saved() >= w[1].prediction.saved() - 1e-12);
        }
        // Task 1 (service 30 of 45 total) IS the makespan at 4 workers:
        // virtually eliminating it must outrank every other candidate.
        assert_eq!(report.candidates[0].prediction.target, "task:1");
        assert_eq!(report.base_curve.len(), 4);
        assert_eq!(report.best_curve.len(), 4);
        let text = report.to_string();
        assert!(text.contains("optimize this next"));
        assert!(text.contains("match"));
        let json = report.to_json().write();
        let parsed = Json::parse(&json).unwrap();
        assert_eq!(parsed.get("dataset").and_then(|d| d.as_str()), Some("demo"));
        assert_eq!(
            parsed
                .get("candidates")
                .and_then(|c| c.as_arr())
                .map(|c| c.len()),
            Some(4)
        );
    }

    #[test]
    fn validation_is_exact_on_one_worker_uniform_scaling() {
        // A synthetic "optimization" that scales every task's match
        // component by exactly 0.4: the aggregate-ratio replay must predict
        // the one-worker makespan to float precision, since uniform
        // scaling and aggregate scaling coincide.
        let before = demo_trace();
        let after = trace_of(
            before
                .tasks
                .tasks
                .iter()
                .map(|t| scale_match(t, 0.4))
                .collect(),
        );
        let points = validate_against_measured(&before, &after, 0.4, &[1, 4]).unwrap();
        assert!(
            points[0].rel_err() < 1e-9,
            "w=1 err {}",
            points[0].rel_err()
        );
        assert!(
            points[1].rel_err() < 1e-9,
            "w=4 err {}",
            points[1].rel_err()
        );
        assert!(validate_against_measured(&before, &after, 1.5, &[1]).is_err());
    }

    #[test]
    fn empty_trace_yields_zero_report() {
        let trace = trace_of(vec![]);
        let cfg = SimConfig::encore(2);
        let pred = predict(&trace, None, &cfg, &Target::Match, 50.0).unwrap();
        assert_eq!(pred.critical.length, 0.0);
        assert!(pred.predicted_makespan.is_finite());
        let report = build_whatif_report("x", "y", &trace, None, &cfg, 50.0, 3).unwrap();
        // No tasks: match + the two components, no task candidate.
        assert_eq!(report.candidates.len(), 3);
        assert_eq!(report.base_critical.length, 0.0);
    }
}
