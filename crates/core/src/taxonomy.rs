//! Table 4: the dimensions of task-level parallelism, as typed data.
//!
//! §3.2 characterises parallel rule-firing systems along three dimensions;
//! Table 4 classifies the prior systems and SPAM/PSM. The table is
//! qualitative, so reproducing it means reproducing the classification —
//! this module holds it as data, and the `table_4` bench binary prints it.

/// Synchronous vs asynchronous production firing.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Synchrony {
    /// A global resolve-phase barrier every cycle.
    Synchronous,
    /// Independent firing without cross-processor synchronisation.
    Asynchronous,
}

/// Implicit vs explicit detection of parallelism.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Detection {
    /// The system/compiler extracts parallelism from unannotated OPS5.
    Implicit,
    /// The decomposition is supplied explicitly.
    Explicit,
}

/// What is distributed across processors.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Distribution {
    /// Productions are partitioned (each partition has its own conflict set).
    Rules,
    /// Working-memory elements are partitioned; productions are replicated.
    WorkingMemory,
    /// No distribution: parallel firing is built into the control structure.
    None,
}

/// One row of Table 4.
#[derive(Clone, Copy, Debug)]
pub struct TaxonomyEntry {
    /// System name (authors where unnamed, as in the paper).
    pub system: &'static str,
    /// Firing model.
    pub synchrony: Synchrony,
    /// Parallelism detection.
    pub detection: Detection,
    /// Distribution choice.
    pub distribution: Distribution,
    /// True when the published results are simulations of mini production
    /// systems (the paper notes all but Soar and SPAM/PSM are).
    pub simulation_only: bool,
}

/// Table 4.
pub const TABLE_4: &[TaxonomyEntry] = &[
    TaxonomyEntry {
        system: "Ishida & Stolfo",
        synchrony: Synchrony::Synchronous,
        detection: Detection::Implicit,
        distribution: Distribution::Rules,
        simulation_only: true,
    },
    TaxonomyEntry {
        system: "Ishida",
        synchrony: Synchrony::Synchronous,
        detection: Detection::Implicit,
        distribution: Distribution::Rules,
        simulation_only: true,
    },
    TaxonomyEntry {
        system: "Oshisanwo & Dasiewicz",
        synchrony: Synchrony::Asynchronous,
        detection: Detection::Implicit,
        distribution: Distribution::Rules,
        simulation_only: true,
    },
    TaxonomyEntry {
        system: "Soar",
        synchrony: Synchrony::Synchronous,
        detection: Detection::Explicit,
        distribution: Distribution::None,
        simulation_only: false,
    },
    TaxonomyEntry {
        system: "SPAM/PSM",
        synchrony: Synchrony::Asynchronous,
        detection: Detection::Explicit,
        distribution: Distribution::WorkingMemory,
        simulation_only: false,
    },
];

/// The SPAM/PSM row (this reproduction's own position in the taxonomy).
pub fn spam_psm() -> &'static TaxonomyEntry {
    TABLE_4
        .iter()
        .find(|e| e.system == "SPAM/PSM")
        .expect("SPAM/PSM is in the table")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spam_psm_is_explicit_asynchronous_wme_distributed() {
        let e = spam_psm();
        assert_eq!(e.synchrony, Synchrony::Asynchronous);
        assert_eq!(e.detection, Detection::Explicit);
        assert_eq!(e.distribution, Distribution::WorkingMemory);
        assert!(!e.simulation_only);
    }

    #[test]
    fn only_soar_and_spam_psm_are_real_implementations() {
        let real: Vec<&str> = TABLE_4
            .iter()
            .filter(|e| !e.simulation_only)
            .map(|e| e.system)
            .collect();
        assert_eq!(real, vec!["Soar", "SPAM/PSM"]);
    }
}
