//! Speed-up attribution — the "speedup doctor" (§6.2, Table 9).
//!
//! The paper explains its sub-linear speed-ups by naming the overheads:
//! task-management time, the tail-end effect, and the serial match/RHS
//! fraction that Amdahl's law turns into a ceiling. This module makes that
//! explanation executable: given a measured phase trace, a match-level
//! profile (from the ops5 `profiler` feature) and simulated runs, it
//! decomposes the ideal-vs-measured speed-up gap into named components that
//! **sum exactly to the gap by construction**, predicts the combined
//! TLP × match speed-up from the profiler's measured match fraction, and
//! identifies the critical task chain bounding the makespan.
//!
//! The output is a [`ProfileReport`] — rendered as text by `spamctl
//! profile` and as JSON by `bench_profile`.

use crate::combined::{combined_cell, match_axis_speedup, CombinedCell};
use crate::trace::PhaseTrace;
use multimax_sim::{
    simulate, speedup_curve, ClusterConfig, Machine, PageStats, SimConfig, SimResult, SpeedupPoint,
    SvmSimResult, TaskSet,
};
use ops5::instrument::WorkCounters;
use ops5::MatchProfile;
use paraops5::costmodel::CostModel;
use spam::phases::MIPS;
use std::fmt;
use tlp_obs::json::Json;
use tlp_obs::stitch::{stitch, StitchReport};

/// Amdahl's law: overall speed-up when a `parallel_fraction` of the work is
/// sped up by `component_speedup` and the rest is untouched (§3.1: with the
/// match 30–50% of LCC run time, even an infinitely fast match caps the
/// match-parallel speed-up at 2×).
pub fn amdahl_speedup(parallel_fraction: f64, component_speedup: f64) -> f64 {
    assert!(
        (0.0..=1.0).contains(&parallel_fraction),
        "bad parallel fraction"
    );
    assert!(component_speedup >= 1.0, "bad component speedup");
    1.0 / ((1.0 - parallel_fraction) + parallel_fraction / component_speedup)
}

/// Where the ideal-vs-measured speed-up gap of one simulated run went.
///
/// All components are **processor-seconds**: with `n` workers over a
/// makespan `T`, the run had `n·T` processor-seconds of capacity; `busy` of
/// them executed tasks and the rest — the gap — is attributed here. The
/// five components sum to the gap *exactly* (idle is defined as the
/// remainder), so the decomposition can never silently lose time.
#[derive(Clone, Copy, Debug)]
pub struct GapAttribution {
    /// Worker (task-process) count.
    pub workers: u32,
    /// One-worker baseline makespan (seconds).
    pub base_makespan: f64,
    /// Measured makespan at `workers` (seconds).
    pub makespan: f64,
    /// Processor-seconds spent executing tasks.
    pub busy: f64,
    /// Processor-seconds spent forking / initialising task processes.
    pub fork: f64,
    /// Processor-seconds spent waiting on the task-queue lock.
    pub queue_wait: f64,
    /// Processor-seconds spent inside dequeue critical sections.
    pub dequeue: f64,
    /// Processor-seconds lost to worker deaths: fatal dispatches plus the
    /// control process's detection window (zero without fault injection).
    pub fault: f64,
    /// Remaining idle processor-seconds: load imbalance and the §6.2
    /// tail-end effect. Defined as the gap minus the other components, so
    /// the sum is exact.
    pub idle: f64,
}

impl GapAttribution {
    /// Attributes one simulated run. `base_makespan` is the one-worker
    /// baseline the speed-up is measured against.
    pub fn attribute(base_makespan: f64, result: &SimResult, workers: u32) -> GapAttribution {
        let busy: f64 = result.busy.iter().sum();
        let fork: f64 = result.fork_ready.iter().sum();
        let queue_wait: f64 = result
            .executions
            .iter()
            .map(|e| e.acquired - e.queued_at)
            .sum();
        let dequeue: f64 = result
            .executions
            .iter()
            .map(|e| e.started - e.acquired)
            .sum();
        // `+ 0.0` normalises the empty sum's -0.0 for display.
        let fault: f64 = result
            .deaths
            .iter()
            .map(|d| d.detected - d.acquired)
            .sum::<f64>()
            + 0.0;
        let capacity = workers as f64 * result.makespan;
        let idle = capacity - busy - fork - queue_wait - dequeue - fault;
        GapAttribution {
            workers,
            base_makespan,
            makespan: result.makespan,
            busy,
            fork,
            queue_wait,
            dequeue,
            fault,
            idle,
        }
    }

    /// Total processor-seconds of capacity, `workers × makespan`.
    pub fn capacity(&self) -> f64 {
        self.workers as f64 * self.makespan
    }

    /// The gap: capacity not spent executing tasks.
    pub fn gap(&self) -> f64 {
        self.capacity() - self.busy
    }

    /// The named components, in report order. Sums to [`Self::gap`]
    /// exactly (up to float rounding).
    pub fn components(&self) -> [(&'static str, f64); 5] {
        [
            ("fork", self.fork),
            ("queue-wait", self.queue_wait),
            ("dequeue", self.dequeue),
            ("fault", self.fault),
            ("idle/tail", self.idle),
        ]
    }

    /// Ideal speed-up: the worker count.
    pub fn ideal_speedup(&self) -> f64 {
        self.workers as f64
    }

    /// Measured speed-up over the one-worker baseline.
    pub fn measured_speedup(&self) -> f64 {
        if self.makespan <= 0.0 {
            return 0.0;
        }
        self.base_makespan / self.makespan
    }

    /// Parallel efficiency, measured / ideal.
    pub fn efficiency(&self) -> f64 {
        self.measured_speedup() / self.ideal_speedup()
    }
}

/// Where the cross-machine (SVM) gap of one two-machine run went — the
/// "overhead accountant" behind `spamctl svm-report` (§7: remote processors
/// cost "about 1.5 processors" of throughput).
///
/// Same contract as [`GapAttribution`], with the SVM traffic split out:
/// all components are processor-seconds against a capacity of
/// `workers × stitched_makespan`, and they sum to [`Self::gap`] **exactly**
/// because `idle` is defined as the remainder. `busy_net` is execution time
/// *net* of the charged SVM overhead (the simulator folds per-task fault
/// service into busy time; the accountant takes it back out so page traffic
/// cannot hide inside "useful work").
#[derive(Clone, Copy, Debug)]
pub struct SvmGapAttribution {
    /// Worker (task-process) count across both machines.
    pub workers: u32,
    /// Workers placed on the remote cluster.
    pub remote_workers: u32,
    /// One-worker pure-TLP baseline makespan (seconds).
    pub base_makespan: f64,
    /// True simulated makespan at `workers` (seconds).
    pub makespan: f64,
    /// Makespan an observer of the *stitched* two-machine trace measures
    /// (seconds): the home-clock end of run, or later if aligned remote
    /// events spill past it. Equals `makespan` when no trace was stitched.
    pub stitched_makespan: f64,
    /// Processor-seconds executing tasks, net of SVM fault service.
    pub busy_net: f64,
    /// Fork / task-process start-up, excluding SVM warmup.
    pub fork: f64,
    /// Waiting on the task-queue lock.
    pub queue_wait: f64,
    /// Inside dequeue critical sections.
    pub dequeue: f64,
    /// Worker deaths + detection windows (zero without fault injection).
    pub fault: f64,
    /// One-time SVM warmup paid by each remote worker at fork.
    pub warmup: f64,
    /// Request + directory-service share of remote page-fault service.
    pub page_wait: f64,
    /// Data-wire share of remote page-fault service.
    pub transfer: f64,
    /// What clock-domain stitching adds to the observed makespan beyond
    /// truth: `workers × (stitched_makespan − makespan)`. Zero when the
    /// home clock is the reference and alignment is clean.
    pub skew_residual: f64,
    /// Remaining idle processor-seconds (load imbalance, tail-end effect).
    /// Defined as the remainder, so the component sum is exact.
    pub idle: f64,
}

impl SvmGapAttribution {
    /// Attributes one two-machine run. `base_makespan` is the one-worker
    /// pure-TLP baseline; `stitched_makespan` is the makespan measured from
    /// the stitched trace (pass `None` when the recorder was off).
    pub fn attribute(
        base_makespan: f64,
        r: &SvmSimResult,
        stitched_makespan: Option<f64>,
    ) -> SvmGapAttribution {
        let sim = &r.sim;
        let workers = r.cfg.sim.task_processes;
        let busy: f64 = sim.busy.iter().sum();
        let page_wait = r.overheads.page_wait_s;
        let transfer = r.overheads.transfer_s;
        let busy_net = busy - page_wait - transfer;
        let warmup = r.overheads.warmup_s;
        let fork = sim.fork_ready.iter().sum::<f64>() - warmup;
        let queue_wait: f64 = sim
            .executions
            .iter()
            .map(|e| e.acquired - e.queued_at)
            .sum();
        let dequeue: f64 = sim.executions.iter().map(|e| e.started - e.acquired).sum();
        let fault: f64 = sim
            .deaths
            .iter()
            .map(|d| d.detected - d.acquired)
            .sum::<f64>()
            + 0.0;
        let stitched_makespan = stitched_makespan.unwrap_or(sim.makespan);
        let skew_residual = workers as f64 * (stitched_makespan - sim.makespan);
        let idle = workers as f64 * sim.makespan
            - busy_net
            - fork
            - queue_wait
            - dequeue
            - fault
            - warmup
            - page_wait
            - transfer;
        SvmGapAttribution {
            workers,
            remote_workers: r.remote_workers(),
            base_makespan,
            makespan: sim.makespan,
            stitched_makespan,
            busy_net,
            fork,
            queue_wait,
            dequeue,
            fault,
            warmup,
            page_wait,
            transfer,
            skew_residual,
            idle,
        }
    }

    /// Processor-seconds of capacity as the stitched-trace observer sees
    /// it: `workers × stitched_makespan`.
    pub fn capacity(&self) -> f64 {
        self.workers as f64 * self.stitched_makespan
    }

    /// The cross-machine gap: observed capacity not spent on net task
    /// execution.
    pub fn gap(&self) -> f64 {
        self.capacity() - self.busy_net
    }

    /// The named components, in report order. Sums to [`Self::gap`]
    /// exactly (up to float rounding).
    pub fn components(&self) -> [(&'static str, f64); 9] {
        [
            ("fork", self.fork),
            ("queue-wait", self.queue_wait),
            ("dequeue", self.dequeue),
            ("fault", self.fault),
            ("warmup", self.warmup),
            ("page-wait", self.page_wait),
            ("transfer", self.transfer),
            ("skew-residual", self.skew_residual),
            ("idle/tail", self.idle),
        ]
    }

    /// The SVM-specific components (warmup + page-wait + transfer +
    /// skew-residual) expressed as processors over the makespan — the part
    /// of the gap a one-machine run would not have paid. This is the
    /// accountant's decomposition of the headline processors-lost figure.
    pub fn svm_processors(&self) -> f64 {
        if self.makespan <= 0.0 {
            return 0.0;
        }
        (self.warmup + self.page_wait + self.transfer + self.skew_residual) / self.makespan
    }

    /// Ideal speed-up: the worker count.
    pub fn ideal_speedup(&self) -> f64 {
        self.workers as f64
    }

    /// Measured speed-up over the one-worker pure-TLP baseline.
    pub fn measured_speedup(&self) -> f64 {
        if self.makespan <= 0.0 {
            return 0.0;
        }
        self.base_makespan / self.makespan
    }

    /// Parallel efficiency, measured / ideal.
    pub fn efficiency(&self) -> f64 {
        self.measured_speedup() / self.ideal_speedup()
    }
}

/// Inverts a pure-TLP speed-up curve at `measured_speedup`: the fractional
/// processor count `n_eq` a *single* shared-memory machine would need to
/// match it, by piecewise-linear interpolation between curve points (below
/// the first point: through the origin; above the last: extrapolated along
/// the final segment).
pub fn equivalent_processors(measured_speedup: f64, pure_curve: &[SpeedupPoint]) -> f64 {
    assert!(!pure_curve.is_empty(), "empty speed-up curve");
    let s = measured_speedup;
    let first = &pure_curve[0];
    if s <= first.speedup {
        return if first.speedup > 0.0 {
            s / first.speedup * first.n as f64
        } else {
            0.0
        };
    }
    for w in pure_curve.windows(2) {
        let (a, b) = (&w[0], &w[1]);
        if s <= b.speedup {
            let ds = b.speedup - a.speedup;
            if ds <= f64::EPSILON {
                return a.n as f64;
            }
            return a.n as f64 + (s - a.speedup) / ds * (b.n - a.n) as f64;
        }
    }
    let last = &pure_curve[pure_curve.len() - 1];
    if pure_curve.len() >= 2 {
        let prev = &pure_curve[pure_curve.len() - 2];
        let slope = (last.speedup - prev.speedup) / (last.n - prev.n).max(1) as f64;
        if slope > f64::EPSILON {
            return last.n as f64 + (s - last.speedup) / slope;
        }
    }
    last.n as f64
}

/// The paper's translational cost (§7): how many of the `workers`
/// processors the SVM coupling effectively forfeits, measured against a
/// pure-TLP curve on one hypothetical large machine. ≈1.5 for the tuned
/// configuration.
pub fn effective_processors_lost(
    measured_speedup: f64,
    pure_curve: &[SpeedupPoint],
    workers: u32,
) -> f64 {
    workers as f64 - equivalent_processors(measured_speedup, pure_curve)
}

/// A pure-TLP reference configuration: the same overheads as `svm_sim`,
/// but all `n` workers on one (hypothetically large) local cluster — no
/// remote cluster, so no SVM costs. The denominator of the
/// effective-processors-lost comparison.
pub fn pure_tlp_config(svm_sim: &SimConfig, n: u32) -> SimConfig {
    SimConfig {
        machine: Machine {
            local: ClusterConfig {
                processors: n,
                reserved: 0,
            },
            remote: None,
        },
        task_processes: n,
        ..*svm_sim
    }
}

/// The full SVM accountant report behind `spamctl svm-report` and
/// `bench_svm`: gap decomposition, coherence traffic, clock-stitch fit, and
/// the headline effective-processors-lost figure. `Display` renders the
/// text report; [`SvmReport::to_json`] the machine-readable one.
#[derive(Clone, Debug)]
pub struct SvmReport {
    /// Dataset name (e.g. `DC`).
    pub dataset: String,
    /// Phase / level label (e.g. `LCC L3`).
    pub level: String,
    /// SVM cost-model name (`tuned` or `naive`).
    pub mode: String,
    /// The exact gap decomposition.
    pub attribution: SvmGapAttribution,
    /// Aggregate page-coherence counters.
    pub totals: PageStats,
    /// Hottest pages by fault count (page id, stats), most faults first.
    pub top_pages: Vec<(u64, PageStats)>,
    /// Clock-domain stitch fit, when the run recorded events.
    pub stitch: Option<StitchReport>,
    /// The pure-TLP reference curve at 1..=workers processors.
    pub pure_curve: Vec<SpeedupPoint>,
    /// Fractional pure-TLP processor count matching the measured speed-up.
    pub equivalent: f64,
    /// The headline: `workers − equivalent` (paper: ≈1.5).
    pub lost: f64,
}

/// Builds the [`SvmReport`] for one two-machine run: computes the pure-TLP
/// reference curve on the same task set, stitches the per-machine event
/// logs when present, and attributes the gap. `top` bounds the hot-page
/// table.
pub fn build_svm_report(
    dataset: impl Into<String>,
    level: impl Into<String>,
    mode: impl Into<String>,
    r: &SvmSimResult,
    tasks: &TaskSet,
    top: usize,
) -> SvmReport {
    let workers = r.cfg.sim.task_processes;
    let pure_curve = speedup_curve(|n| pure_tlp_config(&r.cfg.sim, n), tasks, workers.max(1));
    let base = simulate(&pure_tlp_config(&r.cfg.sim, 1), &tasks.tasks).makespan;

    let stitched = if r.home.events.is_empty() || r.remote.events.is_empty() {
        None
    } else {
        stitch(r.home.clone(), r.remote.clone()).ok()
    };
    let stitched_makespan = stitched.as_ref().map(|s| {
        let last_remote = s.remote.events.iter().map(|e| e.wall_us).max().unwrap_or(0);
        let home_end = r.cfg.home_clock.local_us(r.sim.makespan);
        home_end.max(last_remote) as f64 / 1e6
    });

    let attribution = SvmGapAttribution::attribute(base, r, stitched_makespan);
    let measured = attribution.measured_speedup();
    let equivalent = equivalent_processors(measured, &pure_curve);
    let mut top_pages: Vec<(u64, PageStats)> = r.pages.iter().map(|(&p, &s)| (p, s)).collect();
    top_pages.sort_by(|a, b| b.1.faults.cmp(&a.1.faults).then(a.0.cmp(&b.0)));
    top_pages.truncate(top);
    SvmReport {
        dataset: dataset.into(),
        level: level.into(),
        mode: mode.into(),
        attribution,
        totals: r.totals,
        top_pages,
        stitch: stitched.map(|s| s.report),
        pure_curve,
        equivalent,
        lost: workers as f64 - equivalent,
    }
}

impl SvmReport {
    /// The machine-readable report (written by `bench_svm` as
    /// `BENCH_svm.json` and by `spamctl svm-report --json`).
    pub fn to_json(&self) -> Json {
        let a = &self.attribution;
        let comps: Vec<Json> = a
            .components()
            .iter()
            .map(|(name, v)| {
                Json::obj(vec![("name", Json::str(*name)), ("seconds", Json::Num(*v))])
            })
            .collect();
        let pages: Vec<Json> = self
            .top_pages
            .iter()
            .map(|(p, s)| {
                Json::obj(vec![
                    ("page", Json::Num(*p as f64)),
                    ("faults", Json::Num(s.faults as f64)),
                    ("transfers", Json::Num(s.transfers as f64)),
                    ("bytes", Json::Num(s.bytes as f64)),
                    ("invalidations", Json::Num(s.invalidations as f64)),
                ])
            })
            .collect();
        let curve: Vec<Json> = self
            .pure_curve
            .iter()
            .map(|p| {
                Json::obj(vec![
                    ("n", Json::Num(p.n as f64)),
                    ("speedup", Json::Num(p.speedup)),
                    ("utilization", Json::Num(p.utilization)),
                    ("idle_s", Json::Num(p.idle)),
                ])
            })
            .collect();
        let mut fields = vec![
            ("dataset", Json::str(self.dataset.clone())),
            ("level", Json::str(self.level.clone())),
            ("svm_mode", Json::str(self.mode.clone())),
            ("workers", Json::Num(a.workers as f64)),
            ("remote_workers", Json::Num(a.remote_workers as f64)),
            ("base_makespan_s", Json::Num(a.base_makespan)),
            ("makespan_s", Json::Num(a.makespan)),
            ("stitched_makespan_s", Json::Num(a.stitched_makespan)),
            ("measured_speedup", Json::Num(a.measured_speedup())),
            ("ideal_speedup", Json::Num(a.ideal_speedup())),
            ("efficiency", Json::Num(a.efficiency())),
            ("equivalent_processors", Json::Num(self.equivalent)),
            ("effective_processors_lost", Json::Num(self.lost)),
            ("svm_processors", Json::Num(a.svm_processors())),
            ("busy_net_s", Json::Num(a.busy_net)),
            ("gap_s", Json::Num(a.gap())),
            ("components", Json::Arr(comps)),
            ("page_faults", Json::Num(self.totals.faults as f64)),
            ("page_transfers", Json::Num(self.totals.transfers as f64)),
            ("bytes_shipped", Json::Num(self.totals.bytes as f64)),
            ("invalidations", Json::Num(self.totals.invalidations as f64)),
            ("hot_pages", Json::Arr(pages)),
            ("pure_tlp_curve", Json::Arr(curve)),
        ];
        if let Some(s) = &self.stitch {
            fields.push((
                "stitch",
                Json::obj(vec![
                    ("pairs", Json::Num(s.pairs as f64)),
                    ("offset_us", Json::Num(s.offset_us)),
                    ("drift_ppm", Json::Num(s.drift_ppm)),
                    ("residual_us", Json::Num(s.residual_us)),
                    ("rms_residual_us", Json::Num(s.rms_residual_us)),
                    ("inversions", Json::Num(s.inversions as f64)),
                ]),
            ));
        }
        Json::obj(fields)
    }
}

impl fmt::Display for SvmReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let a = &self.attribution;
        writeln!(
            f,
            "svm accountant — {} {}, {} netmemory, {} task processes ({} local + {} remote)",
            self.dataset,
            self.level,
            self.mode,
            a.workers,
            a.workers - a.remote_workers,
            a.remote_workers,
        )?;
        writeln!(f)?;
        writeln!(
            f,
            "speed-up : base {:.2}s -> makespan {:.2}s = {:.2}x of ideal {:.0}x ({:.0}% efficient)",
            a.base_makespan,
            a.makespan,
            a.measured_speedup(),
            a.ideal_speedup(),
            a.efficiency() * 100.0,
        )?;
        writeln!(
            f,
            "headline : pure-TLP equivalent {:.2} processors -> effective processors lost {:.2} (paper: ~1.5)",
            self.equivalent, self.lost,
        )?;
        writeln!(f)?;
        writeln!(
            f,
            "gap decomposition ({:.2} proc-s over {} x {:.2}s observed capacity; sums exactly):",
            a.gap(),
            a.workers,
            a.stitched_makespan,
        )?;
        let cap = a.capacity();
        for (name, v) in a.components() {
            writeln!(
                f,
                "  {name:<14} {v:>10.2} proc-s  ({:>5.1}%)  = {:>5.2} processors",
                100.0 * v / cap,
                v / a.makespan,
            )?;
        }
        writeln!(
            f,
            "  svm-specific subtotal (warmup + page-wait + transfer + skew-residual): {:.2} processors",
            a.svm_processors(),
        )?;
        writeln!(f)?;
        writeln!(
            f,
            "coherence: {} faults, {} transfers ({:.2} MB shipped), {} invalidations",
            self.totals.faults,
            self.totals.transfers,
            self.totals.bytes as f64 / 1e6,
            self.totals.invalidations,
        )?;
        if !self.top_pages.is_empty() {
            writeln!(
                f,
                "  {:>8} {:>8} {:>10} {:>10} {:>14}",
                "page", "faults", "transfers", "bytes", "invalidations"
            )?;
            for (p, s) in &self.top_pages {
                writeln!(
                    f,
                    "  {p:>8} {:>8} {:>10} {:>10} {:>14}",
                    s.faults, s.transfers, s.bytes, s.invalidations
                )?;
            }
        }
        match &self.stitch {
            Some(s) => writeln!(
                f,
                "stitch   : {} exchanges, offset {:.1} us, drift {:.1} ppm, residual {:.1} us (rms {:.1}), {} inversions",
                s.pairs, s.offset_us, s.drift_ppm, s.residual_us, s.rms_residual_us, s.inversions,
            )?,
            None => writeln!(f, "stitch   : no event logs recorded (recorder off)")?,
        }
        Ok(())
    }
}

/// The critical task chain: in the asynchronous task-queue model every task
/// is independent, so the longest dependent path is fork → one dequeue →
/// the longest task. Its length lower-bounds the makespan of *any*
/// schedule on any number of processors.
#[derive(Clone, Copy, Debug)]
pub struct CriticalPath {
    /// The task on the chain (longest effective service time).
    pub task: u32,
    /// Chain length in seconds: fork + dequeue + the task's service time
    /// under the configuration's match speed-up.
    pub length: f64,
}

/// Computes the critical task chain for `trace` under `cfg` (the
/// `match_speedup` field scales each task's match component per Amdahl).
pub fn critical_path(trace: &PhaseTrace, cfg: &SimConfig) -> CriticalPath {
    critical_path_of(&trace.tasks.tasks, cfg)
}

/// [`critical_path`] over a bare task slice — the form the what-if engine
/// uses after perturbing a task set it no longer has a full trace for.
pub fn critical_path_of(tasks: &[multimax_sim::Task], cfg: &SimConfig) -> CriticalPath {
    let longest = tasks
        .iter()
        .map(|t| (t.id, t.service_with_match_speedup(cfg.match_speedup)))
        .max_by(|a, b| a.1.total_cmp(&b.1));
    match longest {
        Some((task, service)) => CriticalPath {
            task,
            length: cfg.fork_overhead + cfg.dequeue_overhead + service,
        },
        // No tasks: the empty schedule completes instantly, so the lower
        // bound is zero (charging fork overhead here would exceed the true
        // makespan of a zero-task phase).
        None => CriticalPath {
            task: 0,
            length: 0.0,
        },
    }
}

/// The `whatif` entry point into the attribution layer: simulates a
/// *perturbed* task set under `cfg` and re-runs both the gap decomposition
/// and the critical-chain bound on it. The caller (core::whatif) applies a
/// virtual speedup to a target first; this function answers how the
/// makespan, the five gap components, and the lower bound move in response.
pub fn perturbed_attribution(tasks: &TaskSet, cfg: &SimConfig) -> (GapAttribution, CriticalPath) {
    let base = simulate(
        &SimConfig {
            task_processes: 1,
            ..*cfg
        },
        &tasks.tasks,
    )
    .makespan;
    let result = simulate(cfg, &tasks.tasks);
    let gap = GapAttribution::attribute(base, &result, cfg.task_processes);
    (gap, critical_path_of(&tasks.tasks, cfg))
}

/// Predicted combined speed-up for `(Task n, Match m)` computed from an
/// **aggregate measured match fraction** (the profiler's, or Table 3's
/// 30–50% band) instead of the per-task annotations: the TLP axis comes
/// from the simulator, the match axis folds [`match_axis_speedup`] through
/// [`amdahl_speedup`] over that single fraction. Comparing this against
/// [`combined_cell`]'s `achieved` checks the paper's multiplicative-
/// speed-up claim using only profiler counters.
pub fn predicted_from_match_fraction(
    trace: &PhaseTrace,
    task_processes: u32,
    match_processes: u32,
    match_fraction: f64,
    model: &CostModel,
) -> f64 {
    let base = simulate(&SimConfig::encore(1), &trace.tasks.tasks).makespan;
    let tlp_only = base / simulate(&SimConfig::encore(task_processes), &trace.tasks.tasks).makespan;
    let match_component = match_axis_speedup(trace, match_processes, model);
    tlp_only * amdahl_speedup(match_fraction, match_component)
}

/// One Table 9 cell with the profiler-driven prediction alongside the
/// per-task one.
#[derive(Clone, Copy, Debug)]
pub struct SpeedupCheck {
    /// The cell: measured (`achieved`) and per-task-predicted speed-ups.
    pub cell: CombinedCell,
    /// Prediction from the profiler's aggregate match fraction.
    pub predicted_from_profile: f64,
}

impl SpeedupCheck {
    /// Relative error of the profiler-driven prediction against the
    /// measured speed-up.
    pub fn rel_err(&self) -> f64 {
        (self.predicted_from_profile - self.cell.achieved).abs() / self.cell.achieved
    }
}

/// One phase's Amdahl decomposition from its deterministic work counters.
#[derive(Clone, Debug)]
pub struct PhaseAmdahl {
    /// Phase label (e.g. `RTF`, `LCC L2`).
    pub phase: String,
    /// Measured match fraction of total work.
    pub match_fraction: f64,
    /// Serial (resolve + RHS + external) fraction of total work.
    pub serial_fraction: f64,
    /// Amdahl ceiling on match-parallel speed-up: total / serial work.
    pub amdahl_limit: f64,
    /// Total simulated seconds at the paper's 1.5 MIPS.
    pub total_seconds: f64,
}

impl PhaseAmdahl {
    /// Builds the row from a phase's accumulated [`WorkCounters`].
    pub fn from_work(phase: impl Into<String>, work: &WorkCounters) -> PhaseAmdahl {
        let total = work.total_units();
        let serial_fraction = if total == 0 {
            0.0
        } else {
            work.serial_units() as f64 / total as f64
        };
        PhaseAmdahl {
            phase: phase.into(),
            match_fraction: work.match_fraction(),
            serial_fraction,
            amdahl_limit: work.amdahl_limit(),
            total_seconds: work.seconds_at(MIPS),
        }
    }
}

/// The full speed-up-doctor report: profiler heat, per-phase Amdahl rows,
/// per-worker-count gap attributions, the critical chain, and the
/// predicted-vs-measured Table 9 checks. `Display` renders the text
/// report; [`ProfileReport::to_json`] the machine-readable one.
#[derive(Clone, Debug)]
pub struct ProfileReport {
    /// Dataset name (e.g. `DC`).
    pub dataset: String,
    /// Phase / level label (e.g. `LCC L2`).
    pub level: String,
    /// How many hot productions / alpha memories the text report shows.
    pub top: usize,
    /// The merged match-level profile.
    pub profile: MatchProfile,
    /// Per-phase Amdahl rows.
    pub phases: Vec<PhaseAmdahl>,
    /// Gap attribution at each requested worker count.
    pub attributions: Vec<GapAttribution>,
    /// The critical task chain at the largest worker count.
    pub critical: CriticalPath,
    /// Predicted-vs-measured combined-speed-up checks.
    pub checks: Vec<SpeedupCheck>,
}

/// Builds a [`ProfileReport`] from a measured trace and its match profile:
/// simulates the TLP runs at `workers`, attributes each gap, computes the
/// critical chain at the largest worker count, and evaluates every
/// `(task, match)` cell in `cells` both ways.
#[allow(clippy::too_many_arguments)]
pub fn build_report(
    dataset: impl Into<String>,
    level: impl Into<String>,
    profile: MatchProfile,
    trace: &PhaseTrace,
    workers: &[u32],
    cells: &[(u32, u32)],
    model: &CostModel,
    top: usize,
) -> ProfileReport {
    let level = level.into();
    let attributions = crate::tlp::attributed_tlp_curve(trace, workers);
    let max_workers = workers.iter().copied().max().unwrap_or(1);
    let critical = critical_path(trace, &SimConfig::encore(max_workers));
    let mf = profile.match_fraction();
    let checks = cells
        .iter()
        .map(|&(n, m)| SpeedupCheck {
            cell: combined_cell(trace, n, m, model),
            predicted_from_profile: predicted_from_match_fraction(trace, n, m, mf, model),
        })
        .collect();
    let phases = vec![PhaseAmdahl::from_work(level.clone(), &profile.work)];
    ProfileReport {
        dataset: dataset.into(),
        level,
        top,
        profile,
        phases,
        attributions,
        critical,
        checks,
    }
}

impl ProfileReport {
    /// Aggregate measured match fraction from the profiler counters.
    pub fn match_fraction(&self) -> f64 {
        self.profile.match_fraction()
    }

    /// The machine-readable report (written by `bench_profile` as
    /// `BENCH_profile.json` and by `spamctl profile --json`).
    pub fn to_json(&self) -> Json {
        let prods: Vec<Json> = self
            .profile
            .hot_productions(self.top)
            .into_iter()
            .map(|(_, p)| {
                Json::obj(vec![
                    ("name", Json::str(p.name.clone())),
                    ("match_units", Json::Num(p.match_units as f64)),
                    ("firings", Json::Num(p.firings as f64)),
                    ("activations", Json::Num(p.activations as f64)),
                    ("tokens", Json::Num(p.tokens as f64)),
                ])
            })
            .collect();
        let mems: Vec<Json> = self
            .profile
            .hot_alpha_mems(self.top)
            .into_iter()
            .map(|(_, m)| {
                Json::obj(vec![
                    ("label", Json::str(m.label.clone())),
                    ("match_units", Json::Num(m.match_units as f64)),
                    ("activations", Json::Num(m.activations as f64)),
                    ("peak_wmes", Json::Num(m.peak_wmes as f64)),
                ])
            })
            .collect();
        let phases: Vec<Json> = self
            .phases
            .iter()
            .map(|p| {
                Json::obj(vec![
                    ("phase", Json::str(p.phase.clone())),
                    ("match_fraction", Json::Num(p.match_fraction)),
                    ("serial_fraction", Json::Num(p.serial_fraction)),
                    ("amdahl_limit", Json::Num(p.amdahl_limit)),
                    ("total_seconds", Json::Num(p.total_seconds)),
                ])
            })
            .collect();
        let attributions: Vec<Json> = self
            .attributions
            .iter()
            .map(|a| {
                let comps: Vec<Json> = a
                    .components()
                    .iter()
                    .map(|(name, v)| {
                        Json::obj(vec![("name", Json::str(*name)), ("seconds", Json::Num(*v))])
                    })
                    .collect();
                Json::obj(vec![
                    ("workers", Json::Num(a.workers as f64)),
                    ("makespan_s", Json::Num(a.makespan)),
                    ("ideal_speedup", Json::Num(a.ideal_speedup())),
                    ("measured_speedup", Json::Num(a.measured_speedup())),
                    ("efficiency", Json::Num(a.efficiency())),
                    ("busy_s", Json::Num(a.busy)),
                    ("gap_s", Json::Num(a.gap())),
                    ("components", Json::Arr(comps)),
                ])
            })
            .collect();
        let checks: Vec<Json> = self
            .checks
            .iter()
            .map(|c| {
                Json::obj(vec![
                    ("task_processes", Json::Num(c.cell.task_processes as f64)),
                    ("match_processes", Json::Num(c.cell.match_processes as f64)),
                    ("processors", Json::Num(c.cell.processors as f64)),
                    ("measured", Json::Num(c.cell.achieved)),
                    ("predicted_per_task", Json::Num(c.cell.predicted)),
                    (
                        "predicted_from_profile",
                        Json::Num(c.predicted_from_profile),
                    ),
                    ("rel_err", Json::Num(c.rel_err())),
                ])
            })
            .collect();
        Json::obj(vec![
            ("dataset", Json::str(self.dataset.clone())),
            ("level", Json::str(self.level.clone())),
            ("match_fraction", Json::Num(self.match_fraction())),
            ("amdahl_limit", Json::Num(self.profile.work.amdahl_limit())),
            ("cycles", Json::Num(self.profile.cycles as f64)),
            (
                "tokens_created",
                Json::Num(self.profile.tokens_created as f64),
            ),
            (
                "tokens_deleted",
                Json::Num(self.profile.tokens_deleted as f64),
            ),
            (
                "mean_conflict_size",
                Json::Num(self.profile.mean_conflict_size()),
            ),
            (
                "max_conflict_size",
                Json::Num(self.profile.max_conflict_size() as f64),
            ),
            ("hot_productions", Json::Arr(prods)),
            ("hot_alpha_mems", Json::Arr(mems)),
            ("phases", Json::Arr(phases)),
            ("attributions", Json::Arr(attributions)),
            (
                "critical_path",
                Json::obj(vec![
                    ("task", Json::Num(self.critical.task as f64)),
                    ("length_s", Json::Num(self.critical.length)),
                ]),
            ),
            ("speedup_checks", Json::Arr(checks)),
        ])
    }
}

impl fmt::Display for ProfileReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "speedup doctor — {} {} (match fraction {:.1}%, Amdahl match limit {:.2}x)",
            self.dataset,
            self.level,
            self.match_fraction() * 100.0,
            self.profile.work.amdahl_limit(),
        )?;
        writeln!(f)?;

        writeln!(f, "hot productions (top {} by match cost):", self.top)?;
        writeln!(
            f,
            "  {:<44} {:>12} {:>8} {:>12} {:>8}",
            "production", "match units", "firings", "activations", "tokens"
        )?;
        for (_, p) in self.profile.hot_productions(self.top) {
            writeln!(
                f,
                "  {:<44} {:>12} {:>8} {:>12} {:>8}",
                p.name, p.match_units, p.firings, p.activations, p.tokens
            )?;
        }
        writeln!(f)?;

        writeln!(f, "hot alpha memories (top {}):", self.top)?;
        writeln!(
            f,
            "  {:<44} {:>12} {:>12} {:>10}",
            "memory", "match units", "activations", "peak WMEs"
        )?;
        for (_, m) in self.profile.hot_alpha_mems(self.top) {
            writeln!(
                f,
                "  {:<44} {:>12} {:>12} {:>10}",
                m.label, m.match_units, m.activations, m.peak_wmes
            )?;
        }
        writeln!(f)?;

        writeln!(
            f,
            "match statistics: {} cycles, {} tokens created / {} deleted, conflict set mean {:.1} max {}",
            self.profile.cycles,
            self.profile.tokens_created,
            self.profile.tokens_deleted,
            self.profile.mean_conflict_size(),
            self.profile.max_conflict_size(),
        )?;
        writeln!(f)?;

        writeln!(f, "per-phase Amdahl decomposition:")?;
        writeln!(
            f,
            "  {:<10} {:>8} {:>9} {:>13} {:>10}",
            "phase", "match%", "serial%", "amdahl limit", "seconds"
        )?;
        for p in &self.phases {
            writeln!(
                f,
                "  {:<10} {:>7.1}% {:>8.1}% {:>12.2}x {:>10.2}",
                p.phase,
                p.match_fraction * 100.0,
                p.serial_fraction * 100.0,
                p.amdahl_limit,
                p.total_seconds
            )?;
        }
        writeln!(f)?;

        writeln!(
            f,
            "speedup attribution (ideal vs measured, per worker count):"
        )?;
        for a in &self.attributions {
            writeln!(
                f,
                "  {} workers: measured {:.2}x of ideal {:.0}x ({:.0}% efficient), makespan {:.2}s",
                a.workers,
                a.measured_speedup(),
                a.ideal_speedup(),
                a.efficiency() * 100.0,
                a.makespan,
            )?;
            let cap = a.capacity();
            write!(f, "    gap {:.2} proc-s:", a.gap())?;
            for (name, v) in a.components() {
                write!(f, " {name} {:.2}s ({:.1}%);", v, 100.0 * v / cap)?;
            }
            writeln!(f)?;
        }
        writeln!(
            f,
            "  critical chain: task {} bounds the makespan at >= {:.2}s",
            self.critical.task, self.critical.length
        )?;
        writeln!(f)?;

        writeln!(f, "predicted vs measured combined speedup (Table 9):")?;
        writeln!(
            f,
            "  {:<18} {:>6} {:>10} {:>10} {:>12} {:>8}",
            "config", "procs", "measured", "per-task", "profiler", "rel err"
        )?;
        for c in &self.checks {
            writeln!(
                f,
                "  (Task{:>2}, Match{:>2}) {:>6} {:>9.2}x {:>9.2}x {:>11.2}x {:>7.1}%",
                c.cell.task_processes,
                c.cell.match_processes,
                c.cell.processors,
                c.cell.achieved,
                c.cell.predicted,
                c.predicted_from_profile,
                c.rel_err() * 100.0,
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::lcc_trace;
    use spam::lcc::{run_lcc_profiled, Level};
    use spam::rtf::run_rtf;
    use spam::rules::SpamProgram;
    use std::sync::Arc;

    fn setup() -> (PhaseTrace, Option<MatchProfile>) {
        let sp = SpamProgram::build();
        let scene = Arc::new(spam::generate_scene(&spam::datasets::dc().spec));
        let rtf = run_rtf(&sp, &scene);
        let frags = Arc::new(rtf.fragments);
        let (phase, profile) = run_lcc_profiled(&sp, &scene, &frags, Level::L2);
        (lcc_trace(&phase), profile)
    }

    #[test]
    fn amdahl_speedup_limits() {
        assert!((amdahl_speedup(0.0, 10.0) - 1.0).abs() < 1e-12);
        assert!((amdahl_speedup(0.5, 2.0) - 1.0 / 0.75).abs() < 1e-12);
        // 40% match, infinitely fast: capped at 1/0.6.
        assert!((amdahl_speedup(0.4, 1e12) - 1.0 / 0.6).abs() < 1e-6);
    }

    #[test]
    fn gap_components_sum_exactly() {
        let (trace, _) = setup();
        let base = simulate(&SimConfig::encore(1), &trace.tasks.tasks).makespan;
        for n in [2, 6, 12] {
            let r = simulate(&SimConfig::encore(n), &trace.tasks.tasks);
            let a = GapAttribution::attribute(base, &r, n);
            let sum: f64 = a.components().iter().map(|(_, v)| v).sum();
            assert!(
                (sum - a.gap()).abs() < 1e-9 * a.capacity().max(1.0),
                "components {sum} != gap {}",
                a.gap()
            );
            assert!(a.idle >= -1e-9, "negative idle remainder: {}", a.idle);
            assert!(a.measured_speedup() > 1.0 && a.measured_speedup() <= a.ideal_speedup());
        }
    }

    #[test]
    fn critical_path_bounds_makespan() {
        let (trace, _) = setup();
        for n in [1, 4, 14] {
            let cfg = SimConfig::encore(n);
            let cp = critical_path(&trace, &cfg);
            let r = simulate(&cfg, &trace.tasks.tasks);
            assert!(
                cp.length <= r.makespan + 1e-9,
                "critical path {:.3} > makespan {:.3} at n={n}",
                cp.length,
                r.makespan
            );
        }
    }

    #[test]
    fn zero_task_phase_yields_zero_critical_path_and_finite_gap() {
        // A level can legitimately decompose to zero tasks (nothing to
        // check at that granularity): every derived figure must be zero or
        // finite, never NaN, and the critical-path lower bound must be 0 —
        // the empty schedule completes instantly.
        let trace = PhaseTrace {
            tasks: TaskSet::new(vec![]),
            cycle_log: vec![],
            firings: 0,
            rhs_actions: 0,
        };
        for n in [1, 4] {
            let cfg = SimConfig::encore(n);
            let cp = critical_path(&trace, &cfg);
            assert_eq!(cp.length, 0.0);
            assert_eq!(cp.task, 0);
            let (gap, cp2) = perturbed_attribution(&trace.tasks, &cfg);
            assert_eq!(cp2.length, 0.0);
            assert!(gap.makespan.is_finite());
            assert!(gap.gap().is_finite());
            assert_eq!(gap.measured_speedup(), 0.0); // zero makespan guard
            for (name, v) in gap.components() {
                assert!(v.is_finite(), "{name} not finite");
            }
            assert!(cp.length <= gap.makespan + 1e-9);
        }
    }

    #[test]
    fn perturbed_attribution_matches_direct_computation() {
        let (trace, _) = setup();
        let cfg = SimConfig::encore(6);
        let (gap, cp) = perturbed_attribution(&trace.tasks, &cfg);
        let base = simulate(&SimConfig::encore(1), &trace.tasks.tasks).makespan;
        let direct = GapAttribution::attribute(base, &simulate(&cfg, &trace.tasks.tasks), 6);
        assert_eq!(gap.makespan, direct.makespan);
        assert_eq!(gap.base_makespan, direct.base_makespan);
        assert_eq!(cp.length, critical_path(&trace, &cfg).length);
    }

    #[test]
    fn equivalent_processors_inverts_the_curve() {
        let curve: Vec<SpeedupPoint> = [(1u32, 1.0f64), (2, 2.0), (3, 3.0), (4, 3.5)]
            .iter()
            .map(|&(n, speedup)| SpeedupPoint {
                n,
                speedup,
                utilization: 1.0,
                idle: 0.0,
            })
            .collect();
        assert!((equivalent_processors(2.5, &curve) - 2.5).abs() < 1e-12);
        assert!((equivalent_processors(1.0, &curve) - 1.0).abs() < 1e-12);
        // Below one processor: through the origin.
        assert!((equivalent_processors(0.5, &curve) - 0.5).abs() < 1e-12);
        // Above the last point: extrapolated along the final segment
        // (slope 0.5/processor), so 4.0x needs 5 equivalent processors.
        assert!((equivalent_processors(4.0, &curve) - 5.0).abs() < 1e-12);
        // Interpolation inside the flattening segment.
        assert!((equivalent_processors(3.25, &curve) - 3.5).abs() < 1e-12);
        assert!((effective_processors_lost(3.5, &curve, 4) - 0.0).abs() < 1e-12);
        assert!((effective_processors_lost(3.0, &curve, 4) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn tuned_svm_report_brackets_the_papers_loss() {
        use multimax_sim::{simulate_svm, ClockDomain, SvmSimConfig};
        // The paper's Figure 9 platform: SF at Level 3, 13 + 7 processes.
        let sp = SpamProgram::build();
        let scene = Arc::new(spam::generate_scene(&spam::datasets::sf().spec));
        let rtf = run_rtf(&sp, &scene);
        let frags = Arc::new(rtf.fragments);
        let lcc = spam::lcc::run_lcc(&sp, &scene, &frags, Level::L3);
        let trace = lcc_trace(&lcc);
        let mut cfg = SvmSimConfig::dual_encore(20);
        cfg.remote_clock = ClockDomain::new(-3_500, 80.0);
        cfg.level = tlp_obs::ObsLevel::Full;
        let r = simulate_svm(&cfg, &trace.tasks.tasks);
        let report = build_svm_report("SF", "LCC L3", "tuned", &r, &trace.tasks, 5);
        // The acceptance criterion: effective processors lost brackets the
        // paper's ≈1.5 figure.
        assert!(
            (1.0..=2.0).contains(&report.lost),
            "effective processors lost {:.3} (equivalent {:.3})",
            report.lost,
            report.equivalent
        );
        // The stitch succeeded and is causally clean under ±5 ms skew.
        let s = report.stitch.expect("stitched");
        assert_eq!(s.inversions, 0);
        assert!(s.pairs > 50, "pairs {}", s.pairs);
        // Text + JSON render and carry the headline.
        let text = report.to_string();
        assert!(text.contains("effective processors lost"), "{text}");
        assert!(text.contains("svm accountant"), "{text}");
        let json = report.to_json();
        assert!(json.get("effective_processors_lost").is_some());
        assert!(json.get("stitch").is_some());
    }

    #[test]
    fn report_builds_and_predictions_track_measured() {
        let (trace, profile) = setup();
        let Some(profile) = profile else {
            // profiler feature disabled: nothing to check.
            return;
        };
        let report = build_report(
            "DC",
            "LCC L2",
            profile,
            &trace,
            &[2, 6, 12],
            &[(2, 1), (4, 2)],
            &CostModel::default(),
            5,
        );
        // Profiler match fraction in the paper's Table 3 LCC band.
        let mf = report.match_fraction();
        assert!((0.3..=0.5).contains(&mf), "match fraction {mf:.3}");
        // The profiler-driven prediction tracks the measured combined
        // speed-up about as well as the per-task one (§6.4 tolerance).
        for c in &report.checks {
            assert!(
                c.rel_err() < 0.15,
                "(Task{}, Match{}): profiler-predicted {:.2} vs measured {:.2}",
                c.cell.task_processes,
                c.cell.match_processes,
                c.predicted_from_profile,
                c.cell.achieved
            );
        }
        // Text + JSON render without panicking and carry the headline data.
        let text = report.to_string();
        assert!(text.contains("speedup doctor"));
        assert!(text.contains("critical chain"));
        let json = report.to_json();
        assert_eq!(json.get("dataset").and_then(Json::as_str), Some("DC"));
        assert!(json
            .get("speedup_checks")
            .and_then(Json::as_arr)
            .is_some_and(|a| a.len() == 2));
    }
}
