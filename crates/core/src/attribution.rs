//! Speed-up attribution — the "speedup doctor" (§6.2, Table 9).
//!
//! The paper explains its sub-linear speed-ups by naming the overheads:
//! task-management time, the tail-end effect, and the serial match/RHS
//! fraction that Amdahl's law turns into a ceiling. This module makes that
//! explanation executable: given a measured phase trace, a match-level
//! profile (from the ops5 `profiler` feature) and simulated runs, it
//! decomposes the ideal-vs-measured speed-up gap into named components that
//! **sum exactly to the gap by construction**, predicts the combined
//! TLP × match speed-up from the profiler's measured match fraction, and
//! identifies the critical task chain bounding the makespan.
//!
//! The output is a [`ProfileReport`] — rendered as text by `spamctl
//! profile` and as JSON by `bench_profile`.

use crate::combined::{combined_cell, match_axis_speedup, CombinedCell};
use crate::trace::PhaseTrace;
use multimax_sim::{simulate, SimConfig, SimResult};
use ops5::instrument::WorkCounters;
use ops5::MatchProfile;
use paraops5::costmodel::CostModel;
use spam::phases::MIPS;
use std::fmt;
use tlp_obs::json::Json;

/// Amdahl's law: overall speed-up when a `parallel_fraction` of the work is
/// sped up by `component_speedup` and the rest is untouched (§3.1: with the
/// match 30–50% of LCC run time, even an infinitely fast match caps the
/// match-parallel speed-up at 2×).
pub fn amdahl_speedup(parallel_fraction: f64, component_speedup: f64) -> f64 {
    assert!(
        (0.0..=1.0).contains(&parallel_fraction),
        "bad parallel fraction"
    );
    assert!(component_speedup >= 1.0, "bad component speedup");
    1.0 / ((1.0 - parallel_fraction) + parallel_fraction / component_speedup)
}

/// Where the ideal-vs-measured speed-up gap of one simulated run went.
///
/// All components are **processor-seconds**: with `n` workers over a
/// makespan `T`, the run had `n·T` processor-seconds of capacity; `busy` of
/// them executed tasks and the rest — the gap — is attributed here. The
/// five components sum to the gap *exactly* (idle is defined as the
/// remainder), so the decomposition can never silently lose time.
#[derive(Clone, Copy, Debug)]
pub struct GapAttribution {
    /// Worker (task-process) count.
    pub workers: u32,
    /// One-worker baseline makespan (seconds).
    pub base_makespan: f64,
    /// Measured makespan at `workers` (seconds).
    pub makespan: f64,
    /// Processor-seconds spent executing tasks.
    pub busy: f64,
    /// Processor-seconds spent forking / initialising task processes.
    pub fork: f64,
    /// Processor-seconds spent waiting on the task-queue lock.
    pub queue_wait: f64,
    /// Processor-seconds spent inside dequeue critical sections.
    pub dequeue: f64,
    /// Processor-seconds lost to worker deaths: fatal dispatches plus the
    /// control process's detection window (zero without fault injection).
    pub fault: f64,
    /// Remaining idle processor-seconds: load imbalance and the §6.2
    /// tail-end effect. Defined as the gap minus the other components, so
    /// the sum is exact.
    pub idle: f64,
}

impl GapAttribution {
    /// Attributes one simulated run. `base_makespan` is the one-worker
    /// baseline the speed-up is measured against.
    pub fn attribute(base_makespan: f64, result: &SimResult, workers: u32) -> GapAttribution {
        let busy: f64 = result.busy.iter().sum();
        let fork: f64 = result.fork_ready.iter().sum();
        let queue_wait: f64 = result
            .executions
            .iter()
            .map(|e| e.acquired - e.queued_at)
            .sum();
        let dequeue: f64 = result
            .executions
            .iter()
            .map(|e| e.started - e.acquired)
            .sum();
        // `+ 0.0` normalises the empty sum's -0.0 for display.
        let fault: f64 = result
            .deaths
            .iter()
            .map(|d| d.detected - d.acquired)
            .sum::<f64>()
            + 0.0;
        let capacity = workers as f64 * result.makespan;
        let idle = capacity - busy - fork - queue_wait - dequeue - fault;
        GapAttribution {
            workers,
            base_makespan,
            makespan: result.makespan,
            busy,
            fork,
            queue_wait,
            dequeue,
            fault,
            idle,
        }
    }

    /// Total processor-seconds of capacity, `workers × makespan`.
    pub fn capacity(&self) -> f64 {
        self.workers as f64 * self.makespan
    }

    /// The gap: capacity not spent executing tasks.
    pub fn gap(&self) -> f64 {
        self.capacity() - self.busy
    }

    /// The named components, in report order. Sums to [`Self::gap`]
    /// exactly (up to float rounding).
    pub fn components(&self) -> [(&'static str, f64); 5] {
        [
            ("fork", self.fork),
            ("queue-wait", self.queue_wait),
            ("dequeue", self.dequeue),
            ("fault", self.fault),
            ("idle/tail", self.idle),
        ]
    }

    /// Ideal speed-up: the worker count.
    pub fn ideal_speedup(&self) -> f64 {
        self.workers as f64
    }

    /// Measured speed-up over the one-worker baseline.
    pub fn measured_speedup(&self) -> f64 {
        if self.makespan <= 0.0 {
            return 0.0;
        }
        self.base_makespan / self.makespan
    }

    /// Parallel efficiency, measured / ideal.
    pub fn efficiency(&self) -> f64 {
        self.measured_speedup() / self.ideal_speedup()
    }
}

/// The critical task chain: in the asynchronous task-queue model every task
/// is independent, so the longest dependent path is fork → one dequeue →
/// the longest task. Its length lower-bounds the makespan of *any*
/// schedule on any number of processors.
#[derive(Clone, Copy, Debug)]
pub struct CriticalPath {
    /// The task on the chain (longest effective service time).
    pub task: u32,
    /// Chain length in seconds: fork + dequeue + the task's service time
    /// under the configuration's match speed-up.
    pub length: f64,
}

/// Computes the critical task chain for `trace` under `cfg` (the
/// `match_speedup` field scales each task's match component per Amdahl).
pub fn critical_path(trace: &PhaseTrace, cfg: &SimConfig) -> CriticalPath {
    let longest = trace
        .tasks
        .tasks
        .iter()
        .map(|t| (t.id, t.service_with_match_speedup(cfg.match_speedup)))
        .max_by(|a, b| a.1.total_cmp(&b.1));
    match longest {
        Some((task, service)) => CriticalPath {
            task,
            length: cfg.fork_overhead + cfg.dequeue_overhead + service,
        },
        None => CriticalPath {
            task: 0,
            length: cfg.fork_overhead,
        },
    }
}

/// Predicted combined speed-up for `(Task n, Match m)` computed from an
/// **aggregate measured match fraction** (the profiler's, or Table 3's
/// 30–50% band) instead of the per-task annotations: the TLP axis comes
/// from the simulator, the match axis folds [`match_axis_speedup`] through
/// [`amdahl_speedup`] over that single fraction. Comparing this against
/// [`combined_cell`]'s `achieved` checks the paper's multiplicative-
/// speed-up claim using only profiler counters.
pub fn predicted_from_match_fraction(
    trace: &PhaseTrace,
    task_processes: u32,
    match_processes: u32,
    match_fraction: f64,
    model: &CostModel,
) -> f64 {
    let base = simulate(&SimConfig::encore(1), &trace.tasks.tasks).makespan;
    let tlp_only = base / simulate(&SimConfig::encore(task_processes), &trace.tasks.tasks).makespan;
    let match_component = match_axis_speedup(trace, match_processes, model);
    tlp_only * amdahl_speedup(match_fraction, match_component)
}

/// One Table 9 cell with the profiler-driven prediction alongside the
/// per-task one.
#[derive(Clone, Copy, Debug)]
pub struct SpeedupCheck {
    /// The cell: measured (`achieved`) and per-task-predicted speed-ups.
    pub cell: CombinedCell,
    /// Prediction from the profiler's aggregate match fraction.
    pub predicted_from_profile: f64,
}

impl SpeedupCheck {
    /// Relative error of the profiler-driven prediction against the
    /// measured speed-up.
    pub fn rel_err(&self) -> f64 {
        (self.predicted_from_profile - self.cell.achieved).abs() / self.cell.achieved
    }
}

/// One phase's Amdahl decomposition from its deterministic work counters.
#[derive(Clone, Debug)]
pub struct PhaseAmdahl {
    /// Phase label (e.g. `RTF`, `LCC L2`).
    pub phase: String,
    /// Measured match fraction of total work.
    pub match_fraction: f64,
    /// Serial (resolve + RHS + external) fraction of total work.
    pub serial_fraction: f64,
    /// Amdahl ceiling on match-parallel speed-up: total / serial work.
    pub amdahl_limit: f64,
    /// Total simulated seconds at the paper's 1.5 MIPS.
    pub total_seconds: f64,
}

impl PhaseAmdahl {
    /// Builds the row from a phase's accumulated [`WorkCounters`].
    pub fn from_work(phase: impl Into<String>, work: &WorkCounters) -> PhaseAmdahl {
        let total = work.total_units();
        let serial_fraction = if total == 0 {
            0.0
        } else {
            work.serial_units() as f64 / total as f64
        };
        PhaseAmdahl {
            phase: phase.into(),
            match_fraction: work.match_fraction(),
            serial_fraction,
            amdahl_limit: work.amdahl_limit(),
            total_seconds: work.seconds_at(MIPS),
        }
    }
}

/// The full speed-up-doctor report: profiler heat, per-phase Amdahl rows,
/// per-worker-count gap attributions, the critical chain, and the
/// predicted-vs-measured Table 9 checks. `Display` renders the text
/// report; [`ProfileReport::to_json`] the machine-readable one.
#[derive(Clone, Debug)]
pub struct ProfileReport {
    /// Dataset name (e.g. `DC`).
    pub dataset: String,
    /// Phase / level label (e.g. `LCC L2`).
    pub level: String,
    /// How many hot productions / alpha memories the text report shows.
    pub top: usize,
    /// The merged match-level profile.
    pub profile: MatchProfile,
    /// Per-phase Amdahl rows.
    pub phases: Vec<PhaseAmdahl>,
    /// Gap attribution at each requested worker count.
    pub attributions: Vec<GapAttribution>,
    /// The critical task chain at the largest worker count.
    pub critical: CriticalPath,
    /// Predicted-vs-measured combined-speed-up checks.
    pub checks: Vec<SpeedupCheck>,
}

/// Builds a [`ProfileReport`] from a measured trace and its match profile:
/// simulates the TLP runs at `workers`, attributes each gap, computes the
/// critical chain at the largest worker count, and evaluates every
/// `(task, match)` cell in `cells` both ways.
#[allow(clippy::too_many_arguments)]
pub fn build_report(
    dataset: impl Into<String>,
    level: impl Into<String>,
    profile: MatchProfile,
    trace: &PhaseTrace,
    workers: &[u32],
    cells: &[(u32, u32)],
    model: &CostModel,
    top: usize,
) -> ProfileReport {
    let level = level.into();
    let attributions = crate::tlp::attributed_tlp_curve(trace, workers);
    let max_workers = workers.iter().copied().max().unwrap_or(1);
    let critical = critical_path(trace, &SimConfig::encore(max_workers));
    let mf = profile.match_fraction();
    let checks = cells
        .iter()
        .map(|&(n, m)| SpeedupCheck {
            cell: combined_cell(trace, n, m, model),
            predicted_from_profile: predicted_from_match_fraction(trace, n, m, mf, model),
        })
        .collect();
    let phases = vec![PhaseAmdahl::from_work(level.clone(), &profile.work)];
    ProfileReport {
        dataset: dataset.into(),
        level,
        top,
        profile,
        phases,
        attributions,
        critical,
        checks,
    }
}

impl ProfileReport {
    /// Aggregate measured match fraction from the profiler counters.
    pub fn match_fraction(&self) -> f64 {
        self.profile.match_fraction()
    }

    /// The machine-readable report (written by `bench_profile` as
    /// `BENCH_profile.json` and by `spamctl profile --json`).
    pub fn to_json(&self) -> Json {
        let prods: Vec<Json> = self
            .profile
            .hot_productions(self.top)
            .into_iter()
            .map(|(_, p)| {
                Json::obj(vec![
                    ("name", Json::str(p.name.clone())),
                    ("match_units", Json::Num(p.match_units as f64)),
                    ("firings", Json::Num(p.firings as f64)),
                    ("activations", Json::Num(p.activations as f64)),
                    ("tokens", Json::Num(p.tokens as f64)),
                ])
            })
            .collect();
        let mems: Vec<Json> = self
            .profile
            .hot_alpha_mems(self.top)
            .into_iter()
            .map(|(_, m)| {
                Json::obj(vec![
                    ("label", Json::str(m.label.clone())),
                    ("match_units", Json::Num(m.match_units as f64)),
                    ("activations", Json::Num(m.activations as f64)),
                    ("peak_wmes", Json::Num(m.peak_wmes as f64)),
                ])
            })
            .collect();
        let phases: Vec<Json> = self
            .phases
            .iter()
            .map(|p| {
                Json::obj(vec![
                    ("phase", Json::str(p.phase.clone())),
                    ("match_fraction", Json::Num(p.match_fraction)),
                    ("serial_fraction", Json::Num(p.serial_fraction)),
                    ("amdahl_limit", Json::Num(p.amdahl_limit)),
                    ("total_seconds", Json::Num(p.total_seconds)),
                ])
            })
            .collect();
        let attributions: Vec<Json> = self
            .attributions
            .iter()
            .map(|a| {
                let comps: Vec<Json> = a
                    .components()
                    .iter()
                    .map(|(name, v)| {
                        Json::obj(vec![("name", Json::str(*name)), ("seconds", Json::Num(*v))])
                    })
                    .collect();
                Json::obj(vec![
                    ("workers", Json::Num(a.workers as f64)),
                    ("makespan_s", Json::Num(a.makespan)),
                    ("ideal_speedup", Json::Num(a.ideal_speedup())),
                    ("measured_speedup", Json::Num(a.measured_speedup())),
                    ("efficiency", Json::Num(a.efficiency())),
                    ("busy_s", Json::Num(a.busy)),
                    ("gap_s", Json::Num(a.gap())),
                    ("components", Json::Arr(comps)),
                ])
            })
            .collect();
        let checks: Vec<Json> = self
            .checks
            .iter()
            .map(|c| {
                Json::obj(vec![
                    ("task_processes", Json::Num(c.cell.task_processes as f64)),
                    ("match_processes", Json::Num(c.cell.match_processes as f64)),
                    ("processors", Json::Num(c.cell.processors as f64)),
                    ("measured", Json::Num(c.cell.achieved)),
                    ("predicted_per_task", Json::Num(c.cell.predicted)),
                    (
                        "predicted_from_profile",
                        Json::Num(c.predicted_from_profile),
                    ),
                    ("rel_err", Json::Num(c.rel_err())),
                ])
            })
            .collect();
        Json::obj(vec![
            ("dataset", Json::str(self.dataset.clone())),
            ("level", Json::str(self.level.clone())),
            ("match_fraction", Json::Num(self.match_fraction())),
            ("amdahl_limit", Json::Num(self.profile.work.amdahl_limit())),
            ("cycles", Json::Num(self.profile.cycles as f64)),
            (
                "tokens_created",
                Json::Num(self.profile.tokens_created as f64),
            ),
            (
                "tokens_deleted",
                Json::Num(self.profile.tokens_deleted as f64),
            ),
            (
                "mean_conflict_size",
                Json::Num(self.profile.mean_conflict_size()),
            ),
            (
                "max_conflict_size",
                Json::Num(self.profile.max_conflict_size() as f64),
            ),
            ("hot_productions", Json::Arr(prods)),
            ("hot_alpha_mems", Json::Arr(mems)),
            ("phases", Json::Arr(phases)),
            ("attributions", Json::Arr(attributions)),
            (
                "critical_path",
                Json::obj(vec![
                    ("task", Json::Num(self.critical.task as f64)),
                    ("length_s", Json::Num(self.critical.length)),
                ]),
            ),
            ("speedup_checks", Json::Arr(checks)),
        ])
    }
}

impl fmt::Display for ProfileReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "speedup doctor — {} {} (match fraction {:.1}%, Amdahl match limit {:.2}x)",
            self.dataset,
            self.level,
            self.match_fraction() * 100.0,
            self.profile.work.amdahl_limit(),
        )?;
        writeln!(f)?;

        writeln!(f, "hot productions (top {} by match cost):", self.top)?;
        writeln!(
            f,
            "  {:<44} {:>12} {:>8} {:>12} {:>8}",
            "production", "match units", "firings", "activations", "tokens"
        )?;
        for (_, p) in self.profile.hot_productions(self.top) {
            writeln!(
                f,
                "  {:<44} {:>12} {:>8} {:>12} {:>8}",
                p.name, p.match_units, p.firings, p.activations, p.tokens
            )?;
        }
        writeln!(f)?;

        writeln!(f, "hot alpha memories (top {}):", self.top)?;
        writeln!(
            f,
            "  {:<44} {:>12} {:>12} {:>10}",
            "memory", "match units", "activations", "peak WMEs"
        )?;
        for (_, m) in self.profile.hot_alpha_mems(self.top) {
            writeln!(
                f,
                "  {:<44} {:>12} {:>12} {:>10}",
                m.label, m.match_units, m.activations, m.peak_wmes
            )?;
        }
        writeln!(f)?;

        writeln!(
            f,
            "match statistics: {} cycles, {} tokens created / {} deleted, conflict set mean {:.1} max {}",
            self.profile.cycles,
            self.profile.tokens_created,
            self.profile.tokens_deleted,
            self.profile.mean_conflict_size(),
            self.profile.max_conflict_size(),
        )?;
        writeln!(f)?;

        writeln!(f, "per-phase Amdahl decomposition:")?;
        writeln!(
            f,
            "  {:<10} {:>8} {:>9} {:>13} {:>10}",
            "phase", "match%", "serial%", "amdahl limit", "seconds"
        )?;
        for p in &self.phases {
            writeln!(
                f,
                "  {:<10} {:>7.1}% {:>8.1}% {:>12.2}x {:>10.2}",
                p.phase,
                p.match_fraction * 100.0,
                p.serial_fraction * 100.0,
                p.amdahl_limit,
                p.total_seconds
            )?;
        }
        writeln!(f)?;

        writeln!(
            f,
            "speedup attribution (ideal vs measured, per worker count):"
        )?;
        for a in &self.attributions {
            writeln!(
                f,
                "  {} workers: measured {:.2}x of ideal {:.0}x ({:.0}% efficient), makespan {:.2}s",
                a.workers,
                a.measured_speedup(),
                a.ideal_speedup(),
                a.efficiency() * 100.0,
                a.makespan,
            )?;
            let cap = a.capacity();
            write!(f, "    gap {:.2} proc-s:", a.gap())?;
            for (name, v) in a.components() {
                write!(f, " {name} {:.2}s ({:.1}%);", v, 100.0 * v / cap)?;
            }
            writeln!(f)?;
        }
        writeln!(
            f,
            "  critical chain: task {} bounds the makespan at >= {:.2}s",
            self.critical.task, self.critical.length
        )?;
        writeln!(f)?;

        writeln!(f, "predicted vs measured combined speedup (Table 9):")?;
        writeln!(
            f,
            "  {:<18} {:>6} {:>10} {:>10} {:>12} {:>8}",
            "config", "procs", "measured", "per-task", "profiler", "rel err"
        )?;
        for c in &self.checks {
            writeln!(
                f,
                "  (Task{:>2}, Match{:>2}) {:>6} {:>9.2}x {:>9.2}x {:>11.2}x {:>7.1}%",
                c.cell.task_processes,
                c.cell.match_processes,
                c.cell.processors,
                c.cell.achieved,
                c.cell.predicted,
                c.predicted_from_profile,
                c.rel_err() * 100.0,
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::lcc_trace;
    use spam::lcc::{run_lcc_profiled, Level};
    use spam::rtf::run_rtf;
    use spam::rules::SpamProgram;
    use std::sync::Arc;

    fn setup() -> (PhaseTrace, Option<MatchProfile>) {
        let sp = SpamProgram::build();
        let scene = Arc::new(spam::generate_scene(&spam::datasets::dc().spec));
        let rtf = run_rtf(&sp, &scene);
        let frags = Arc::new(rtf.fragments);
        let (phase, profile) = run_lcc_profiled(&sp, &scene, &frags, Level::L2);
        (lcc_trace(&phase), profile)
    }

    #[test]
    fn amdahl_speedup_limits() {
        assert!((amdahl_speedup(0.0, 10.0) - 1.0).abs() < 1e-12);
        assert!((amdahl_speedup(0.5, 2.0) - 1.0 / 0.75).abs() < 1e-12);
        // 40% match, infinitely fast: capped at 1/0.6.
        assert!((amdahl_speedup(0.4, 1e12) - 1.0 / 0.6).abs() < 1e-6);
    }

    #[test]
    fn gap_components_sum_exactly() {
        let (trace, _) = setup();
        let base = simulate(&SimConfig::encore(1), &trace.tasks.tasks).makespan;
        for n in [2, 6, 12] {
            let r = simulate(&SimConfig::encore(n), &trace.tasks.tasks);
            let a = GapAttribution::attribute(base, &r, n);
            let sum: f64 = a.components().iter().map(|(_, v)| v).sum();
            assert!(
                (sum - a.gap()).abs() < 1e-9 * a.capacity().max(1.0),
                "components {sum} != gap {}",
                a.gap()
            );
            assert!(a.idle >= -1e-9, "negative idle remainder: {}", a.idle);
            assert!(a.measured_speedup() > 1.0 && a.measured_speedup() <= a.ideal_speedup());
        }
    }

    #[test]
    fn critical_path_bounds_makespan() {
        let (trace, _) = setup();
        for n in [1, 4, 14] {
            let cfg = SimConfig::encore(n);
            let cp = critical_path(&trace, &cfg);
            let r = simulate(&cfg, &trace.tasks.tasks);
            assert!(
                cp.length <= r.makespan + 1e-9,
                "critical path {:.3} > makespan {:.3} at n={n}",
                cp.length,
                r.makespan
            );
        }
    }

    #[test]
    fn report_builds_and_predictions_track_measured() {
        let (trace, profile) = setup();
        let Some(profile) = profile else {
            // profiler feature disabled: nothing to check.
            return;
        };
        let report = build_report(
            "DC",
            "LCC L2",
            profile,
            &trace,
            &[2, 6, 12],
            &[(2, 1), (4, 2)],
            &CostModel::default(),
            5,
        );
        // Profiler match fraction in the paper's Table 3 LCC band.
        let mf = report.match_fraction();
        assert!((0.3..=0.5).contains(&mf), "match fraction {mf:.3}");
        // The profiler-driven prediction tracks the measured combined
        // speed-up about as well as the per-task one (§6.4 tolerance).
        for c in &report.checks {
            assert!(
                c.rel_err() < 0.15,
                "(Task{}, Match{}): profiler-predicted {:.2} vs measured {:.2}",
                c.cell.task_processes,
                c.cell.match_processes,
                c.predicted_from_profile,
                c.cell.achieved
            );
        }
        // Text + JSON render without panicking and carry the headline data.
        let text = report.to_string();
        assert!(text.contains("speedup doctor"));
        assert!(text.contains("critical chain"));
        let json = report.to_json();
        assert_eq!(json.get("dataset").and_then(Json::as_str), Some("DC"));
        assert!(json
            .get("speedup_checks")
            .and_then(Json::as_arr)
            .is_some_and(|a| a.len() == 2));
    }
}
