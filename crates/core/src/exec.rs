//! The real work-stealing task executor — "Multimax on real cores".
//!
//! Every TLP number the repo reports elsewhere comes from the Multimax
//! cost-model simulator ([`multimax_sim`]): simulated seconds on a
//! simulated Encore. This module runs the same task set on *real* worker
//! threads and measures wall-clock nanoseconds, so the paper's central
//! claim — near-linear task-level speed-up for hundreds of independent
//! OPS5 engines — can be checked against hardware, not just the model.
//!
//! # Scheduling
//!
//! The seed architecture (and [`crate::supervise`]) uses one shared FIFO
//! queue: every dequeue contends on one lock, which is exactly the
//! task-queue bottleneck §6.2 budgets. Here each worker owns a
//! *deque* in the Chase–Lev discipline — the owner pushes and pops at the
//! back (LIFO, cache-warm), thieves steal from the front (FIFO, the
//! oldest and typically largest chunks) — plus one shared overflow queue
//! (the *injector*) fed by bounded-deque spill-over at distribution time
//! and by the supervisor's retries. The deques are `Mutex<VecDeque>`
//! rather than the lock-free original: this crate forbids `unsafe`, and
//! at SPAM's task granularity (whole OPS5 engine runs, ~milliseconds) a
//! per-deque lock is uncontended noise while preserving the Chase–Lev
//! access pattern that matters for distribution and steal accounting.
//!
//! Initial placement is *dynamically chunked*: tasks are grouped into
//! contiguous chunks whose estimated work reaches the cost model's
//! scheduler granularity ([`paraops5::CostModel::granularity`], via
//! [`ExecConfig::with_cost_model`]) — the OpenMP `schedule(dynamic,k)`
//! idea applied to SPAM's highly skewed task sizes (Tables 5–8). Chunks
//! are dealt round-robin across the worker deques, so each worker's
//! initial working-set of WMEs arrives in batches rather than one task at
//! a time.
//!
//! # Supervision, observability, attribution
//!
//! Nothing is lost relative to the simulator path. Every attempt runs
//! under `catch_unwind` with the same retry/deadline/dead-letter policy
//! as [`crate::supervise::supervise_observed`]; the flight recorder sees
//! `task.exec` spans plus `task.steal` instants; live telemetry gets the
//! per-worker busy/task series plus steal and overflow counters; scene
//! traces get the same derived `task.exec` span ids. The measured
//! schedule is returned as an [`ExecReport`] which converts to a
//! [`multimax_sim::SimResult`] ([`ExecReport::to_sim_result`]) — so the
//! gap accountant ([`crate::attribution::GapAttribution`]) and the Gantt
//! timeline work on measured traces exactly as on simulated ones.

use crate::supervise::{install_quiet_hook, TaskAttempt, WORKER_NAME};
use multimax_sim::{SimResult, TaskExec};
use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{mpsc, Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::time::{Duration, Instant};
use tlp_fault::{FaultPlan, SuperviseError, SupervisorConfig, TaskOutcome, TaskReport, TaskStatus};
use tlp_obs::{
    series_key, Category, Live, ObsLevel, Recorder, SceneSpan, SloMonitor, SpanId, SpanKind,
    SpanRecord, Timeline,
};

/// Nominal work units per WME a task loads, used to put caller-side task
/// estimates (WME counts) on the same scale as the cost model's
/// `chunk_units` (ParaOPS5's ~100-instruction granularity).
pub const ESTIMATE_UNITS_PER_WME: u64 = 10;

/// Work-stealing executor configuration.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ExecConfig {
    /// Worker threads (capped at the task count when spawning).
    pub workers: usize,
    /// Estimated work units per scheduling chunk: consecutive tasks are
    /// batched until their summed estimate reaches this target. Zero
    /// reads as one (the [`paraops5::CostModel::granularity`] guard).
    pub chunk_target: u64,
    /// Bound on each worker deque at distribution time; chunks beyond it
    /// spill to the shared overflow queue (and are counted).
    pub deque_capacity: usize,
}

impl ExecConfig {
    /// Config for `workers` threads with the default cost model's
    /// scheduler granularity as the chunk target.
    pub fn new(workers: usize) -> ExecConfig {
        ExecConfig::with_cost_model(workers, &paraops5::CostModel::default())
    }

    /// Config whose dynamic chunking is driven by `model`:
    /// `chunk_target = model.granularity()` (the validated, zero-guarded
    /// reading of `chunk_units`).
    pub fn with_cost_model(workers: usize, model: &paraops5::CostModel) -> ExecConfig {
        ExecConfig {
            workers,
            chunk_target: model.granularity(),
            deque_capacity: 64,
        }
    }
}

/// Per-worker scheduling statistics.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct WorkerStats {
    /// Attempts this worker executed.
    pub executed: u64,
    /// Attempts acquired by stealing from another worker's deque.
    pub stolen: u64,
    /// Attempts taken from the shared overflow queue.
    pub overflow_taken: u64,
    /// Full sweeps (own deque + overflow + every victim) that found
    /// nothing and sent the worker to sleep.
    pub steal_misses: u64,
    /// Seconds spent executing task bodies.
    pub busy_s: f64,
}

/// One measured task attempt: the four schedule timestamps (seconds from
/// phase start) mirror [`multimax_sim::TaskExec`] so the measured run
/// converts losslessly into the simulator's result shape.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ExecAttempt {
    /// Task index.
    pub task: usize,
    /// Zero-based attempt number.
    pub attempt: u32,
    /// Worker that ran it.
    pub worker: usize,
    /// Whether the job was stolen from another worker's deque.
    pub stolen: bool,
    /// When the worker began looking for this job (its previous job's
    /// finish, or its spawn).
    pub queued_s: f64,
    /// When the job was acquired (popped, stolen, or taken from
    /// overflow).
    pub acquired_s: f64,
    /// When the task body started (immediately after acquisition; retry
    /// backoff delays the re-enqueue, so it shows up in the
    /// queued→acquired interval, not here).
    pub started_s: f64,
    /// When the task body returned or panicked.
    pub finished_s: f64,
    /// Whether this attempt terminally succeeded (filled its task's
    /// slot): false for panics, deadline rejections, and retried
    /// attempts.
    pub ok: bool,
}

/// The measured schedule of one executed phase.
#[derive(Clone, Debug, Default)]
pub struct ExecReport {
    /// Per-worker scheduling statistics, indexed by worker.
    pub workers: Vec<WorkerStats>,
    /// When each worker's thread entered its scheduling loop (seconds
    /// from phase start) — the measured fork overhead.
    pub spawn_ready_s: Vec<f64>,
    /// Scheduling chunks formed at distribution.
    pub chunks: u64,
    /// Jobs that spilled to the shared overflow queue at distribution
    /// (bounded deques were full).
    pub overflowed: u64,
    /// Phase wall-clock seconds (spawn to last terminal decision).
    pub wall_s: f64,
    /// Every attempt, in completion order.
    pub attempts: Vec<ExecAttempt>,
    /// Tasks that dead-lettered (never completed).
    pub lost_tasks: u32,
}

impl ExecReport {
    /// Total steals across workers.
    pub fn steals(&self) -> u64 {
        self.workers.iter().map(|w| w.stolen).sum()
    }

    /// Total overflow-queue acquisitions across workers.
    pub fn overflow_taken(&self) -> u64 {
        self.workers.iter().map(|w| w.overflow_taken).sum()
    }

    /// Mean worker utilisation over the wall clock (busy seconds over
    /// capacity).
    pub fn utilization(&self) -> f64 {
        if self.wall_s <= 0.0 || self.workers.is_empty() {
            return 0.0;
        }
        self.workers.iter().map(|w| w.busy_s).sum::<f64>()
            / (self.wall_s * self.workers.len() as f64)
    }

    /// Converts the measured schedule into the simulator's result shape,
    /// with wall-clock seconds where the simulator has simulated seconds:
    /// the gap accountant ([`crate::attribution::GapAttribution`]) and
    /// [`multimax_sim::SimResult::timeline`] then work on measured runs
    /// unchanged. Queue-wait is the workers' job-search time (incl. steal
    /// sweeps, idle parking between jobs, and retry backoff — the
    /// re-enqueue is delayed, so the backoff is queue time on otherwise
    /// idle workers, never a stalled pool slot), dequeue is
    /// acquisition-to-start (span bookkeeping only), so the identity
    /// `busy + fork + queue_wait + dequeue + idle = capacity` holds
    /// exactly as it does for simulated results.
    pub fn to_sim_result(&self) -> SimResult {
        let n_workers = self.workers.len();
        let mut executions: Vec<TaskExec> = self
            .attempts
            .iter()
            .map(|a| TaskExec {
                task: a.task as u32,
                worker: a.worker as u32,
                queued_at: a.queued_s,
                acquired: a.acquired_s,
                started: a.started_s,
                finished: a.finished_s,
            })
            .collect();
        executions.sort_by(|a, b| a.started.total_cmp(&b.started));
        let mut busy = vec![0.0; n_workers];
        let mut tasks_executed = vec![0u32; n_workers];
        let mut per_worker_finish = self.spawn_ready_s.clone();
        per_worker_finish.resize(n_workers, 0.0);
        let mut queue_wait = 0.0;
        let mut queue_service = 0.0;
        for e in &executions {
            let w = e.worker as usize;
            busy[w] += e.finished - e.started;
            tasks_executed[w] += 1;
            per_worker_finish[w] = per_worker_finish[w].max(e.finished);
            queue_wait += e.acquired - e.queued_at;
            queue_service += e.started - e.acquired;
        }
        // Completions: the successful attempt per task. Dead letters
        // never complete; they are `lost_tasks`.
        let mut completions: Vec<(u32, f64)> = self
            .attempts
            .iter()
            .filter(|a| a.ok)
            .map(|a| (a.task as u32, a.finished_s))
            .collect();
        completions.sort_by(|a, b| a.1.total_cmp(&b.1));
        let task_retries = self.attempts.iter().filter(|a| a.attempt > 0).count() as u32;
        SimResult {
            makespan: self.wall_s,
            total_work: busy.iter().sum(),
            busy,
            tasks_executed,
            queue_wait,
            queue_service,
            completions,
            per_worker_finish,
            failed_workers: Vec::new(),
            task_retries,
            lost_tasks: self.lost_tasks,
            executions,
            deaths: Vec::new(),
            fork_ready: {
                let mut f = self.spawn_ready_s.clone();
                f.resize(n_workers, 0.0);
                f
            },
        }
    }

    /// Per-worker Gantt timeline of the measured schedule (fork,
    /// wait-queue, dequeue, `exec t{N}`, idle), via the simulator's
    /// timeline builder — every wall-clock instant on every worker is
    /// covered, so `tracecheck`'s coverage gate applies to measured
    /// traces too.
    pub fn timeline(&self, name: &str) -> Timeline {
        self.to_sim_result().timeline(name)
    }
}

/// Greedy dynamic chunking: consecutive tasks batch together until the
/// chunk's summed estimate reaches `chunk_target` (zero reads as one).
/// Every task lands in exactly one chunk; a task whose own estimate
/// exceeds the target forms a singleton chunk.
pub fn chunk_tasks(estimates: &[u64], chunk_target: u64) -> Vec<std::ops::Range<usize>> {
    let target = chunk_target.max(1);
    let mut chunks = Vec::new();
    let mut start = 0usize;
    let mut acc = 0u64;
    for (i, &e) in estimates.iter().enumerate() {
        acc = acc.saturating_add(e.max(1));
        if acc >= target {
            chunks.push(start..i + 1);
            start = i + 1;
            acc = 0;
        }
    }
    if start < estimates.len() {
        chunks.push(start..estimates.len());
    }
    chunks
}

/// A scheduled job: `(task, attempt)`.
type Job = (usize, u32);

/// How a worker acquired a job — drives the steal/overflow counters.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Source {
    Own,
    Overflow,
    Stolen(usize),
}

/// The work-stealing pool: per-worker deques (owner back, thieves
/// front), a shared overflow/injector queue, and a parking lot.
///
/// Like the supervisor's `JobQueue`, every lock recovers from poisoning:
/// queue state is a plain collection with no half-updatable invariant.
/// The `pending` count under the `sync` lock tracks jobs enqueued
/// anywhere; it rises *before* the job becomes visible in its queue, so
/// a worker that pops a job always decrements a count that already
/// includes it — the counter can never underflow, even when a sweep
/// races a `push_overflow` from the control loop mid-phase. The price
/// is a brief window where `pending > 0` with the job not yet visible:
/// a worker that sweeps empty during the window re-reads the count
/// under the sync lock and retries the sweep instead of sleeping, so no
/// job is ever missed.
struct StealPool {
    deques: Vec<Mutex<VecDeque<Job>>>,
    overflow: Mutex<VecDeque<Job>>,
    sync: Mutex<(u64, bool)>,
    cv: Condvar,
}

fn relock<'a, T>(
    r: Result<MutexGuard<'a, T>, PoisonError<MutexGuard<'a, T>>>,
) -> MutexGuard<'a, T> {
    r.unwrap_or_else(PoisonError::into_inner)
}

impl StealPool {
    fn new(n_workers: usize) -> StealPool {
        StealPool {
            deques: (0..n_workers)
                .map(|_| Mutex::new(VecDeque::new()))
                .collect(),
            overflow: Mutex::new(VecDeque::new()),
            sync: Mutex::new((0, false)),
            cv: Condvar::new(),
        }
    }

    /// Raises `pending` *before* the caller makes the job visible
    /// (count-then-push is what keeps the decrement in [`Self::acquire`]
    /// underflow-proof; see the struct doc).
    fn announce(&self) {
        relock(self.sync.lock()).0 += 1;
    }

    /// Seeds worker `w`'s deque (distribution time, before workers run).
    fn seed_local(&self, w: usize, job: Job) {
        self.announce();
        relock(self.deques[w].lock()).push_back(job);
        self.cv.notify_one();
    }

    /// Pushes a job to the shared overflow queue (distribution spill or a
    /// supervisor retry).
    fn push_overflow(&self, job: Job) {
        self.announce();
        relock(self.overflow.lock()).push_back(job);
        self.cv.notify_one();
    }

    fn close(&self) {
        relock(self.sync.lock()).1 = true;
        self.cv.notify_all();
    }

    /// One full acquisition sweep for worker `w`: own deque (back), then
    /// overflow (front), then every victim's deque front.
    fn sweep(&self, w: usize) -> Option<(Job, Source)> {
        if let Some(job) = relock(self.deques[w].lock()).pop_back() {
            return Some((job, Source::Own));
        }
        if let Some(job) = relock(self.overflow.lock()).pop_front() {
            return Some((job, Source::Overflow));
        }
        let n = self.deques.len();
        for off in 1..n {
            let v = (w + off) % n;
            if let Some(job) = relock(self.deques[v].lock()).pop_front() {
                return Some((job, Source::Stolen(v)));
            }
        }
        None
    }

    /// Blocks until a job is acquirable or the pool closes empty. Returns
    /// `None` to terminate the worker. The number of failed full sweeps is
    /// added to `misses`.
    fn acquire(&self, w: usize, misses: &mut u64) -> Option<(Job, Source)> {
        loop {
            if let Some(got) = self.sweep(w) {
                relock(self.sync.lock()).0 -= 1;
                return Some(got);
            }
            *misses += 1;
            let mut st = relock(self.sync.lock());
            loop {
                if st.0 > 0 {
                    break; // something was announced since the sweep — retry
                }
                if st.1 {
                    return None;
                }
                st = relock(self.cv.wait(st));
            }
        }
    }
}

struct ExecMsg<T> {
    task: usize,
    attempt: u32,
    worker: usize,
    stolen: bool,
    result: Result<T, String>,
    /// Worker-side schedule instants.
    queued: Instant,
    acquired: Instant,
    started: Instant,
    elapsed: Duration,
}

/// Why the last attempt of a task failed.
#[derive(Clone, Copy, PartialEq, Eq)]
enum FailKind {
    Panic,
    Deadline,
}

/// Runs `labels.len()` tasks on the work-stealing pool without
/// observability attached. See [`execute_observed`].
pub fn execute<T: Send>(
    exec: &ExecConfig,
    labels: Vec<String>,
    cfg: &SupervisorConfig,
    plan: &FaultPlan,
    task: impl Fn(usize) -> T + Sync,
) -> Result<(Vec<Option<T>>, TaskReport, ExecReport), SuperviseError> {
    execute_observed(
        exec,
        labels,
        &[],
        cfg,
        plan,
        &Recorder::off(),
        &Live::off(),
        None,
        None,
        |_, _| {},
        |a: TaskAttempt| task(a.task),
    )
}

/// Runs `labels.len()` tasks as real jobs on the work-stealing pool, with
/// the full supervision and observability contract of
/// [`crate::supervise::supervise_observed`] — same retry/deadline/
/// dead-letter policy, same fault injection, same recorder/live/SLO/scene
/// wiring, same derived `task.exec` span ids — plus the measured
/// [`ExecReport`].
///
/// `estimates` gives each task's a-priori work estimate for dynamic
/// chunking (WME counts scaled by [`ESTIMATE_UNITS_PER_WME`], or any
/// consistent unit); empty means uniform. Results are deterministic —
/// identical to the sequential run regardless of worker count, steal
/// order, or scheduling noise — because every result lands in its task's
/// slot and merging is slot-ordered; only the *schedule* in the
/// [`ExecReport`] is machine-dependent.
#[allow(clippy::too_many_arguments)]
pub fn execute_observed<T: Send>(
    exec: &ExecConfig,
    labels: Vec<String>,
    estimates: &[u64],
    cfg: &SupervisorConfig,
    plan: &FaultPlan,
    rec: &Arc<Recorder>,
    live: &Arc<Live>,
    slo: Option<&Arc<SloMonitor>>,
    scene: Option<&SceneSpan>,
    on_complete: impl Fn(usize, &T),
    task: impl Fn(TaskAttempt) -> T + Sync,
) -> Result<(Vec<Option<T>>, TaskReport, ExecReport), SuperviseError> {
    if exec.workers == 0 {
        return Err(SuperviseError::NoWorkers);
    }
    let scene = scene.filter(|sc| sc.enabled());
    install_quiet_hook();
    let phase_start = Instant::now();
    let n_tasks = labels.len();
    let mut slots: Vec<Option<T>> = (0..n_tasks).map(|_| None).collect();
    let mut outcomes: Vec<TaskOutcome> = labels
        .into_iter()
        .enumerate()
        .map(|(task, label)| TaskOutcome {
            task,
            label,
            status: TaskStatus::Ok,
            attempts: 0,
            elapsed: Duration::ZERO,
            queue_wait: Duration::ZERO,
            retry_latency: Duration::ZERO,
            error: None,
        })
        .collect();
    if n_tasks == 0 {
        return Ok((slots, TaskReport { outcomes }, ExecReport::default()));
    }
    let n_workers = exec.workers.min(n_tasks);

    // Dynamic chunking + round-robin distribution: contiguous chunks of
    // tasks (batched WME arrival) dealt across the bounded deques; spill
    // goes to the shared overflow queue.
    let uniform = vec![1u64; n_tasks];
    let est = if estimates.len() == n_tasks {
        estimates
    } else {
        &uniform
    };
    let chunks = chunk_tasks(est, exec.chunk_target);
    let pool = StealPool::new(n_workers);
    let mut deque_fill = vec![0usize; n_workers];
    let mut overflowed = 0u64;
    let mut ctl = rec.sink("executor");
    if ctl.enabled(ObsLevel::Summary) {
        ctl.begin(
            Category::Supervisor,
            "exec.phase",
            vec![
                ("tasks", (n_tasks as u64).into()),
                ("workers", (n_workers as u64).into()),
                ("chunks", (chunks.len() as u64).into()),
            ],
        );
    }
    for (c, chunk) in chunks.iter().enumerate() {
        let w = c % n_workers;
        for i in chunk.clone() {
            if deque_fill[w] < exec.deque_capacity {
                pool.seed_local(w, (i, 0));
                deque_fill[w] += 1;
            } else {
                pool.push_overflow((i, 0));
                overflowed += 1;
                if ctl.enabled(ObsLevel::Full) {
                    ctl.instant(
                        Category::Task,
                        "exec.overflow",
                        vec![("task", (i as u64).into())],
                    );
                }
            }
        }
    }

    let (tx, rx) = mpsc::channel::<ExecMsg<T>>();
    let stats: Vec<Mutex<WorkerStats>> = (0..n_workers)
        .map(|_| Mutex::new(WorkerStats::default()))
        .collect();
    let spawn_ready: Vec<Mutex<f64>> = (0..n_workers).map(|_| Mutex::new(0.0)).collect();
    let mut last_fail: Vec<Option<FailKind>> = vec![None; n_tasks];
    let mut first_start: Vec<Option<Instant>> = vec![None; n_tasks];
    let mut remaining = n_tasks;
    let mut attempts_log: Vec<ExecAttempt> = Vec::with_capacity(n_tasks);
    let ctl_live = live.handle();

    std::thread::scope(|s| {
        for w in 0..n_workers {
            let tx = tx.clone();
            let pool = &pool;
            let task = &task;
            let stats = &stats;
            let spawn_ready = &spawn_ready;
            let wlive = Arc::clone(live);
            std::thread::Builder::new()
                .name(format!("{WORKER_NAME}-ws-{w}"))
                .spawn_scoped(s, move || {
                    let mut sink = rec.sink(format!("{WORKER_NAME}-ws-{w}"));
                    if let Some(sc) = scene {
                        sink.set_trace(sc.trace_id());
                    }
                    let wh = wlive.handle();
                    let worker = w.to_string();
                    let busy_key = series_key("spam_live_worker_busy_us", &[("worker", &worker)]);
                    let tasks_key = series_key("spam_live_worker_tasks", &[("worker", &worker)]);
                    let steals_key = series_key("spam_live_worker_steals", &[("worker", &worker)]);
                    let overflow_key =
                        series_key("spam_live_worker_overflow", &[("worker", &worker)]);
                    *relock(spawn_ready[w].lock()) = phase_start.elapsed().as_secs_f64();
                    let mut my = WorkerStats::default();
                    let mut queued = Instant::now();
                    while let Some(((i, attempt), source)) = pool.acquire(w, &mut my.steal_misses) {
                        let acquired = Instant::now();
                        match source {
                            Source::Own => {}
                            Source::Overflow => {
                                my.overflow_taken += 1;
                                if wh.enabled() {
                                    wh.inc(&overflow_key, 1);
                                }
                            }
                            Source::Stolen(victim) => {
                                my.stolen += 1;
                                if wh.enabled() {
                                    wh.inc(&steals_key, 1);
                                }
                                if sink.enabled(ObsLevel::Full) {
                                    sink.instant(
                                        Category::Task,
                                        "task.steal",
                                        vec![
                                            ("task", (i as u64).into()),
                                            ("victim", (victim as u64).into()),
                                            ("thief", (w as u64).into()),
                                        ],
                                    );
                                }
                            }
                        }
                        if sink.enabled(ObsLevel::Full) {
                            sink.begin(
                                Category::Task,
                                format!("task.exec t{i}"),
                                vec![
                                    ("task", (i as u64).into()),
                                    ("attempt", (attempt as u64).into()),
                                    (
                                        "stolen",
                                        u64::from(matches!(source, Source::Stolen(_))).into(),
                                    ),
                                ],
                            );
                        }
                        let attempt_span = scene.map(|sc| {
                            (
                                SpanId::derive(
                                    sc.trace_id(),
                                    "task.exec",
                                    i as u64,
                                    u64::from(attempt),
                                ),
                                sc.now_us(),
                            )
                        });
                        let invocation = TaskAttempt {
                            task: i,
                            attempt,
                            trace: scene
                                .zip(attempt_span)
                                .map(|(sc, (span, _))| sc.sink_under(span)),
                        };
                        let start = Instant::now();
                        let result = catch_unwind(AssertUnwindSafe(|| {
                            if plan.task_panics(i, attempt) {
                                panic!("injected fault: task {i} attempt {attempt}");
                            }
                            task(invocation)
                        }))
                        .map_err(crate::supervise::payload_to_string);
                        if sink.enabled(ObsLevel::Full) {
                            sink.end(
                                Category::Task,
                                format!("task.exec t{i}"),
                                vec![("ok", u64::from(result.is_ok()).into())],
                            );
                        }
                        let elapsed = start.elapsed();
                        if let (Some(sc), Some((span, start_us))) = (scene, attempt_span) {
                            sc.record_span(SpanRecord {
                                id: span,
                                parent: Some(sc.root()),
                                kind: SpanKind::Task,
                                name: format!("task.exec t{i} a{attempt}"),
                                worker: format!("{WORKER_NAME}-ws-{w}"),
                                start_us,
                                end_us: sc.now_us(),
                                error: result.as_ref().err().cloned(),
                            });
                        }
                        if wh.enabled() {
                            wh.inc(&busy_key, elapsed.as_micros() as u64);
                            wh.inc(&tasks_key, 1);
                        }
                        my.executed += 1;
                        my.busy_s += elapsed.as_secs_f64();
                        let msg = ExecMsg {
                            task: i,
                            attempt,
                            worker: w,
                            stolen: matches!(source, Source::Stolen(_)),
                            result,
                            queued,
                            acquired,
                            started: start,
                            elapsed,
                        };
                        if tx.send(msg).is_err() {
                            break;
                        }
                        queued = Instant::now();
                    }
                    *relock(stats[w].lock()) = my;
                })
                .expect("spawn executor worker");
        }
        drop(tx);

        // Control process: same decision loop as the supervisor; retries
        // go to the shared overflow queue (cold by definition). Linear
        // backoff delays the *re-enqueue* on a timer thread — a worker
        // sleeping through the backoff would stall a pool slot that
        // could be running other queued work.
        while remaining > 0 {
            let msg = rx.recv().expect("workers alive while tasks outstanding");
            let i = msg.task;
            if msg.attempt == 0 {
                first_start[i] = Some(msg.started);
                outcomes[i].queue_wait = msg.started.duration_since(phase_start);
            } else if let Some(first) = first_start[i] {
                outcomes[i].retry_latency = msg.started.duration_since(first);
            }
            let off = |t: Instant| t.duration_since(phase_start).as_secs_f64();
            let mut attempt_rec = ExecAttempt {
                task: i,
                attempt: msg.attempt,
                worker: msg.worker,
                stolen: msg.stolen,
                queued_s: off(msg.queued),
                acquired_s: off(msg.acquired),
                started_s: off(msg.started),
                finished_s: off(msg.started) + msg.elapsed.as_secs_f64(),
                ok: false,
            };
            let o = &mut outcomes[i];
            o.attempts = msg.attempt + 1;
            o.elapsed = msg.elapsed;
            let failure = match msg.result {
                Err(err) => {
                    last_fail[i] = Some(FailKind::Panic);
                    Some(err)
                }
                Ok(value) => match cfg.deadline {
                    Some(d) if msg.elapsed > d => {
                        last_fail[i] = Some(FailKind::Deadline);
                        if ctl.enabled(ObsLevel::Full) {
                            ctl.instant(
                                Category::Supervisor,
                                "task.deadline",
                                vec![
                                    ("task", (i as u64).into()),
                                    ("attempt", (msg.attempt as u64).into()),
                                    ("elapsed_s", msg.elapsed.as_secs_f64().into()),
                                ],
                            );
                        }
                        Some(format!(
                            "deadline exceeded: {:.1?} > {:.1?}; result discarded",
                            msg.elapsed, d
                        ))
                    }
                    _ => {
                        if ctl_live.enabled() {
                            ctl_live.inc("spam_live_tasks_completed", 1);
                            ctl_live
                                .observe(tlp_obs::TASK_LATENCY_FAMILY, msg.elapsed.as_secs_f64());
                        }
                        on_complete(i, &value);
                        let epoch = live.advance_epoch();
                        if let Some(slo) = slo {
                            slo.advance(epoch);
                        }
                        slots[i] = Some(value);
                        o.status = if msg.attempt == 0 {
                            TaskStatus::Ok
                        } else {
                            TaskStatus::Retried(msg.attempt)
                        };
                        o.error = None;
                        remaining -= 1;
                        if ctl.enabled(ObsLevel::Full) {
                            ctl.instant(
                                Category::Task,
                                "task.complete",
                                vec![
                                    ("task", (i as u64).into()),
                                    ("attempts", ((msg.attempt + 1) as u64).into()),
                                ],
                            );
                        }
                        None
                    }
                },
            };
            attempt_rec.ok = failure.is_none();
            attempts_log.push(attempt_rec);
            if let Some(err) = failure {
                o.error = Some(err);
                if msg.attempt < cfg.max_retries {
                    let next = msg.attempt + 1;
                    let delay = cfg.backoff * next;
                    if delay.is_zero() {
                        pool.push_overflow((i, next));
                    } else {
                        let pool = &pool;
                        s.spawn(move || {
                            std::thread::sleep(delay);
                            pool.push_overflow((i, next));
                        });
                    }
                    ctl_live.inc("spam_live_task_retries", 1);
                    if let Some(sc) = scene {
                        sc.tracing().note_retry(sc.trace_id());
                        let now = sc.now_us();
                        sc.record_span(SpanRecord {
                            id: SpanId::derive(
                                sc.trace_id(),
                                "supervisor.retry",
                                i as u64,
                                u64::from(msg.attempt),
                            ),
                            parent: Some(sc.root()),
                            kind: SpanKind::Aux,
                            name: format!("supervisor.retry t{i} a{}", msg.attempt + 1),
                            worker: "psm-control".into(),
                            start_us: now,
                            end_us: now,
                            error: None,
                        });
                    }
                    if ctl.enabled(ObsLevel::Full) {
                        ctl.instant(
                            Category::Supervisor,
                            "supervisor.retry",
                            vec![
                                ("task", (i as u64).into()),
                                ("next_attempt", ((msg.attempt + 1) as u64).into()),
                            ],
                        );
                    }
                } else {
                    o.status = match last_fail[i] {
                        Some(FailKind::Deadline) => TaskStatus::TimedOut,
                        _ => TaskStatus::Panicked,
                    };
                    ctl_live.inc("spam_live_dead_letters", 1);
                    if let Some(sc) = scene {
                        sc.tracing().note_dead_letter(sc.trace_id());
                        let now = sc.now_us();
                        sc.record_span(SpanRecord {
                            id: SpanId::derive(
                                sc.trace_id(),
                                "supervisor.dead_letter",
                                i as u64,
                                u64::from(msg.attempt),
                            ),
                            parent: Some(sc.root()),
                            kind: SpanKind::Aux,
                            name: format!("supervisor.dead_letter t{i}"),
                            worker: "psm-control".into(),
                            start_us: now,
                            end_us: now,
                            error: o.error.clone(),
                        });
                    }
                    if let Some(slo) = slo {
                        slo.observe(msg.elapsed.as_secs_f64(), false);
                    }
                    let epoch = live.advance_epoch();
                    if let Some(slo) = slo {
                        slo.advance(epoch);
                    }
                    remaining -= 1;
                    if ctl.enabled(ObsLevel::Full) {
                        ctl.instant(
                            Category::Supervisor,
                            "supervisor.dead_letter",
                            vec![
                                ("task", (i as u64).into()),
                                ("attempts", ((msg.attempt + 1) as u64).into()),
                            ],
                        );
                    }
                }
            }
            ctl_live.gauge("spam_live_queue_depth", remaining as f64);
        }
        pool.close();
    });

    let wall_s = phase_start.elapsed().as_secs_f64();
    let worker_stats: Vec<WorkerStats> = stats
        .into_iter()
        .map(|m| m.into_inner().unwrap_or_else(PoisonError::into_inner))
        .collect();
    let spawn_ready_s: Vec<f64> = spawn_ready
        .into_iter()
        .map(|m| m.into_inner().unwrap_or_else(PoisonError::into_inner))
        .collect();
    let report = ExecReport {
        workers: worker_stats,
        spawn_ready_s,
        chunks: chunks.len() as u64,
        overflowed,
        wall_s,
        lost_tasks: outcomes.iter().filter(|o| !o.status.succeeded()).count() as u32,
        attempts: attempts_log,
    };
    if ctl.enabled(ObsLevel::Summary) {
        let dead = report.lost_tasks;
        let retries: u32 = outcomes.iter().map(|o| o.attempts.saturating_sub(1)).sum();
        ctl.end(
            Category::Supervisor,
            "exec.phase",
            vec![
                ("ok", (n_tasks as u64 - u64::from(dead)).into()),
                ("retries", (retries as u64).into()),
                ("dead_letters", u64::from(dead).into()),
                ("steals", report.steals().into()),
                ("overflow", report.overflowed.into()),
            ],
        );
    }
    ctl.flush();

    Ok((slots, TaskReport { outcomes }, report))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn labels(n: usize) -> Vec<String> {
        (0..n).map(|i| format!("t{i}")).collect()
    }

    fn cfg1() -> ExecConfig {
        ExecConfig::new(3)
    }

    #[test]
    fn all_tasks_succeed_in_slot_order() {
        let (slots, report, exec) = execute(
            &cfg1(),
            labels(20),
            &SupervisorConfig::default(),
            &FaultPlan::none(),
            |i| i * 2,
        )
        .unwrap();
        assert!(report.is_clean());
        assert_eq!(
            slots.into_iter().map(Option::unwrap).collect::<Vec<_>>(),
            (0..20).map(|i| i * 2).collect::<Vec<_>>()
        );
        let executed: u64 = exec.workers.iter().map(|w| w.executed).sum();
        assert_eq!(executed, 20, "every task attempted exactly once");
        assert_eq!(exec.attempts.len(), 20);
        assert!(exec.chunks >= 1);
        assert_eq!(exec.lost_tasks, 0);
    }

    #[test]
    fn zero_workers_rejected() {
        let exec = ExecConfig {
            workers: 0,
            ..cfg1()
        };
        let r = execute(
            &exec,
            labels(3),
            &SupervisorConfig::default(),
            &FaultPlan::none(),
            |i| i,
        );
        assert_eq!(r.err(), Some(SuperviseError::NoWorkers));
    }

    #[test]
    fn empty_task_list_is_fine() {
        let (slots, report, exec) = execute(
            &cfg1(),
            labels(0),
            &SupervisorConfig::default(),
            &FaultPlan::none(),
            |i| i,
        )
        .unwrap();
        assert!(slots.is_empty());
        assert!(report.outcomes.is_empty());
        assert!(exec.attempts.is_empty());
    }

    #[test]
    fn chunking_respects_the_target() {
        // Uniform unit estimates, target 4: chunks of 4 tasks.
        let chunks = chunk_tasks(&[1; 10], 4);
        assert_eq!(chunks, vec![0..4, 4..8, 8..10]);
        // A huge task forms a singleton chunk.
        let chunks = chunk_tasks(&[1, 100, 1, 1], 4);
        assert_eq!(chunks, vec![0..2, 2..4]);
        // Zero target reads as one: every task is its own chunk.
        let chunks = chunk_tasks(&[1, 1, 1], 0);
        assert_eq!(chunks.len(), 3);
        // Zero estimates read as one, so chunking still terminates with
        // full coverage.
        let chunks = chunk_tasks(&[0, 0, 0, 0], 2);
        let covered: usize = chunks.iter().map(|c| c.len()).sum();
        assert_eq!(covered, 4);
    }

    #[test]
    fn pending_counter_survives_racing_overflow_pushes() {
        // Regression: push_overflow used to make the job visible before
        // raising `pending`, so a worker racing the push could consume
        // the job and decrement the counter through zero (u64 underflow:
        // panic in debug, transient u64::MAX in release). Hammer
        // concurrent pushes against spinning consumers — under the buggy
        // ordering this trips the debug overflow check almost instantly.
        use std::sync::atomic::{AtomicU64, Ordering};
        const PUSHERS: usize = 2;
        const JOBS: usize = 2000;
        let pool = StealPool::new(2);
        let consumed = AtomicU64::new(0);
        std::thread::scope(|s| {
            for w in 0..2 {
                let pool = &pool;
                let consumed = &consumed;
                s.spawn(move || {
                    let mut misses = 0u64;
                    while pool.acquire(w, &mut misses).is_some() {
                        consumed.fetch_add(1, Ordering::Relaxed);
                    }
                });
            }
            let pushers: Vec<_> = (0..PUSHERS)
                .map(|p| {
                    let pool = &pool;
                    s.spawn(move || {
                        for j in 0..JOBS {
                            pool.push_overflow((p * JOBS + j, 0));
                        }
                    })
                })
                .collect();
            for h in pushers {
                h.join().unwrap();
            }
            pool.close();
        });
        assert_eq!(consumed.load(Ordering::Relaxed), (PUSHERS * JOBS) as u64);
    }

    #[test]
    fn retry_backoff_delays_the_reenqueue_not_a_worker() {
        // Regression: the backoff used to be slept by the worker after
        // popping the retry, stalling a pool slot for the whole delay.
        // Now the control loop delays the re-enqueue, so the backoff is
        // queue time (queued→acquired), not dequeue time
        // (acquired→started).
        let plan = FaultPlan::none().with_task_panic(0, 1);
        let cfg = SupervisorConfig::default()
            .with_retries(1)
            .with_backoff(Duration::from_millis(40));
        let (slots, report, exec) = execute(&cfg1(), labels(1), &cfg, &plan, |i| i).unwrap();
        assert_eq!(slots[0], Some(0));
        assert!(report.outcomes[0].retry_latency >= Duration::from_millis(40));
        let retry = exec
            .attempts
            .iter()
            .find(|a| a.attempt == 1)
            .expect("retry attempt recorded");
        assert!(
            retry.acquired_s - retry.queued_s >= 0.035,
            "backoff must surface as queue wait, got {:.4}s",
            retry.acquired_s - retry.queued_s
        );
        assert!(
            retry.started_s - retry.acquired_s < 0.020,
            "no worker may sleep through the backoff, got {:.4}s",
            retry.started_s - retry.acquired_s
        );
    }

    #[test]
    fn retry_recovers_and_dead_letters_are_reported() {
        let plan = FaultPlan::none()
            .with_task_panic(5, 1)
            .with_task_panic(2, u32::MAX);
        let cfg = SupervisorConfig::default()
            .with_retries(1)
            .with_backoff(Duration::from_millis(1));
        let (slots, report, exec) = execute(&cfg1(), labels(10), &cfg, &plan, |i| i).unwrap();
        assert_eq!(slots.iter().flatten().count(), 9);
        assert!(slots[2].is_none());
        assert_eq!(report.outcomes[5].status, TaskStatus::Retried(1));
        assert_eq!(report.dead_letters().len(), 1);
        assert_eq!(exec.lost_tasks, 1);
        // 10 first attempts + t5 retry + t2 retry.
        assert_eq!(exec.attempts.len(), 12);
    }

    #[test]
    fn deterministic_results_under_seeded_faults() {
        let plan = FaultPlan::seeded(7).with_task_panic_rate(0.3);
        let cfg = SupervisorConfig::default()
            .with_retries(2)
            .with_backoff(Duration::from_millis(1));
        let run = || {
            let (slots, report, _) = execute(&cfg1(), labels(24), &cfg, &plan, |i| i).unwrap();
            let ok: Vec<usize> = slots.into_iter().flatten().collect();
            let st: Vec<TaskStatus> = report.outcomes.iter().map(|o| o.status.clone()).collect();
            (ok, st)
        };
        let a = run();
        let b = run();
        assert_eq!(
            a, b,
            "results must be plan-determined, not schedule-determined"
        );
    }

    #[test]
    fn measured_report_converts_to_a_covered_sim_result() {
        let (_, _, exec) = execute(
            &ExecConfig {
                workers: 4,
                chunk_target: 2,
                deque_capacity: 2,
            },
            labels(40),
            &SupervisorConfig::default(),
            &FaultPlan::none(),
            |i| {
                // A little real work so spans have width.
                let mut acc = 0u64;
                for k in 0..((i as u64 % 7) + 1) * 1000 {
                    acc = acc.wrapping_add(k);
                }
                acc
            },
        )
        .unwrap();
        // Bounded deques (capacity 2/worker, 40 singleton-ish chunks)
        // must have spilled to the overflow queue.
        assert!(exec.overflowed > 0, "distribution must overflow");
        let conservation: u64 = exec.workers.iter().map(|w| w.executed).sum();
        assert_eq!(conservation, 40);
        let sim = exec.to_sim_result();
        assert_eq!(sim.executions.len(), 40);
        assert_eq!(sim.completions.len(), 40);
        assert_eq!(sim.tasks_executed.iter().sum::<u32>(), 40);
        assert!((sim.makespan - exec.wall_s).abs() < 1e-12);
        // The measured timeline covers every instant on every worker —
        // the same invariant the simulator's timeline holds.
        let tl = exec.timeline("exec-real");
        assert!(
            tl.coverage() > 0.999,
            "measured Gantt must be gap-free: {}",
            tl.coverage()
        );
        // And the gap accountant closes its books on the measured run.
        let attr = crate::attribution::GapAttribution::attribute(
            sim.makespan,
            &sim,
            sim.busy.len() as u32,
        );
        let total: f64 = attr.components().iter().map(|c| c.1).sum();
        assert!(
            (total + attr.busy - attr.capacity()).abs() < attr.capacity().max(1e-9) * 1e-6,
            "busy {} + gap components {total} must sum to capacity {}",
            attr.busy,
            attr.capacity()
        );
        assert!(
            (total - attr.gap()).abs() < attr.capacity().max(1e-9) * 1e-6,
            "components {total} must sum to the gap {}",
            attr.gap()
        );
    }

    #[test]
    fn live_and_recorder_wiring_matches_the_supervisor_contract() {
        use tlp_obs::LiveValue;
        let live = Live::new(8);
        let rec = Recorder::new(ObsLevel::Full);
        let plan = FaultPlan::none().with_task_panic(1, 1);
        let cfg = SupervisorConfig::default()
            .with_retries(1)
            .with_backoff(Duration::from_millis(1));
        let (slots, report, _) = execute_observed(
            &ExecConfig {
                workers: 2,
                chunk_target: 1,
                deque_capacity: 64,
            },
            labels(6),
            &[],
            &cfg,
            &plan,
            &rec,
            &live,
            None,
            None,
            |_, _| {},
            |a: TaskAttempt| a.task,
        )
        .unwrap();
        assert_eq!(slots.iter().flatten().count(), 6);
        assert_eq!(report.total_retries(), 1);
        assert_eq!(live.epoch(), 6);
        let snap = live.snapshot();
        let total = |name: &str| match snap.series.get(name) {
            Some(LiveValue::Counter { total, .. }) => *total,
            other => panic!("{name}: expected counter, got {other:?}"),
        };
        assert_eq!(total("spam_live_tasks_completed"), 6);
        assert_eq!(total("spam_live_task_retries"), 1);
        assert!(snap
            .series
            .keys()
            .any(|k| k.starts_with("spam_live_worker_busy_us{")));
        let names: Vec<String> = rec.events().into_iter().map(|e| e.name).collect();
        assert!(names.iter().any(|n| n == "exec.phase"), "{names:?}");
        assert!(
            names.iter().any(|n| n.starts_with("task.exec")),
            "{names:?}"
        );
        assert!(names.iter().any(|n| n == "supervisor.retry"), "{names:?}");
    }

    #[test]
    fn scene_traced_execution_builds_a_wellformed_span_tree() {
        use tlp_obs::{validate_span_tree, SamplerConfig, Tracing};
        let tracing = Tracing::new(SamplerConfig::default());
        let scene = tracing.start_scene(42, "dc");
        let plan = FaultPlan::none().with_task_panic(1, 1);
        let cfg = SupervisorConfig::default()
            .with_retries(1)
            .with_backoff(Duration::from_millis(1));
        let live = Live::off();
        let (slots, _, _) = execute_observed(
            &cfg1(),
            labels(4),
            &[],
            &cfg,
            &plan,
            &Recorder::off(),
            &live,
            None,
            Some(&scene),
            |_, _| {},
            |a: TaskAttempt| a.task,
        )
        .unwrap();
        assert_eq!(slots.iter().flatten().count(), 4);
        scene.finish();
        let retained = tracing.retained();
        assert_eq!(retained.len(), 1);
        let t = &retained[0];
        let execs = t
            .spans
            .iter()
            .filter(|s| s.name.starts_with("task.exec"))
            .count();
        assert_eq!(execs, 5, "4 first attempts + 1 retry");
        let doc = t.to_json().write();
        validate_span_tree(&doc).expect("executor trace must be a well-formed span tree");
    }
}
