//! # spam-psm
//!
//! SPAM/PSM — the paper's primary contribution: **task-level parallelism**
//! for a large production system, characterised by three explicit choices
//! (§3.2, Table 4):
//!
//! * **explicit** parallelism — the decomposition is specified by the
//!   system designer, not extracted by the compiler;
//! * **asynchronous** production firing — each task process is a complete,
//!   independent OPS5 system with its own conflict set; there is no global
//!   resolve barrier;
//! * **working-memory distribution** — every task process holds all the
//!   productions and a private working memory initialised from the task
//!   element.
//!
//! The crate provides:
//!
//! * [`trace`] — turns measured task executions (from the [`spam`] phase
//!   runners) into simulator task sets: per-task service seconds at the
//!   paper's 1.5 MIPS plus the per-task match fraction;
//! * [`measure`] — the decomposition-selection methodology of §4: per-level
//!   mean/σ/CV/task-count rows (Tables 5–7) and the baseline rows of
//!   Table 8;
//! * [`tlp`] — task-level parallelism itself: a real multi-threaded runner
//!   (control process + worker task processes around a shared queue,
//!   verified equivalent to the sequential run) and simulated speed-up
//!   curves at arbitrary processor counts (Figures 6 and 8);
//! * [`combined`] — TLP × match-parallelism combination and the
//!   multiplicative-speed-up prediction of Table 9;
//! * [`attribution`] — the "speedup doctor": Amdahl decomposition from
//!   profiler counters, exact ideal-vs-measured gap attribution, critical
//!   task chain, and the predicted-vs-measured Table 9 checks behind
//!   `spamctl profile` / `bench_profile`;
//! * [`whatif`] — the causal what-if profiler: virtual speedups applied to
//!   a recorded trace (a production, a task, a level, a cost-model
//!   component, or the whole match phase), re-simulated to predict the new
//!   makespan/critical chain, and ranked into the "optimize this next"
//!   report behind `spamctl whatif` / `bench_whatif`;
//! * [`exec`] — the real work-stealing executor ("Multimax on real
//!   cores"): per-worker Chase–Lev-style deques plus a shared overflow
//!   queue run the task set as actual threads with cost-model-driven
//!   dynamic chunking, measuring wall-clock schedules that convert into
//!   the simulator's result shape for gap attribution and Gantt
//!   timelines;
//! * [`baseline`] — the §6 unoptimised-baseline comparison (the 10–20×
//!   Lisp→C/ParaOPS5 port factor), via the engine's naive-match backend;
//! * [`recover`] — crash-consistent checkpoints and deterministic replay
//!   recovery: a retried task resumes from its last engine snapshot plus
//!   WAL replay instead of starting over;
//! * [`taxonomy`] — Table 4 as data.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod attribution;
pub mod baseline;
pub mod combined;
pub mod exec;
pub mod measure;
pub mod recover;
pub mod supervise;
pub mod taxonomy;
pub mod tlp;
pub mod trace;
pub mod whatif;

pub use attribution::{
    amdahl_speedup, build_report, build_svm_report, critical_path, critical_path_of,
    effective_processors_lost, equivalent_processors, perturbed_attribution,
    predicted_from_match_fraction, pure_tlp_config, CriticalPath, GapAttribution, PhaseAmdahl,
    ProfileReport, SpeedupCheck, SvmGapAttribution, SvmReport,
};
pub use combined::{combined_grid, CombinedCell};
pub use exec::{
    chunk_tasks, execute, execute_observed, ExecAttempt, ExecConfig, ExecReport, WorkerStats,
};
pub use measure::{level_rows, profiled_lcc, table8_row, LevelRowMeasured, Table8Row};
pub use recover::{
    run_lcc_unit_checkpointed, run_parallel_lcc_recoverable, run_parallel_lcc_recoverable_live,
    CheckpointConfig, CheckpointStore, RecoveryInfo, RecoveryReport,
};
pub use supervise::{
    supervise, supervise_observed, supervise_traced, supervision_overhead, SupervisionOverhead,
    TaskAttempt,
};
pub use tlp::{
    attributed_tlp_curve, run_parallel_lcc, run_parallel_lcc_exec, run_parallel_lcc_live,
    run_parallel_lcc_scene, run_parallel_lcc_supervised, run_parallel_lcc_traced, run_parallel_rtf,
    run_parallel_rtf_supervised, simulated_tlp_curve, synchronous_makespan, RtfParallelResult,
};
pub use trace::{lcc_trace, record_phase_metrics, record_sim_metrics, rtf_trace, PhaseTrace};
pub use whatif::{
    apply_virtual_speedup, build_whatif_report, diminishing_returns, validate_against_measured,
    Target, ValidationPoint, WhatifPrediction, WhatifReport,
};
