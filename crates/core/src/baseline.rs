//! The unoptimised-baseline comparison (§6).
//!
//! "The original SPAM system is implemented in Lisp, using an unoptimized
//! Lisp-based OPS5. ... We ported this entire system to C and ParaOPS5 and
//! replaced the forked computational processes with C function calls. This
//! baseline system itself provides approximately a 10-20 fold speed-up over
//! the original Lisp-based implementation."
//!
//! Stand-in: the engine's naive-match backend re-matches every production
//! from scratch on each WM change (the unoptimised cost profile), while the
//! optimised baseline uses the incremental Rete. Both run the *same* LCC
//! tasks; the ratio of their deterministic work counts is the port factor.

use ops5::matcher::NaiveMatcher;
use ops5::{Engine, Value};
use spam::externals::{register, ExternalCtx};
use spam::fragments::FragmentHypothesis;
use spam::lcc::{decompose, LccUnit, Level};
use spam::rules::SpamProgram;
use spam::scene::Scene;
use std::sync::Arc;

/// Result of the port-factor measurement.
#[derive(Clone, Copy, Debug)]
pub struct PortFactor {
    /// Total work units of the naive ("Lisp") configuration.
    pub naive_units: u64,
    /// Total work units of the Rete ("C/ParaOPS5") configuration.
    pub rete_units: u64,
}

impl PortFactor {
    /// The speed-up factor of the port.
    pub fn factor(&self) -> f64 {
        self.naive_units as f64 / self.rete_units as f64
    }
}

/// Runs `max_tasks` Level-3 LCC tasks under both matchers and reports the
/// work ratio. (A slice keeps the naive configuration's quadratic blow-up
/// affordable — the ratio is stable across slices.)
pub fn port_factor(
    sp: &SpamProgram,
    scene: &Arc<Scene>,
    fragments: &Arc<Vec<FragmentHypothesis>>,
    max_tasks: usize,
) -> PortFactor {
    let units = decompose(scene, fragments, Level::L3);
    let slice: Vec<&LccUnit> = units.iter().take(max_tasks).collect();

    let mut naive_units = 0;
    let mut rete_units = 0;
    for unit in slice {
        let fast = run_one(sp, scene, fragments, unit, false);
        let slow = run_one(sp, scene, fragments, unit, true);
        assert_eq!(
            fast.1, slow.1,
            "both matchers must fire identically on {unit:?}"
        );
        rete_units += fast.0;
        naive_units += slow.0;
    }
    PortFactor {
        naive_units,
        rete_units,
    }
}

fn run_one(
    sp: &SpamProgram,
    scene: &Arc<Scene>,
    fragments: &Arc<Vec<FragmentHypothesis>>,
    unit: &LccUnit,
    naive: bool,
) -> (u64, u64) {
    // Rebuild the task exactly as `spam::lcc::run_lcc_unit`, but on a
    // configurable backend. Reuse its WM assembly through a tiny shim: we
    // run the unit through a custom engine here.
    let mut e = if naive {
        let m = NaiveMatcher::new(Arc::clone(&sp.program), Arc::clone(&sp.compiled));
        Engine::with_matcher(
            Arc::clone(&sp.program),
            Arc::clone(&sp.compiled),
            Box::new(m),
        )
    } else {
        sp.engine()
    };
    register(
        &mut e,
        ExternalCtx {
            scene: Arc::clone(scene),
            fragments: Arc::clone(fragments),
            id_base: 1 << 30,
        },
    );
    e.make_wme(
        "control",
        &[
            ("phase", Value::symbol("lcc")),
            ("status", Value::symbol("running")),
        ],
    )
    .expect("control");
    spam::lcc::load_unit_wm(&mut e, scene, fragments, unit);
    let out = e.run(1_000_000);
    assert!(out.quiescent(), "{out:?}");
    (e.work().total_units(), out.firings)
}

#[cfg(test)]
mod tests {
    use super::*;
    use spam::rtf::run_rtf;

    #[test]
    fn port_factor_is_large() {
        let sp = SpamProgram::build();
        let scene = Arc::new(spam::generate_scene(&spam::datasets::dc().spec));
        let rtf = run_rtf(&sp, &scene);
        let frags = Arc::new(rtf.fragments);
        let pf = port_factor(&sp, &scene, &frags, 8);
        let f = pf.factor();
        assert!(
            f > 4.0,
            "the Rete port should win by a large factor, got {f:.1}"
        );
    }
}
