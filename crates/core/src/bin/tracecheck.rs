//! `tracecheck` — validate flight-recorder exports.
//!
//! ```sh
//! tracecheck trace.json [--min-coverage 0.99] [--jsonl events.jsonl]
//! tracecheck --spans traces.json
//! ```
//!
//! Checks a Chrome `trace_event` file produced by `spamctl --trace-out`:
//! the JSON must parse, every event must be well-formed, spans must be
//! well-nested per `(pid, tid)` — each `E` closes the innermost open `B`
//! by name and never ends before it begins, `X` durations are
//! non-negative — timestamps must be non-decreasing per `(pid, tid)`, and
//! the union of spans must cover at least `--min-coverage` of each
//! declared simulated makespan (default 0.99). With `--jsonl`,
//! additionally validates a JSONL event log: header first, every line
//! parses, each thread's logical clock is strictly monotone and its wall
//! clock never regresses. Exits non-zero on any violation, so CI can gate
//! on it.
//!
//! `--spans` switches to scene-trace mode: the file is a retained-trace
//! document (from `/trace/<id>` or `spamctl … --traces-out`) or a
//! `{"traces": […]}` listing, and every span tree must be well-formed —
//! unique span ids, exactly one root, every parent present in the same
//! trace, and every child interval nested inside its parent's.

use std::process::ExitCode;
use tlp_obs::{validate_chrome_trace, validate_jsonl, validate_span_tree};

struct Opts {
    trace: String,
    min_coverage: f64,
    jsonl: Option<String>,
    spans: bool,
}

fn parse_args() -> Result<Opts, String> {
    let mut trace = None;
    let mut min_coverage = 0.99;
    let mut jsonl = None;
    let mut spans = false;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--spans" => spans = true,
            "--min-coverage" => {
                min_coverage = args
                    .next()
                    .ok_or("--min-coverage needs a value")?
                    .parse()
                    .map_err(|e| format!("bad --min-coverage: {e}"))?;
                if !(0.0..=1.0).contains(&min_coverage) {
                    return Err("--min-coverage must be in [0, 1]".into());
                }
            }
            "--jsonl" => jsonl = Some(args.next().ok_or("--jsonl needs a path")?),
            "--help" | "-h" => {
                return Err(
                    "usage: tracecheck <trace.json> [--min-coverage C] [--jsonl events.jsonl]\n\
                     \x20      tracecheck --spans <traces.json>"
                        .into(),
                )
            }
            other if other.starts_with('-') => return Err(format!("unknown argument '{other}'")),
            _ => {
                if trace.replace(a).is_some() {
                    return Err("only one trace file expected".into());
                }
            }
        }
    }
    Ok(Opts {
        trace: trace.ok_or("usage: tracecheck <trace.json> [--min-coverage C] [--jsonl F]")?,
        min_coverage,
        jsonl,
        spans,
    })
}

fn main() -> ExitCode {
    let o = match parse_args() {
        Ok(o) => o,
        Err(m) => {
            eprintln!("{m}");
            return ExitCode::FAILURE;
        }
    };

    let text = match std::fs::read_to_string(&o.trace) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("tracecheck: cannot read {}: {e}", o.trace);
            return ExitCode::FAILURE;
        }
    };
    if o.spans {
        match validate_span_tree(&text) {
            Ok(s) => {
                println!("tracecheck: {}: {s}", o.trace);
                println!("tracecheck: OK");
                return ExitCode::SUCCESS;
            }
            Err(e) => {
                eprintln!("tracecheck: {}: INVALID: {e}", o.trace);
                return ExitCode::FAILURE;
            }
        }
    }
    let summary = match validate_chrome_trace(&text) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("tracecheck: {}: INVALID: {e}", o.trace);
            return ExitCode::FAILURE;
        }
    };
    println!("tracecheck: {}: {summary}", o.trace);
    match summary.coverage {
        None => {
            eprintln!(
                "tracecheck: {}: no simulated-makespan metadata; cannot check coverage",
                o.trace
            );
            return ExitCode::FAILURE;
        }
        Some(c) if c < o.min_coverage => {
            eprintln!(
                "tracecheck: {}: makespan coverage {:.2}% below required {:.2}%",
                o.trace,
                c * 100.0,
                o.min_coverage * 100.0
            );
            return ExitCode::FAILURE;
        }
        Some(_) => {}
    }

    if let Some(path) = &o.jsonl {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("tracecheck: cannot read {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        match validate_jsonl(&text) {
            Ok(s) => println!("tracecheck: {path}: {s}"),
            Err(e) => {
                eprintln!("tracecheck: {path}: INVALID: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    println!("tracecheck: OK");
    ExitCode::SUCCESS
}
