//! `spamctl` — drive the SPAM interpretation pipeline from the command line.
//!
//! ```sh
//! spamctl [run] [sf|dc|moff|suburb] [--level 1|2|3|4] [--workers N]
//!         [--retries K] [--deadline-ms MS] [--fault-seed S]
//!         [--task-panic-rate P] [--topdown] [--sweep] [--quiet]
//!         [--obs off|summary|full] [--trace-out F] [--metrics-out F]
//! spamctl profile [sf|dc|moff|suburb] [--level 1|2|3|4] [--top K]
//!         [--json F] [--check-band LO:HI]
//! ```
//!
//! * default: run the full pipeline and print the interpretation summary
//!   (`run` is an optional explicit subcommand for the same thing);
//! * `profile`: run the LCC phase under the match-level profiler and print
//!   the speed-up-doctor report — hot productions and alpha memories,
//!   the per-phase Amdahl decomposition, the ideal-vs-measured gap
//!   attribution, the critical task chain, and predicted-vs-measured
//!   combined speed-ups. `--json F` also writes the machine-readable
//!   report; `--check-band LO:HI` exits non-zero unless the measured
//!   match fraction lies in `[LO, HI]` (the CI perf-smoke gate);
//! * `--level` selects the LCC decomposition level (default 3);
//! * `--workers N` runs LCC with N real task-process threads (SPAM/PSM);
//! * `--retries K` allows K supervised retries per LCC task;
//! * `--deadline-ms MS` sets a soft per-task deadline;
//! * `--fault-seed S` + `--task-panic-rate P` inject deterministic task
//!   panics (demonstrates fault isolation — the run completes partially
//!   and prints the task report);
//! * `--topdown` follows FA predictions back into LCC (§2.2 re-entry);
//! * `--sweep` prints the simulated Encore speed-up curve for the run;
//! * `--obs` sets the flight-recorder level (default `off`; `full` also
//!   prints the simulated per-processor Gantt chart);
//! * `--trace-out F` writes a Chrome `trace_event` file (open in
//!   `chrome://tracing` or Perfetto) with the recorded events plus the
//!   simulated Encore timeline of the LCC phase;
//! * `--metrics-out F` writes the metrics-registry snapshot (service-time,
//!   queue-wait, match-fraction histograms; counters; gauges) as JSON.

use spam::fa::run_fa;
use spam::lcc::Level;
use spam::model::run_model;
use spam::phases::MIPS;
use spam::rtf::run_rtf;
use spam::rules::SpamProgram;
use spam::scene::Scene;
use spam::topdown::run_topdown;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;
use tlp_fault::{FaultPlan, SupervisorConfig};
use tlp_obs::{ObsLevel, Recorder};

struct Opts {
    profile: bool,
    top: usize,
    json_out: Option<String>,
    check_band: Option<(f64, f64)>,
    dataset: String,
    level: Level,
    workers: usize,
    retries: u32,
    deadline_ms: Option<u64>,
    fault_seed: u64,
    task_panic_rate: f64,
    topdown: bool,
    sweep: bool,
    quiet: bool,
    obs: ObsLevel,
    trace_out: Option<String>,
    metrics_out: Option<String>,
}

fn parse_args() -> Result<Opts, String> {
    let mut o = Opts {
        profile: false,
        top: 10,
        json_out: None,
        check_band: None,
        dataset: "moff".into(),
        level: Level::L3,
        workers: 1,
        retries: 0,
        deadline_ms: None,
        fault_seed: 0,
        task_panic_rate: 0.0,
        topdown: false,
        sweep: false,
        quiet: false,
        obs: ObsLevel::Off,
        trace_out: None,
        metrics_out: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "run" => {} // explicit default subcommand
            "profile" => o.profile = true,
            "--top" => {
                o.top = args
                    .next()
                    .ok_or("--top needs a value")?
                    .parse()
                    .map_err(|e| format!("bad --top: {e}"))?;
            }
            "--json" => {
                o.json_out = Some(args.next().ok_or("--json needs a path")?);
            }
            "--check-band" => {
                let v = args.next().ok_or("--check-band needs LO:HI")?;
                let (lo, hi) = v
                    .split_once(':')
                    .ok_or(format!("bad --check-band '{v}' (want LO:HI)"))?;
                let lo: f64 = lo.parse().map_err(|e| format!("bad --check-band: {e}"))?;
                let hi: f64 = hi.parse().map_err(|e| format!("bad --check-band: {e}"))?;
                if !(0.0..=1.0).contains(&lo) || !(0.0..=1.0).contains(&hi) || lo > hi {
                    return Err(format!("bad --check-band {lo}:{hi}"));
                }
                o.check_band = Some((lo, hi));
            }
            "sf" | "dc" | "moff" | "suburb" => o.dataset = a,
            "--level" => {
                o.level = match args.next().as_deref() {
                    Some("1") => Level::L1,
                    Some("2") => Level::L2,
                    Some("3") => Level::L3,
                    Some("4") => Level::L4,
                    other => return Err(format!("bad --level {other:?}")),
                }
            }
            "--workers" => {
                o.workers = args
                    .next()
                    .ok_or("--workers needs a value")?
                    .parse()
                    .map_err(|e| format!("bad --workers: {e}"))?;
                if o.workers == 0 {
                    return Err("--workers must be >= 1".into());
                }
            }
            "--retries" => {
                o.retries = args
                    .next()
                    .ok_or("--retries needs a value")?
                    .parse()
                    .map_err(|e| format!("bad --retries: {e}"))?;
            }
            "--deadline-ms" => {
                o.deadline_ms = Some(
                    args.next()
                        .ok_or("--deadline-ms needs a value")?
                        .parse()
                        .map_err(|e| format!("bad --deadline-ms: {e}"))?,
                );
            }
            "--fault-seed" => {
                o.fault_seed = args
                    .next()
                    .ok_or("--fault-seed needs a value")?
                    .parse()
                    .map_err(|e| format!("bad --fault-seed: {e}"))?;
            }
            "--task-panic-rate" => {
                o.task_panic_rate = args
                    .next()
                    .ok_or("--task-panic-rate needs a value")?
                    .parse()
                    .map_err(|e| format!("bad --task-panic-rate: {e}"))?;
                if !(0.0..=1.0).contains(&o.task_panic_rate) {
                    return Err("--task-panic-rate must be in [0, 1]".into());
                }
            }
            "--topdown" => o.topdown = true,
            "--sweep" => o.sweep = true,
            "--quiet" => o.quiet = true,
            "--obs" => {
                let v = args.next().ok_or("--obs needs off|summary|full")?;
                o.obs = ObsLevel::parse(&v).ok_or(format!("bad --obs '{v}'"))?;
            }
            "--trace-out" => {
                o.trace_out = Some(args.next().ok_or("--trace-out needs a path")?);
            }
            "--metrics-out" => {
                o.metrics_out = Some(args.next().ok_or("--metrics-out needs a path")?);
            }
            "--help" | "-h" => {
                return Err(
                    "usage: spamctl [run] [sf|dc|moff|suburb] [--level 1|2|3|4] [--workers N] \
                     [--retries K] [--deadline-ms MS] [--fault-seed S] \
                     [--task-panic-rate P] [--topdown] [--sweep] [--quiet] \
                     [--obs off|summary|full] [--trace-out F] [--metrics-out F]\n\
                     \x20      spamctl profile [sf|dc|moff|suburb] [--level 1|2|3|4] [--top K] \
                     [--json F] [--check-band LO:HI]"
                        .into(),
                )
            }
            other => return Err(format!("unknown argument '{other}'")),
        }
    }
    Ok(o)
}

fn build_scene(name: &str) -> Arc<Scene> {
    Arc::new(match name {
        "sf" => spam::generate_scene(&spam::datasets::sf().spec),
        "dc" => spam::generate_scene(&spam::datasets::dc().spec),
        "suburb" => spam::generate_suburb(&spam::generate::SuburbSpec::demo()),
        _ => spam::generate_scene(&spam::datasets::moff().spec),
    })
}

/// The `profile` subcommand: run RTF then the LCC phase under the
/// match-level profiler and print / write the speed-up-doctor report.
fn run_profile(o: &Opts, sp: &SpamProgram, scene: &Arc<Scene>) -> ExitCode {
    println!(
        "spamctl profile: {} ({:?}), {} regions, LCC at {}",
        scene.name,
        scene.domain,
        scene.len(),
        o.level.name(),
    );
    let rtf = run_rtf(sp, scene);
    let fragments = Arc::new(rtf.fragments.clone());
    let (row, profile, phase) = spam_psm::measure::profiled_lcc(sp, scene, &fragments, o.level);
    println!(
        "LCC    : {} tasks, {} firings, {:.0} simulated s",
        row.tasks, row.prods_fired, row.total_seconds
    );
    let Some(profile) = profile else {
        eprintln!("profile: ops5 built without the `profiler` feature; no report");
        return if o.check_band.is_some() {
            ExitCode::FAILURE
        } else {
            ExitCode::SUCCESS
        };
    };
    let trace = spam_psm::trace::lcc_trace(&phase);
    let report = spam_psm::attribution::build_report(
        scene.name.clone(),
        format!("LCC {}", o.level.name()),
        profile,
        &trace,
        &[2, 6, 10, 14],
        &[(2, 1), (4, 1), (4, 2), (6, 2)],
        &paraops5::costmodel::CostModel::default(),
        o.top,
    );
    println!();
    print!("{report}");

    if let Some(path) = &o.json_out {
        if let Err(e) = std::fs::write(path, report.to_json().write()) {
            eprintln!("cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("\nprofile: report -> {path}");
    }

    if let Some((lo, hi)) = o.check_band {
        let mf = report.match_fraction();
        if (lo..=hi).contains(&mf) {
            println!("\ncheck  : match fraction {mf:.3} in [{lo}, {hi}] — ok");
        } else {
            eprintln!("\ncheck  : match fraction {mf:.3} OUTSIDE [{lo}, {hi}]");
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let o = match parse_args() {
        Ok(o) => o,
        Err(m) => {
            eprintln!("{m}");
            return ExitCode::FAILURE;
        }
    };
    let sp = SpamProgram::build();
    let scene = build_scene(&o.dataset);
    if o.profile {
        return run_profile(&o, &sp, &scene);
    }
    println!(
        "spamctl: {} ({:?}), {} regions, LCC at {}, {} worker(s), obs {}",
        scene.name,
        scene.domain,
        scene.len(),
        o.level.name(),
        o.workers,
        o.obs
    );

    // An output file with the level left at `off` records at `full`; an
    // explicit `--obs off` (the default) records nothing.
    let obs_level = if o.obs == ObsLevel::Off && (o.trace_out.is_some() || o.metrics_out.is_some())
    {
        ObsLevel::Full
    } else {
        o.obs
    };
    let rec = Recorder::new(obs_level);
    let mut ctl = rec.sink("control");

    if ctl.enabled(ObsLevel::Summary) {
        ctl.begin(tlp_obs::Category::Phase, "phase.rtf", vec![]);
    }
    let rtf = run_rtf(&sp, &scene);
    if ctl.enabled(ObsLevel::Summary) {
        ctl.end(
            tlp_obs::Category::Phase,
            "phase.rtf",
            vec![("firings", rtf.firings.into())],
        );
    }
    println!(
        "RTF    : {} hypotheses, {} firings",
        rtf.fragments.len(),
        rtf.firings
    );
    let fragments = Arc::new(rtf.fragments.clone());

    // A recording run takes the supervised path so task/supervisor events
    // are emitted; the results are identical either way.
    let supervised = o.workers > 1
        || o.retries > 0
        || o.deadline_ms.is_some()
        || o.task_panic_rate > 0.0
        || rec.enabled(ObsLevel::Summary);
    if ctl.enabled(ObsLevel::Summary) {
        ctl.begin(tlp_obs::Category::Phase, "phase.lcc", vec![]);
    }
    let lcc = if supervised {
        let mut cfg = SupervisorConfig::default().with_retries(o.retries);
        if let Some(ms) = o.deadline_ms {
            cfg = cfg.with_deadline(Duration::from_millis(ms));
        }
        let mut plan = FaultPlan::seeded(o.fault_seed);
        if o.task_panic_rate > 0.0 {
            plan = plan.with_task_panic_rate(o.task_panic_rate);
        }
        match spam_psm::tlp::run_parallel_lcc_traced(
            &sp, &scene, &fragments, o.level, o.workers, &cfg, &plan, &rec,
        ) {
            Ok(lcc) => lcc,
            Err(e) => {
                eprintln!("LCC supervision error: {e}");
                return ExitCode::FAILURE;
            }
        }
    } else {
        spam::lcc::run_lcc(&sp, &scene, &fragments, o.level)
    };
    if ctl.enabled(ObsLevel::Summary) {
        ctl.end(
            tlp_obs::Category::Phase,
            "phase.lcc",
            vec![("firings", lcc.firings.into())],
        );
    }
    println!(
        "LCC    : {} tasks, {} consistency records, {} firings, {:.0} simulated s",
        lcc.units.len(),
        lcc.consistents.len(),
        lcc.firings,
        lcc.work.seconds_at(MIPS)
    );
    if supervised {
        // Wall-clock latency detail only when the recorder is on: the
        // default output must stay byte-identical for same-seed runs.
        print!("{}", lcc.report.display(rec.enabled(ObsLevel::Summary)));
    }
    let mut fragments = Arc::new(lcc.fragments.clone());
    let mut consistents = lcc.consistents.clone();

    if ctl.enabled(ObsLevel::Summary) {
        ctl.begin(tlp_obs::Category::Phase, "phase.fa", vec![]);
    }
    let fa = run_fa(&sp, &scene, &fragments, &consistents);
    if ctl.enabled(ObsLevel::Summary) {
        ctl.end(
            tlp_obs::Category::Phase,
            "phase.fa",
            vec![("firings", fa.firings.into())],
        );
    }
    println!(
        "FA     : {} areas, {} predictions, {} firings",
        fa.areas.len(),
        fa.predictions,
        fa.firings
    );

    if o.topdown {
        let td = run_topdown(&sp, &scene, &fragments, &fa, &fa.prediction_list);
        println!(
            "TOPDOWN: {} predicted hypotheses, {} confirmed, {} re-entry firings",
            td.predicted.len(),
            td.confirmed,
            td.firings
        );
        consistents.extend(td.consistents.iter().copied());
        fragments = Arc::new(td.fragments);
    }

    if ctl.enabled(ObsLevel::Summary) {
        ctl.begin(tlp_obs::Category::Phase, "phase.model", vec![]);
    }
    let model = run_model(&sp, &scene, &fragments, &fa.areas, &fa.members);
    if ctl.enabled(ObsLevel::Summary) {
        ctl.end(tlp_obs::Category::Phase, "phase.model", vec![]);
    }
    println!(
        "MODEL  : {} model(s), {} areas, score {}, coverage {:.0}%, window overlap {:.1}%",
        model.models,
        model.areas_used,
        model.score,
        100.0 * model.metrics.coverage,
        100.0 * model.metrics.window_overlap
    );

    if !o.quiet {
        let mut best: Vec<_> = fragments.iter().collect();
        best.sort_by_key(|f| -f.support);
        println!("top hypotheses:");
        for f in best.iter().take(8) {
            println!(
                "  fragment {:>4} region {:>4} {:<18} support {:>3}",
                f.id,
                f.region,
                f.kind.name(),
                f.support
            );
        }
    }

    if o.sweep {
        let trace = spam_psm::trace::lcc_trace(&lcc);
        println!("simulated Encore sweep (task processes: speed-up):");
        for (n, s) in spam_psm::tlp::simulated_tlp_curve(&trace, 14) {
            print!("  {n}:{s:.2}");
        }
        println!();
    }

    if rec.enabled(ObsLevel::Summary) || o.trace_out.is_some() || o.metrics_out.is_some() {
        ctl.flush();
        let trace = spam_psm::trace::lcc_trace(&lcc);
        let sim_workers = (o.workers as u32).max(1);
        let sim = multimax_sim::simulate(
            &multimax_sim::SimConfig::encore(sim_workers),
            &trace.tasks.tasks,
        );
        let tl = sim.timeline(&format!("encore-sim-{sim_workers}p"));

        if o.obs == ObsLevel::Full {
            println!(
                "simulated Encore Gantt ({sim_workers} task processes, makespan {:.0}s, coverage {:.1}%):",
                sim.makespan,
                100.0 * tl.coverage()
            );
            print!("{}", tl.gantt(72));
        }

        if let Some(path) = &o.trace_out {
            let mut doc = tlp_obs::TraceDoc::new();
            doc.add_recorder("spamctl", &rec);
            doc.add_timeline(&tl);
            if let Err(e) = std::fs::write(path, doc.write()) {
                eprintln!("cannot write {path}: {e}");
                return ExitCode::FAILURE;
            }
            println!(
                "trace  : {} events -> {path} (chrome://tracing / Perfetto)",
                rec.len()
            );
        }

        if let Some(path) = &o.metrics_out {
            let reg = tlp_obs::MetricsRegistry::new();
            spam_psm::trace::record_phase_metrics(
                &reg,
                "lcc",
                &trace,
                supervised.then_some(&lcc.report),
            );
            spam_psm::trace::record_sim_metrics(&reg, "lcc", &sim);
            if let Err(e) = std::fs::write(path, reg.to_json().write()) {
                eprintln!("cannot write {path}: {e}");
                return ExitCode::FAILURE;
            }
            println!("metrics: snapshot -> {path}");
        }
    }
    ExitCode::SUCCESS
}
