//! `spamctl` — drive the SPAM interpretation pipeline from the command line.
//!
//! ```sh
//! spamctl [run] [sf|dc|moff|suburb] [--level 1|2|3|4] [--workers N]
//!         [--exec real|sim]
//!         [--machines 1|2] [--svm tuned|naive] [--skew-ms X] [--drift-ppm X]
//!         [--retries K] [--deadline-ms MS] [--fault-seed S]
//!         [--task-panic-rate P] [--topdown] [--sweep] [--quiet]
//!         [--obs off|summary|full] [--trace-out F] [--metrics-out F]
//!         [--live] [--serve ADDR] [--serve-linger-ms MS]
//!         [--metrics-snapshot F]
//! spamctl profile [sf|dc|moff|suburb] [--level 1|2|3|4] [--top K]
//!         [--json F] [--check-band LO:HI]
//! spamctl svm-report [sf|dc|moff|suburb] [--level 1|2|3|4] [--workers N]
//!         [--svm tuned|naive] [--skew-ms X] [--drift-ppm X] [--top K]
//!         [--json F] [--trace-out F] [--check-loss LO:HI]
//! spamctl chaos [sf|dc|moff|suburb] [--level 1|2|3|4] [--seed N]
//!         [--kills K] [--interval C] [--workers N] [--retries K]
//! spamctl whatif [sf|dc|moff|suburb] [--level 1|2|3|4] [--workers N]
//!         [--target prod:<name>|task:<id>|level:<n>|component:<fork|dequeue>|match]
//!         [--scale PCT] [--top N] [--json F] [--unshared]
//! spamctl top [--url http://HOST:PORT] [--interval-ms MS] [--iters N]
//! spamctl slow [--level 1|2|3|4] [--workers N] [--retries K]
//!         [--fault-seed S] [--task-panic-rate P] [--unshared]
//! spamctl trace <id> (--from F | --url http://HOST:PORT)
//! ```
//!
//! * default: run the full pipeline and print the interpretation summary
//!   (`run` is an optional explicit subcommand for the same thing);
//! * `profile`: run the LCC phase under the match-level profiler and print
//!   the speed-up-doctor report — hot productions and alpha memories,
//!   the per-phase Amdahl decomposition, the ideal-vs-measured gap
//!   attribution, the critical task chain, and predicted-vs-measured
//!   combined speed-ups. `--json F` also writes the machine-readable
//!   report; `--check-band LO:HI` exits non-zero unless the measured
//!   match fraction lies in `[LO, HI]` (the CI perf-smoke gate);
//! * `svm-report`: run the two-machine SVM simulation of the LCC phase
//!   (dataset defaults to `sf`, the paper's Figure 9 scene; 20 task
//!   processes = 13 local + 7 remote) and print the **overhead
//!   accountant** — the exact gap decomposition (fork / queue / warmup /
//!   page-wait / transfer / skew-residual / idle), page-coherence
//!   counters, the clock-stitch fit, and the headline effective-
//!   processors-lost figure (paper §7: ≈1.5). `--check-loss LO:HI` exits
//!   non-zero unless the figure lies in `[LO, HI]` (the CI gate);
//!   `--trace-out F` writes the stitched two-machine Chrome trace;
//! * `whatif`: the causal what-if profiler — replay the recorded LCC trace
//!   (and its match profile) with a **virtual speedup** applied to a
//!   target, re-simulate under the Encore cost model, and print the ranked
//!   "optimize this next" report: predicted makespan, wall-clock saving,
//!   critical-chain movement and a diminishing-returns curve
//!   (10/25/50/75/100%) per candidate. Without `--target` the candidates
//!   are the whole-phase match, the hottest productions, the actionable
//!   cost-model components (fork, dequeue), and the critical-chain task;
//!   `--target` restricts the report to one of them. `--scale PCT` sets
//!   the reference virtual speedup (default 50); `--json F` writes the
//!   machine-readable report;
//! * `chaos`: seeded crash-recovery acceptance run — a fault-free LCC run
//!   fixes the expected results, `chaos_schedule` derives mid-cycle kills
//!   (plus a kill inside the checkpoint hold and a torn WAL tail), and the
//!   checkpoint + WAL recovery path must reproduce the fault-free results
//!   exactly while replaying strictly fewer cycles than from-scratch
//!   retries. Exits non-zero (and prints the replayable fault plan) on any
//!   divergence; `--seed N` / `--kills K` / `--interval C` pick the
//!   schedule and checkpoint cadence;
//! * `--machines 2` makes `run` replay the measured trace on the
//!   dual-Encore SVM platform instead of one Encore: the Gantt chart
//!   (at `--obs full`) becomes a two-machine chart, the Chrome trace
//!   carries one `pid` lane per machine (clock domains stitched from the
//!   page-fault exchanges), and coherence/stitch summaries are printed;
//! * `--svm` picks the netmemory cost model (`tuned`, the paper's final
//!   system, or `naive`, the pre-layout-fix one; default `tuned`);
//! * `--skew-ms` / `--drift-ppm` set the remote machine's clock error
//!   (defaults −3.5 ms, 80 ppm — exercises the stitcher; the home clock
//!   is the reference);
//! * `--level` selects the LCC decomposition level (default 3);
//! * `--workers N` runs LCC with N real task-process threads (SPAM/PSM);
//! * `--exec real|sim` picks the LCC execution substrate (default `sim`):
//!   `real` runs the units on the work-stealing executor (`spam_psm::exec`
//!   — per-worker deques, cost-model-sized chunks, idle workers stealing)
//!   and prints the measured wall-clock schedule: per-worker utilization,
//!   steal and overflow counters. Scene results are bit-identical to
//!   `sim` and to the sequential run; only the measured report differs.
//!   With `--obs full` the Gantt and Chrome trace additionally carry the
//!   measured (wall-clock) timeline next to the simulated one;
//! * `--retries K` allows K supervised retries per LCC task;
//! * `--deadline-ms MS` sets a soft per-task deadline;
//! * `--fault-seed S` + `--task-panic-rate P` inject deterministic task
//!   panics (demonstrates fault isolation — the run completes partially
//!   and prints the task report);
//! * `--topdown` follows FA predictions back into LCC (§2.2 re-entry);
//! * `--sweep` prints the simulated Encore speed-up curve for the run;
//! * `--obs` sets the flight-recorder level (default `off`; `full` also
//!   prints the simulated per-processor Gantt chart);
//! * `--trace-out F` writes a Chrome `trace_event` file (open in
//!   `chrome://tracing` or Perfetto) with the recorded events plus the
//!   simulated Encore timeline of the LCC phase;
//! * `--metrics-out F` writes the metrics-registry snapshot (service-time,
//!   queue-wait, match-fraction histograms; counters; gauges) as JSON.
//! * `--live` turns on the always-on live telemetry registry
//!   (`tlp-obs::live`): the supervisor, the per-worker engines, and the
//!   SLO monitor publish `spam_live_*` / `spam_slo_*` sliding-window
//!   series while the run executes. Results are bit-identical with the
//!   telemetry on or off;
//! * `--serve ADDR` (implies `--live`) starts the blocking HTTP
//!   exposition endpoint on `ADDR` (e.g. `127.0.0.1:9184`; port 0 picks a
//!   free port) with routes `/metrics` (OpenMetrics text), `/healthz`
//!   (SLO health JSON, HTTP 503 when degraded) and `/snapshot` (windowed
//!   JSON for `spamctl top`);
//! * `--serve-linger-ms MS` keeps the endpoint up for `MS` milliseconds
//!   after the pipeline finishes, so a scraper or `spamctl top` can
//!   observe the final state (default 0: shut down immediately);
//! * `--metrics-snapshot F` (implies `--live`) writes the final
//!   OpenMetrics exposition to `F` — the same bytes `/metrics` would
//!   serve — so CI can validate the exposition without scraping a port;
//! * `top`: a live terminal dashboard. Polls `/snapshot` on a serving
//!   `spamctl run --serve ...` process and renders per-worker utilization
//!   bars, queue/conflict-set/WM depths, match-units and task throughput,
//!   retry/recovery counters, and the SLO burn-rate gauges. `--iters N`
//!   stops after N frames (default 0 = poll until the endpoint goes
//!   away); `--interval-ms` sets the poll cadence (default 1000).
//! * `--unshared` (any subcommand) runs every engine on the historical
//!   one-chain-per-production, linear-scan Rete instead of the shared +
//!   indexed network — the baseline for the sharing experiments. Results
//!   are identical; only the match work (and anything derived from it)
//!   changes.
//! * `--trace-sample` turns on scene-scoped request tracing
//!   (`tlp-obs::tracectx`): the scene submission mints a deterministic
//!   trace id (from `--fault-seed` + the dataset name) and a root span,
//!   and the supervisor propagates the trace context through task spawn,
//!   retry, dead-letter, recovery, and per-cycle engine emissions. The
//!   tail sampler decides at completion whether to keep full span detail
//!   (errored / SLO-breaching / slowest-N) or a one-line summary. With
//!   `--serve`, retained traces are browsable at `/traces` and
//!   `/trace/<id>`, and the task-latency histogram carries OpenMetrics
//!   exemplars linking its tail bucket to a retained trace. Results are
//!   bit-identical with tracing on or off;
//! * `--traces-out F` (implies `--trace-sample`) writes the retained
//!   traces as a `{"traces": […]}` JSON document (feed to
//!   `tracecheck --spans` or `spamctl trace <id> --from F`);
//! * `slow`: "why was this scene slow?" in one command — runs all four
//!   datasets as traced scene submissions under the tail sampler, then
//!   prints the retained traces ranked by wall duration with a per-scene
//!   gap attribution (busy vs. wall, worker utilization, longest task
//!   attempt, retry/dead-letter counts) and the one-line summaries for
//!   everything the sampler declined to keep;
//! * `trace <id>`: reconstructs one retained trace — the ASCII span tree
//!   (workers, durations, errors) plus the critical task chain recomputed
//!   from the trace's recorded per-task service table via
//!   `core::attribution::critical_path_of`, cross-checked against the
//!   longest measured task attempt. `--from F` reads a `--traces-out`
//!   file; `--url` fetches `/trace/<id>` from a serving `spamctl run`.
//!   `<id>` may be a unique hex prefix (>= 4 chars).

use spam::fa::run_fa;
use spam::lcc::Level;
use spam::model::run_model;
use spam::phases::MIPS;
use spam::rtf::run_rtf;
use spam::rules::SpamProgram;
use spam::scene::Scene;
use spam::topdown::run_topdown;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;
use tlp_fault::{FaultPlan, SupervisorConfig};
use tlp_obs::json::Json;
use tlp_obs::{
    Live, ObsLevel, Recorder, RetainedTrace, SampleVerdict, SamplerConfig, SloConfig, SloMonitor,
    SpanKind, Tracing,
};

struct Opts {
    profile: bool,
    svm_report: bool,
    chaos: bool,
    whatif: bool,
    target: Option<String>,
    scale_pct: f64,
    chaos_seed: u64,
    kills: u32,
    ckpt_interval: u64,
    top: usize,
    json_out: Option<String>,
    check_band: Option<(f64, f64)>,
    check_loss: Option<(f64, f64)>,
    dataset: Option<String>,
    level: Level,
    workers: Option<usize>,
    exec_mode: String,
    machines: u32,
    svm_mode: String,
    skew_ms: f64,
    drift_ppm: f64,
    retries: u32,
    deadline_ms: Option<u64>,
    fault_seed: u64,
    task_panic_rate: f64,
    topdown: bool,
    sweep: bool,
    quiet: bool,
    unshared: bool,
    obs: ObsLevel,
    trace_out: Option<String>,
    metrics_out: Option<String>,
    live: bool,
    serve: Option<String>,
    serve_linger_ms: u64,
    metrics_snapshot: Option<String>,
    top_cmd: bool,
    top_url: String,
    top_interval_ms: u64,
    top_iters: u64,
    trace_sample: bool,
    traces_out: Option<String>,
    slow_cmd: bool,
    trace_cmd: Option<String>,
    trace_from: Option<String>,
}

fn parse_args() -> Result<Opts, String> {
    let mut o = Opts {
        profile: false,
        svm_report: false,
        chaos: false,
        whatif: false,
        target: None,
        scale_pct: 50.0,
        chaos_seed: 42,
        kills: 3,
        ckpt_interval: 4,
        top: 10,
        json_out: None,
        check_band: None,
        check_loss: None,
        dataset: None,
        level: Level::L3,
        workers: None,
        exec_mode: "sim".into(),
        machines: 1,
        svm_mode: "tuned".into(),
        skew_ms: -3.5,
        drift_ppm: 80.0,
        retries: 0,
        deadline_ms: None,
        fault_seed: 0,
        task_panic_rate: 0.0,
        topdown: false,
        sweep: false,
        quiet: false,
        unshared: false,
        obs: ObsLevel::Off,
        trace_out: None,
        metrics_out: None,
        live: false,
        serve: None,
        serve_linger_ms: 0,
        metrics_snapshot: None,
        top_cmd: false,
        top_url: "http://127.0.0.1:9184".into(),
        top_interval_ms: 1000,
        top_iters: 0,
        trace_sample: false,
        traces_out: None,
        slow_cmd: false,
        trace_cmd: None,
        trace_from: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "run" => {} // explicit default subcommand
            "profile" => o.profile = true,
            "svm-report" => o.svm_report = true,
            "chaos" => o.chaos = true,
            "whatif" => o.whatif = true,
            "top" => o.top_cmd = true,
            "slow" => o.slow_cmd = true,
            "trace" => {
                o.trace_cmd = Some(args.next().ok_or("trace needs a trace id (hex)")?);
            }
            "--trace-sample" => o.trace_sample = true,
            "--traces-out" => {
                o.traces_out = Some(args.next().ok_or("--traces-out needs a path")?);
            }
            "--from" => {
                o.trace_from = Some(args.next().ok_or("--from needs a path")?);
            }
            "--live" => o.live = true,
            "--serve" => {
                o.serve = Some(args.next().ok_or("--serve needs HOST:PORT")?);
            }
            "--serve-linger-ms" => {
                o.serve_linger_ms = args
                    .next()
                    .ok_or("--serve-linger-ms needs a value")?
                    .parse()
                    .map_err(|e| format!("bad --serve-linger-ms: {e}"))?;
            }
            "--metrics-snapshot" => {
                o.metrics_snapshot = Some(args.next().ok_or("--metrics-snapshot needs a path")?);
            }
            "--url" => {
                let v = args.next().ok_or("--url needs http://HOST:PORT")?;
                if !v.starts_with("http://") {
                    return Err(format!("bad --url '{v}' (want http://HOST:PORT)"));
                }
                o.top_url = v;
            }
            "--interval-ms" => {
                o.top_interval_ms = args
                    .next()
                    .ok_or("--interval-ms needs a value")?
                    .parse()
                    .map_err(|e| format!("bad --interval-ms: {e}"))?;
                if o.top_interval_ms == 0 {
                    return Err("--interval-ms must be >= 1".into());
                }
            }
            "--iters" => {
                o.top_iters = args
                    .next()
                    .ok_or("--iters needs a value")?
                    .parse()
                    .map_err(|e| format!("bad --iters: {e}"))?;
            }
            "--target" => {
                o.target = Some(args.next().ok_or("--target needs a value")?);
            }
            "--scale" => {
                o.scale_pct = args
                    .next()
                    .ok_or("--scale needs a percentage")?
                    .parse()
                    .map_err(|e| format!("bad --scale: {e}"))?;
                if !(0.0..=100.0).contains(&o.scale_pct) {
                    return Err("--scale must be in [0, 100]".into());
                }
            }
            "--seed" => {
                o.chaos_seed = args
                    .next()
                    .ok_or("--seed needs a value")?
                    .parse()
                    .map_err(|e| format!("bad --seed: {e}"))?;
            }
            "--kills" => {
                o.kills = args
                    .next()
                    .ok_or("--kills needs a value")?
                    .parse()
                    .map_err(|e| format!("bad --kills: {e}"))?;
            }
            "--interval" => {
                o.ckpt_interval = args
                    .next()
                    .ok_or("--interval needs a value")?
                    .parse()
                    .map_err(|e| format!("bad --interval: {e}"))?;
                if o.ckpt_interval == 0 {
                    return Err("--interval must be >= 1".into());
                }
            }
            "--top" => {
                o.top = args
                    .next()
                    .ok_or("--top needs a value")?
                    .parse()
                    .map_err(|e| format!("bad --top: {e}"))?;
            }
            "--json" => {
                o.json_out = Some(args.next().ok_or("--json needs a path")?);
            }
            "--check-band" => {
                let v = args.next().ok_or("--check-band needs LO:HI")?;
                let (lo, hi) = v
                    .split_once(':')
                    .ok_or(format!("bad --check-band '{v}' (want LO:HI)"))?;
                let lo: f64 = lo.parse().map_err(|e| format!("bad --check-band: {e}"))?;
                let hi: f64 = hi.parse().map_err(|e| format!("bad --check-band: {e}"))?;
                if !(0.0..=1.0).contains(&lo) || !(0.0..=1.0).contains(&hi) || lo > hi {
                    return Err(format!("bad --check-band {lo}:{hi}"));
                }
                o.check_band = Some((lo, hi));
            }
            "sf" | "dc" | "moff" | "suburb" => o.dataset = Some(a),
            "--machines" => {
                o.machines = args
                    .next()
                    .ok_or("--machines needs 1 or 2")?
                    .parse()
                    .map_err(|e| format!("bad --machines: {e}"))?;
                if !(1..=2).contains(&o.machines) {
                    return Err("--machines must be 1 or 2".into());
                }
            }
            "--svm" => {
                let v = args.next().ok_or("--svm needs tuned|naive")?;
                if v != "tuned" && v != "naive" {
                    return Err(format!("bad --svm '{v}' (want tuned|naive)"));
                }
                o.svm_mode = v;
            }
            "--skew-ms" => {
                o.skew_ms = args
                    .next()
                    .ok_or("--skew-ms needs a value")?
                    .parse()
                    .map_err(|e| format!("bad --skew-ms: {e}"))?;
                if o.skew_ms.abs() > 1_000.0 {
                    return Err("--skew-ms must be within +/-1000".into());
                }
            }
            "--drift-ppm" => {
                o.drift_ppm = args
                    .next()
                    .ok_or("--drift-ppm needs a value")?
                    .parse()
                    .map_err(|e| format!("bad --drift-ppm: {e}"))?;
            }
            "--check-loss" => {
                let v = args.next().ok_or("--check-loss needs LO:HI")?;
                let (lo, hi) = v
                    .split_once(':')
                    .ok_or(format!("bad --check-loss '{v}' (want LO:HI)"))?;
                let lo: f64 = lo.parse().map_err(|e| format!("bad --check-loss: {e}"))?;
                let hi: f64 = hi.parse().map_err(|e| format!("bad --check-loss: {e}"))?;
                if lo > hi {
                    return Err(format!("bad --check-loss {lo}:{hi}"));
                }
                o.check_loss = Some((lo, hi));
            }
            "--level" => {
                o.level = match args.next().as_deref() {
                    Some("1") => Level::L1,
                    Some("2") => Level::L2,
                    Some("3") => Level::L3,
                    Some("4") => Level::L4,
                    other => return Err(format!("bad --level {other:?}")),
                }
            }
            "--workers" => {
                let w: usize = args
                    .next()
                    .ok_or("--workers needs a value")?
                    .parse()
                    .map_err(|e| format!("bad --workers: {e}"))?;
                if w == 0 {
                    return Err("--workers must be >= 1".into());
                }
                o.workers = Some(w);
            }
            "--exec" => {
                let v = args.next().ok_or("--exec needs real|sim")?;
                if v != "real" && v != "sim" {
                    return Err(format!("bad --exec '{v}' (want real|sim)"));
                }
                o.exec_mode = v;
            }
            "--retries" => {
                o.retries = args
                    .next()
                    .ok_or("--retries needs a value")?
                    .parse()
                    .map_err(|e| format!("bad --retries: {e}"))?;
            }
            "--deadline-ms" => {
                o.deadline_ms = Some(
                    args.next()
                        .ok_or("--deadline-ms needs a value")?
                        .parse()
                        .map_err(|e| format!("bad --deadline-ms: {e}"))?,
                );
            }
            "--fault-seed" => {
                o.fault_seed = args
                    .next()
                    .ok_or("--fault-seed needs a value")?
                    .parse()
                    .map_err(|e| format!("bad --fault-seed: {e}"))?;
            }
            "--task-panic-rate" => {
                o.task_panic_rate = args
                    .next()
                    .ok_or("--task-panic-rate needs a value")?
                    .parse()
                    .map_err(|e| format!("bad --task-panic-rate: {e}"))?;
                if !(0.0..=1.0).contains(&o.task_panic_rate) {
                    return Err("--task-panic-rate must be in [0, 1]".into());
                }
            }
            "--topdown" => o.topdown = true,
            "--sweep" => o.sweep = true,
            "--quiet" => o.quiet = true,
            "--unshared" => o.unshared = true,
            "--obs" => {
                let v = args.next().ok_or("--obs needs off|summary|full")?;
                o.obs = ObsLevel::parse(&v).ok_or(format!("bad --obs '{v}'"))?;
            }
            "--trace-out" => {
                o.trace_out = Some(args.next().ok_or("--trace-out needs a path")?);
            }
            "--metrics-out" => {
                o.metrics_out = Some(args.next().ok_or("--metrics-out needs a path")?);
            }
            "--help" | "-h" => {
                return Err(
                    "usage: spamctl [run] [sf|dc|moff|suburb] [--level 1|2|3|4] [--workers N] \
                     [--exec real|sim] \
                     [--machines 1|2] [--svm tuned|naive] [--skew-ms X] [--drift-ppm X] \
                     [--retries K] [--deadline-ms MS] [--fault-seed S] \
                     [--task-panic-rate P] [--topdown] [--sweep] [--quiet] [--unshared] \
                     [--obs off|summary|full] [--trace-out F] [--metrics-out F] \
                     [--live] [--serve ADDR] [--serve-linger-ms MS] [--metrics-snapshot F] \
                     [--trace-sample] [--traces-out F]\n\
                     \x20      spamctl profile [sf|dc|moff|suburb] [--level 1|2|3|4] [--top K] \
                     [--json F] [--check-band LO:HI]\n\
                     \x20      spamctl svm-report [sf|dc|moff|suburb] [--level 1|2|3|4] \
                     [--workers N] [--svm tuned|naive] [--skew-ms X] [--drift-ppm X] [--top K] \
                     [--json F] [--trace-out F] [--check-loss LO:HI]\n\
                     \x20      spamctl chaos [sf|dc|moff|suburb] [--level 1|2|3|4] [--seed N] \
                     [--kills K] [--interval C] [--workers N] [--retries K]\n\
                     \x20      spamctl whatif [sf|dc|moff|suburb] [--level 1|2|3|4] [--workers N] \
                     [--target prod:<name>|task:<id>|level:<n>|component:<fork|dequeue>|match] \
                     [--scale PCT] [--top N] [--json F] [--unshared]\n\
                     \x20      spamctl top [--url http://HOST:PORT] [--interval-ms MS] [--iters N]\n\
                     \x20      spamctl slow [--level 1|2|3|4] [--workers N] [--retries K] \
                     [--fault-seed S] [--task-panic-rate P] [--unshared]\n\
                     \x20      spamctl trace <id> (--from F | --url http://HOST:PORT)"
                        .into(),
                )
            }
            other => return Err(format!("unknown argument '{other}'")),
        }
    }
    Ok(o)
}

fn build_scene(name: &str) -> Arc<Scene> {
    Arc::new(match name {
        "sf" => spam::generate_scene(&spam::datasets::sf().spec),
        "dc" => spam::generate_scene(&spam::datasets::dc().spec),
        "suburb" => spam::generate_suburb(&spam::generate::SuburbSpec::demo()),
        _ => spam::generate_scene(&spam::datasets::moff().spec),
    })
}

/// The `profile` subcommand: run RTF then the LCC phase under the
/// match-level profiler and print / write the speed-up-doctor report.
fn run_profile(o: &Opts, sp: &SpamProgram, scene: &Arc<Scene>) -> ExitCode {
    println!(
        "spamctl profile: {} ({:?}), {} regions, LCC at {}",
        scene.name,
        scene.domain,
        scene.len(),
        o.level.name(),
    );
    let rtf = run_rtf(sp, scene);
    let fragments = Arc::new(rtf.fragments.clone());
    let (row, profile, phase) = spam_psm::measure::profiled_lcc(sp, scene, &fragments, o.level);
    println!(
        "LCC    : {} tasks, {} firings, {:.0} simulated s",
        row.tasks, row.prods_fired, row.total_seconds
    );
    let Some(profile) = profile else {
        eprintln!("profile: ops5 built without the `profiler` feature; no report");
        return if o.check_band.is_some() {
            ExitCode::FAILURE
        } else {
            ExitCode::SUCCESS
        };
    };
    let net = profile.net;
    println!(
        "network: {} beta nodes ({} unshared, {:.2}x sharing), {} shared-node hits, \
         {} index probes vs {} linear scans, {} memoised alpha tests",
        net.beta_nodes,
        net.unshared_beta_nodes,
        net.unshared_beta_nodes as f64 / net.beta_nodes.max(1) as f64,
        net.shared_node_hits,
        net.index_probes,
        net.linear_scans,
        net.shared_test_hits,
    );
    let trace = spam_psm::trace::lcc_trace(&phase);
    let report = spam_psm::attribution::build_report(
        scene.name.clone(),
        format!("LCC {}", o.level.name()),
        profile,
        &trace,
        &[2, 6, 10, 14],
        &[(2, 1), (4, 1), (4, 2), (6, 2)],
        &paraops5::costmodel::CostModel::default(),
        o.top,
    );
    println!();
    print!("{report}");

    if let Some(path) = &o.json_out {
        if let Err(e) = std::fs::write(path, report.to_json().write()) {
            eprintln!("cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("\nprofile: report -> {path}");
    }

    if let Some((lo, hi)) = o.check_band {
        let mf = report.match_fraction();
        if (lo..=hi).contains(&mf) {
            println!("\ncheck  : match fraction {mf:.3} in [{lo}, {hi}] — ok");
        } else {
            eprintln!("\ncheck  : match fraction {mf:.3} OUTSIDE [{lo}, {hi}]");
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}

/// The LCC level's number (for validating a `level:<n>` what-if target
/// against the level actually recorded).
fn level_number(level: Level) -> u32 {
    match level {
        Level::L1 => 1,
        Level::L2 => 2,
        Level::L3 => 3,
        Level::L4 => 4,
    }
}

/// The `whatif` subcommand: run the LCC phase under the profiler, then
/// replay the recorded trace with virtual speedups applied and print the
/// ranked "optimize this next" report (or the single `--target` one).
fn run_whatif(o: &Opts, sp: &SpamProgram, scene: &Arc<Scene>) -> ExitCode {
    let workers = o.workers.unwrap_or(8).max(1) as u32;
    println!(
        "spamctl whatif: {} ({:?}), {} regions, LCC at {}, {} task processes, \
         virtual speedup {:.0}%",
        scene.name,
        scene.domain,
        scene.len(),
        o.level.name(),
        workers,
        o.scale_pct,
    );
    let rtf = run_rtf(sp, scene);
    let fragments = Arc::new(rtf.fragments.clone());
    let (row, profile, phase) = spam_psm::measure::profiled_lcc(sp, scene, &fragments, o.level);
    println!(
        "LCC    : {} tasks, {} firings, {:.0} simulated s",
        row.tasks, row.prods_fired, row.total_seconds
    );
    if profile.is_none() {
        println!("profile: ops5 built without the `profiler` feature; prod: targets unavailable");
    }
    let trace = spam_psm::trace::lcc_trace(&phase);
    let cfg = multimax_sim::SimConfig::encore(workers);
    let level_label = format!("LCC {}", o.level.name());

    let report = match &o.target {
        Some(t) => {
            let target = match spam_psm::whatif::Target::parse(t) {
                Ok(t) => t,
                Err(e) => {
                    eprintln!("whatif: {e}");
                    return ExitCode::FAILURE;
                }
            };
            if let spam_psm::whatif::Target::Level(n) = target {
                if n != level_number(o.level) {
                    eprintln!(
                        "whatif: level:{n} does not name the recorded level ({}); \
                         re-run with --level {n}",
                        level_number(o.level)
                    );
                    return ExitCode::FAILURE;
                }
            }
            spam_psm::whatif::build_report_for(
                scene.name.clone(),
                level_label,
                &trace,
                profile.as_ref(),
                &cfg,
                o.scale_pct,
                &[target],
            )
        }
        None => spam_psm::whatif::build_whatif_report(
            scene.name.clone(),
            level_label,
            &trace,
            profile.as_ref(),
            &cfg,
            o.scale_pct,
            o.top,
        ),
    };
    let report = match report {
        Ok(r) => r,
        Err(e) => {
            eprintln!("whatif: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!();
    print!("{report}");
    if let Some(path) = &o.json_out {
        if let Err(e) = std::fs::write(path, report.to_json().write()) {
            eprintln!("cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("\nwhatif : report -> {path}");
    }
    ExitCode::SUCCESS
}

/// Resolves the SVM cost model named by `--svm`.
fn svm_model(mode: &str) -> multimax_sim::SvmConfig {
    if mode == "naive" {
        multimax_sim::SvmConfig::naive()
    } else {
        multimax_sim::SvmConfig::tuned()
    }
}

/// The two-machine simulation configuration for the CLI's clock flags.
fn svm_sim_config(o: &Opts, workers: u32) -> multimax_sim::SvmSimConfig {
    let mut cfg = multimax_sim::SvmSimConfig::dual_encore(workers);
    cfg.sim.svm = svm_model(&o.svm_mode);
    cfg.remote_clock =
        multimax_sim::ClockDomain::new((o.skew_ms * 1e3).round() as i64, o.drift_ppm);
    cfg
}

/// Writes the stitched two-machine Chrome trace: one `pid` lane per
/// machine (remote clock aligned to home) plus both simulated timelines.
fn write_svm_trace(
    path: &str,
    r: &multimax_sim::SvmSimResult,
    rec: Option<&Recorder>,
) -> Result<usize, String> {
    let mut doc = tlp_obs::TraceDoc::new();
    if let Some(rec) = rec {
        doc.add_recorder("spamctl", rec);
    }
    match tlp_obs::stitch(r.home.clone(), r.remote.clone()) {
        Ok(s) => {
            doc.add_machine(&s.home);
            doc.add_machine(&s.remote);
        }
        // No exchanges to align on (e.g. no remote workers): emit the raw
        // logs; each machine still gets its own pid lane.
        Err(_) => {
            doc.add_machine(&r.home);
            doc.add_machine(&r.remote);
        }
    }
    let (home_tl, remote_tl) = r.timelines();
    doc.add_timeline(&home_tl);
    doc.add_timeline(&remote_tl);
    let events = r.home.events.len() + r.remote.events.len();
    std::fs::write(path, doc.write()).map_err(|e| format!("cannot write {path}: {e}"))?;
    Ok(events)
}

/// The `svm-report` subcommand: run LCC, replay the measured trace on the
/// two-machine SVM platform, and print the overhead accountant.
fn run_svm_report(o: &Opts, sp: &SpamProgram, scene: &Arc<Scene>) -> ExitCode {
    let workers = o.workers.unwrap_or(20).max(1) as u32;
    println!(
        "spamctl svm-report: {} ({:?}), {} regions, LCC at {}, {} task processes, {} netmemory",
        scene.name,
        scene.domain,
        scene.len(),
        o.level.name(),
        workers,
        o.svm_mode,
    );
    let rtf = run_rtf(sp, scene);
    let fragments = Arc::new(rtf.fragments.clone());
    let lcc = spam::lcc::run_lcc(sp, scene, &fragments, o.level);
    let trace = spam_psm::trace::lcc_trace(&lcc);
    println!(
        "LCC    : {} tasks, {} firings, {:.0} simulated s",
        trace.tasks.len(),
        lcc.firings,
        lcc.work.seconds_at(MIPS)
    );

    let mut cfg = svm_sim_config(o, workers);
    cfg.level = ObsLevel::Full;
    let r = multimax_sim::simulate_svm(&cfg, &trace.tasks.tasks);
    let report = spam_psm::attribution::build_svm_report(
        scene.name.clone(),
        format!("LCC {}", o.level.name()),
        o.svm_mode.clone(),
        &r,
        &trace.tasks,
        o.top,
    );
    println!();
    print!("{report}");

    if let Some(path) = &o.trace_out {
        match write_svm_trace(path, &r, None) {
            Ok(events) => println!(
                "trace  : {events} events, 2 machine pids -> {path} (chrome://tracing / Perfetto)"
            ),
            Err(e) => {
                eprintln!("{e}");
                return ExitCode::FAILURE;
            }
        }
    }
    if let Some(path) = &o.json_out {
        if let Err(e) = std::fs::write(path, report.to_json().write()) {
            eprintln!("cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("svm-report: json -> {path}");
    }
    if let Some((lo, hi)) = o.check_loss {
        if (lo..=hi).contains(&report.lost) {
            println!(
                "\ncheck  : effective processors lost {:.2} in [{lo}, {hi}] — ok",
                report.lost
            );
        } else {
            eprintln!(
                "\ncheck  : effective processors lost {:.2} OUTSIDE [{lo}, {hi}]",
                report.lost
            );
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}

/// The `chaos` subcommand: a seeded crash-recovery acceptance run. A
/// fault-free sequential LCC run fixes the expected results and the
/// per-task cycle counts; `chaos_schedule` then derives a kill plan
/// (mid-cycle kills at checkpointable cycles, one kill while holding the
/// checkpoint lock, one torn WAL tail) and the recoverable parallel runner
/// must reproduce the fault-free results exactly while replaying strictly
/// fewer cycles than from-scratch retries would. On any failure the full
/// fault plan (seed and schedule) is printed so the run can be replayed.
fn run_chaos(o: &Opts, sp: &SpamProgram, scene: &Arc<Scene>) -> ExitCode {
    let workers = o.workers.unwrap_or(3).max(1);
    println!(
        "spamctl chaos: {} ({:?}), {} regions, LCC at {}, seed {}, {} kill(s), \
         checkpoint every {} cycles, {} worker(s)",
        scene.name,
        scene.domain,
        scene.len(),
        o.level.name(),
        o.chaos_seed,
        o.kills,
        o.ckpt_interval,
        workers,
    );
    let rtf = run_rtf(sp, scene);
    let fragments = Arc::new(rtf.fragments.clone());

    // Fault-free reference: fixes expected results and per-task cycles.
    let seq = spam::lcc::run_lcc(sp, scene, &fragments, o.level);
    let task_cycles: Vec<u64> = seq.units.iter().map(|u| u.firings).collect();
    println!(
        "baseline: {} tasks, {} firings, {} consistency records",
        seq.units.len(),
        seq.firings,
        seq.consistents.len()
    );

    let plan = tlp_fault::chaos_schedule(o.chaos_seed, o.kills, &task_cycles, o.ckpt_interval);
    let victims: Vec<usize> = (0..task_cycles.len())
        .filter(|&t| plan.cycle_kill(t, 0).is_some())
        .collect();
    print!("{}", plan.describe());

    let retries = o.retries.max(3);
    let cfg = SupervisorConfig::default()
        .with_retries(retries)
        .with_backoff(Duration::from_millis(1));
    let (par, recovery) = match spam_psm::run_parallel_lcc_recoverable(
        sp,
        scene,
        &fragments,
        o.level,
        workers,
        &cfg,
        &plan,
        &Recorder::off(),
        &spam_psm::CheckpointConfig::every(o.ckpt_interval),
        None,
    ) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("chaos run failed to complete: {e}\n{}", plan.describe());
            return ExitCode::FAILURE;
        }
    };
    println!("recovery: {}", recovery.summary());

    let mut failures: Vec<String> = Vec::new();
    let dead = par.report.dead_letters();
    if !dead.is_empty() {
        failures.push(format!("{} task(s) dead-lettered: {dead:?}", dead.len()));
    }
    if par.firings != seq.firings {
        failures.push(format!(
            "firings diverged: chaos {} vs fault-free {}",
            par.firings, seq.firings
        ));
    }
    if par.consistents != seq.consistents {
        failures.push("consistency records diverged from the fault-free run".into());
    }
    if par.fragments != seq.fragments {
        failures.push("fragment supports diverged from the fault-free run".into());
    }
    for (i, (a, b)) in par.units.iter().zip(seq.units.iter()).enumerate() {
        if a.work != b.work {
            failures.push(format!("task {i}: work counters diverged"));
        }
    }
    if recovery.recovered_tasks() < victims.len() {
        failures.push(format!(
            "only {} of {} killed tasks recovered",
            recovery.recovered_tasks(),
            victims.len()
        ));
    }
    let scratch_cost: u64 = victims.iter().map(|&t| task_cycles[t]).sum();
    if !victims.is_empty() && recovery.cycles_replayed >= scratch_cost {
        failures.push(format!(
            "recovery replayed {} cycles; from-scratch retries cost {scratch_cost}",
            recovery.cycles_replayed
        ));
    }
    if !failures.is_empty() {
        eprintln!("\nchaos: FAILED — replay with the plan below");
        for f in &failures {
            eprintln!("  - {f}");
        }
        eprint!("{}", plan.describe());
        return ExitCode::FAILURE;
    }
    println!(
        "check   : results identical to the fault-free run; {} cycles replayed vs {} \
         from-scratch ({} saved) — ok",
        recovery.cycles_replayed, scratch_cost, recovery.cycles_saved
    );
    ExitCode::SUCCESS
}

// ---------------------------------------------------------------------------
// `top`: the live terminal dashboard
// ---------------------------------------------------------------------------

/// A numeric field of a JSON object, defaulting to zero.
fn num(j: &Json, key: &str) -> f64 {
    j.get(key).and_then(Json::as_f64).unwrap_or(0.0)
}

/// Compact human form for large counts (`1.2M`, `34.5k`).
fn human(v: f64) -> String {
    let a = v.abs();
    if a >= 1e9 {
        format!("{:.1}G", v / 1e9)
    } else if a >= 1e6 {
        format!("{:.1}M", v / 1e6)
    } else if a >= 1e4 {
        format!("{:.1}k", v / 1e3)
    } else if v.fract() == 0.0 {
        format!("{v:.0}")
    } else {
        format!("{v:.2}")
    }
}

/// An ASCII utilization bar: `frac` of `width` cells filled.
fn bar(frac: f64, width: usize) -> String {
    let filled = (frac.clamp(0.0, 1.0) * width as f64).round() as usize;
    (0..width)
        .map(|i| if i < filled { '#' } else { '.' })
        .collect()
}

/// Renders one dashboard frame from a parsed `/snapshot` body.
fn render_top(snap: &Json, base: &str) -> String {
    let series = snap
        .get("series")
        .and_then(Json::as_map)
        .unwrap_or_default();
    let get = |name: &str| series.get(name).copied();
    // Counter fields `(total, windowed, rate)`; missing series read as zero.
    let counter = |name: &str| {
        get(name)
            .map(|j| (num(j, "total"), num(j, "windowed"), num(j, "rate")))
            .unwrap_or((0.0, 0.0, 0.0))
    };
    let gauge = |name: &str| get(name).map(|j| num(j, "value"));

    let mut out = String::new();
    out.push_str(&format!(
        "spamctl top — {base}  |  epoch {} (window {})  |  up {:.1} s\n",
        num(snap, "epoch"),
        num(snap, "window"),
        num(snap, "uptime_us") / 1e6,
    ));

    let (tasks, _, task_rate) = counter("spam_live_tasks_completed");
    let (retries, _, _) = counter("spam_live_task_retries");
    let (dead, _, _) = counter("spam_live_dead_letters");
    let (recov, _, _) = counter("spam_live_recoveries");
    out.push_str(&format!(
        "tasks  : {} done ({}/epoch) | retries {} | dead letters {} | recoveries {}\n",
        human(tasks),
        human(task_rate),
        human(retries),
        human(dead),
        human(recov),
    ));

    let (mu, _, mu_rate) = counter("spam_live_match_units");
    let (firings, _, _) = counter("spam_live_firings");
    let (rhs, _, _) = counter("spam_live_rhs_actions");
    out.push_str(&format!(
        "engine : match units {} ({}/epoch) | firings {} | rhs actions {}\n",
        human(mu),
        human(mu_rate),
        human(firings),
        human(rhs),
    ));
    out.push_str(&format!(
        "depth  : queue {} | conflict set {} | wm {}\n",
        human(gauge("spam_live_queue_depth").unwrap_or(0.0)),
        human(gauge("spam_live_conflict_set_depth").unwrap_or(0.0)),
        human(gauge("spam_live_wm_size").unwrap_or(0.0)),
    ));

    if let Some(h) = get("spam_live_task_latency_seconds") {
        out.push_str(&format!(
            "latency: task p50 {:.3} p90 {:.3} p99 {:.3} s (n={})\n",
            num(h, "p50"),
            num(h, "p90"),
            num(h, "p99"),
            num(h, "count"),
        ));
    }

    match gauge("spam_slo_health") {
        Some(code) => {
            let health = match code as i64 {
                0 => "healthy",
                1 => "recovering",
                _ => "degraded",
            };
            out.push_str(&format!(
                "slo    : {health} | burn fast {:.2} / slow {:.2} | budget {:.0}% left | \
                 target {} s at {:.0}%\n",
                gauge("spam_slo_burn_rate_fast").unwrap_or(0.0),
                gauge("spam_slo_burn_rate_slow").unwrap_or(0.0),
                100.0 * gauge("spam_slo_error_budget_remaining_ratio").unwrap_or(1.0),
                human(gauge("spam_slo_latency_target_seconds").unwrap_or(0.0)),
                100.0 * gauge("spam_slo_objective_ratio").unwrap_or(0.0),
            ));
        }
        None => out.push_str("slo    : unconfigured\n"),
    }

    // Per-worker bars: windowed busy microseconds, normalised to the
    // busiest worker in the window.
    let mut workers: Vec<(usize, f64, f64)> = Vec::new();
    for (key, j) in &series {
        if let Some(rest) = key.strip_prefix("spam_live_worker_busy_us{worker=\"") {
            if let Some(id) = rest
                .strip_suffix("\"}")
                .and_then(|s| s.parse::<usize>().ok())
            {
                let tasks = get(&format!("spam_live_worker_tasks{{worker=\"{id}\"}}"))
                    .map(|t| num(t, "total"))
                    .unwrap_or(0.0);
                workers.push((id, num(j, "windowed"), tasks));
            }
        }
    }
    workers.sort_unstable_by_key(|&(id, _, _)| id);
    if !workers.is_empty() {
        let peak = workers.iter().map(|&(_, b, _)| b).fold(1.0, f64::max);
        out.push_str("workers (windowed busy, relative):\n");
        for (id, busy, tasks) in &workers {
            out.push_str(&format!(
                "  w{id:<3} [{}] {} us | {} task(s)\n",
                bar(busy / peak, 24),
                human(*busy),
                human(*tasks),
            ));
        }
    }
    out
}

/// The `top` subcommand: poll `/snapshot` on a serving `spamctl run` and
/// redraw the dashboard until `--iters` frames are rendered or the
/// endpoint goes away.
fn run_top(o: &Opts) -> ExitCode {
    let base = o.top_url.trim_end_matches('/').to_string();
    let url = format!("{base}/snapshot");
    let timeout = Duration::from_secs(2);
    let mut frames = 0u64;
    loop {
        let polled = tlp_obs::http_get(&url, timeout);
        let (status, body) = match polled {
            Ok(r) => r,
            Err(e) if frames > 0 => {
                println!("top: endpoint gone after {frames} frame(s) ({e})");
                return ExitCode::SUCCESS;
            }
            Err(e) => {
                eprintln!(
                    "top: cannot reach {url}: {e}\n\
                     (start one with: spamctl run --serve 127.0.0.1:9184 --serve-linger-ms 60000)"
                );
                return ExitCode::FAILURE;
            }
        };
        if status != 200 {
            eprintln!("top: {url} returned HTTP {status}");
            return ExitCode::FAILURE;
        }
        let snap = match Json::parse(&body) {
            Ok(j) => j,
            Err(e) => {
                eprintln!("top: malformed snapshot JSON: {e}");
                return ExitCode::FAILURE;
            }
        };
        // Repaint in place when looping; a single `--iters 1` frame (the CI
        // mode) prints plainly so the output is capturable.
        if o.top_iters != 1 {
            print!("\x1b[2J\x1b[H");
        }
        print!("{}", render_top(&snap, &base));
        use std::io::Write as _;
        let _ = std::io::stdout().flush();
        frames += 1;
        if o.top_iters != 0 && frames >= o.top_iters {
            return ExitCode::SUCCESS;
        }
        std::thread::sleep(Duration::from_millis(o.top_interval_ms));
    }
}

/// One retained trace's "why slow" line: wall vs. busy, worker utilization,
/// the longest attempt, and the residual gap (fork + queue + idle).
fn gap_attribution(t: &RetainedTrace) -> String {
    let wall = t.duration_s();
    let tasks: Vec<&tlp_obs::SpanRecord> = t
        .spans
        .iter()
        .filter(|s| s.kind == SpanKind::Task)
        .collect();
    let busy: f64 = tasks
        .iter()
        .map(|s| s.end_us.saturating_sub(s.start_us) as f64 / 1e6)
        .sum();
    let workers: std::collections::BTreeSet<&str> =
        tasks.iter().map(|s| s.worker.as_str()).collect();
    let nw = workers.len().max(1);
    let ideal = busy / nw as f64;
    let gap = (wall - ideal).max(0.0);
    let util = if wall > 0.0 {
        busy / (wall * nw as f64)
    } else {
        0.0
    };
    let longest = tasks
        .iter()
        .max_by_key(|s| s.end_us.saturating_sub(s.start_us))
        .map(|s| {
            format!(
                "{} {:.3}s",
                s.name,
                s.end_us.saturating_sub(s.start_us) as f64 / 1e6
            )
        })
        .unwrap_or_else(|| "none".into());
    let dropped = if t.dropped_spans > 0 {
        format!(" (+{} dropped)", t.dropped_spans)
    } else {
        String::new()
    };
    format!(
        "{} scene={} [{}] dur={:.3}s: busy {:.3}s on {nw} worker(s) (util {:.0}%), \
         ideal {ideal:.3}s, gap {gap:.3}s fork+queue+idle; longest {longest}; \
         retries={} dead={} spans={}{dropped}",
        t.trace,
        t.scene,
        t.reason.name(),
        wall,
        busy,
        100.0 * util,
        t.retries,
        t.dead_letters,
        t.spans.len(),
    )
}

/// The `slow` subcommand: run all four datasets as traced scene
/// submissions under one tail sampler, then print the retained traces
/// ranked by wall duration with gap attribution, and the one-line
/// summaries for the scenes the sampler declined to keep.
fn run_slow(o: &Opts, sp: &SpamProgram) -> ExitCode {
    let datasets = ["sf", "dc", "moff", "suburb"];
    let workers = o.workers.unwrap_or(2);
    // Slowest-2 of four submissions: demoting the fast half to summaries
    // is the point of the demo, not an accident of ring capacity.
    let tracing = Tracing::new(SamplerConfig {
        slowest_n: 2,
        ..SamplerConfig::default()
    });
    let rec = Recorder::new(ObsLevel::Off);
    let live = Live::off();
    println!(
        "spamctl slow: {} scene submissions, LCC at {}, {workers} worker(s), fault seed {}",
        datasets.len(),
        o.level.name(),
        o.fault_seed
    );
    let mut cfg = SupervisorConfig::default().with_retries(o.retries);
    if let Some(ms) = o.deadline_ms {
        cfg = cfg.with_deadline(Duration::from_millis(ms));
    }
    let mut plan = FaultPlan::seeded(o.fault_seed);
    if o.task_panic_rate > 0.0 {
        plan = plan.with_task_panic_rate(o.task_panic_rate);
    }
    for name in datasets {
        let scene = build_scene(name);
        let rtf = run_rtf(sp, &scene);
        let fragments = Arc::new(rtf.fragments.clone());
        let span = tracing.start_scene(o.fault_seed, name);
        let lcc = match spam_psm::tlp::run_parallel_lcc_scene(
            sp,
            &scene,
            &fragments,
            o.level,
            workers,
            &cfg,
            &plan,
            &rec,
            &live,
            None,
            Some(&span),
        ) {
            Ok(l) => l,
            Err(e) => {
                eprintln!("slow: {name}: supervision error: {e}");
                return ExitCode::FAILURE;
            }
        };
        let what = match span.finish() {
            SampleVerdict::Retained(r) => format!("retained ({})", r.name()),
            SampleVerdict::Summarized => "summarized".into(),
        };
        println!(
            "  {name:<7}: {} tasks, {} firings -> {} {what}",
            lcc.units.len(),
            lcc.firings,
            span.trace_id()
        );
    }
    let mut kept = tracing.retained();
    kept.sort_by(|a, b| b.duration_s().total_cmp(&a.duration_s()));
    println!("\nslowest retained traces (full span detail, ranked):");
    for t in &kept {
        println!("  {}", gap_attribution(t));
    }
    let sums = tracing.summaries();
    if !sums.is_empty() {
        println!("summarized (spans not kept by the tail sampler):");
        for s in &sums {
            println!("  {}", s.one_line());
        }
    }
    if let Some(path) = &o.traces_out {
        let doc = Json::obj(vec![(
            "traces",
            Json::Arr(kept.iter().map(RetainedTrace::to_json).collect()),
        )]);
        if let Err(e) = std::fs::write(path, doc.write()) {
            eprintln!("cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("{} retained trace(s) -> {path}", kept.len());
    } else {
        println!("inspect one: spamctl slow --traces-out F, then spamctl trace <id> --from F");
    }
    ExitCode::SUCCESS
}

/// A span parsed back out of trace JSON (from `/trace/<id>` or a
/// `--traces-out` file).
struct TSpan {
    id: String,
    parent: Option<String>,
    kind: String,
    name: String,
    worker: String,
    start_us: u64,
    end_us: u64,
    error: Option<String>,
}

fn parse_spans(t: &Json) -> Result<Vec<TSpan>, String> {
    let Some(Json::Arr(spans)) = t.get("spans") else {
        return Err("missing spans array".into());
    };
    let as_u64 = |j: Option<&Json>| j.and_then(Json::as_f64).map(|f| f.max(0.0) as u64);
    spans
        .iter()
        .enumerate()
        .map(|(i, s)| {
            Ok(TSpan {
                id: s
                    .get("id")
                    .and_then(Json::as_str)
                    .ok_or(format!("span[{i}]: missing id"))?
                    .to_string(),
                parent: s
                    .get("parent")
                    .filter(|p| !matches!(p, Json::Null))
                    .and_then(Json::as_str)
                    .map(str::to_string),
                kind: s
                    .get("kind")
                    .and_then(Json::as_str)
                    .unwrap_or("aux")
                    .to_string(),
                name: s
                    .get("name")
                    .and_then(Json::as_str)
                    .unwrap_or_default()
                    .to_string(),
                worker: s
                    .get("worker")
                    .and_then(Json::as_str)
                    .unwrap_or_default()
                    .to_string(),
                start_us: as_u64(s.get("start_us"))
                    .ok_or(format!("span[{i}]: missing start_us"))?,
                end_us: as_u64(s.get("end_us")).ok_or(format!("span[{i}]: missing end_us"))?,
                error: s.get("error").and_then(Json::as_str).map(str::to_string),
            })
        })
        .collect()
}

/// Renders the span tree as indented ASCII, children ordered by start.
fn render_span_tree(spans: &[TSpan], root_start: u64) -> String {
    let mut children: std::collections::BTreeMap<&str, Vec<usize>> = Default::default();
    let mut roots = Vec::new();
    for (i, s) in spans.iter().enumerate() {
        match &s.parent {
            Some(p) => children.entry(p.as_str()).or_default().push(i),
            None => roots.push(i),
        }
    }
    for v in children.values_mut() {
        v.sort_by_key(|&i| (spans[i].start_us, spans[i].id.clone()));
    }
    let mut out = String::new();
    let mut stack: Vec<(usize, usize)> = roots.iter().rev().map(|&i| (i, 0)).collect();
    while let Some((i, depth)) = stack.pop() {
        let s = &spans[i];
        let off_ms = s.start_us.saturating_sub(root_start) as f64 / 1e3;
        let dur_ms = s.end_us.saturating_sub(s.start_us) as f64 / 1e3;
        let worker = if s.worker.is_empty() {
            String::new()
        } else {
            format!(" [{}]", s.worker)
        };
        let err = match &s.error {
            Some(e) => format!(" ERROR: {e}"),
            None => String::new(),
        };
        out.push_str(&format!(
            "  {:>9.2}ms +{:>9.2}ms  {}{} ({}){worker}{err}\n",
            off_ms,
            dur_ms,
            "  ".repeat(depth),
            s.name,
            s.kind,
        ));
        if let Some(kids) = children.get(s.id.as_str()) {
            for &k in kids.iter().rev() {
                stack.push((k, depth + 1));
            }
        }
    }
    out
}

/// Task index embedded in a `task.exec t<N> a<M>` span name.
fn task_index(name: &str) -> Option<u32> {
    name.strip_prefix("task.exec t")?
        .split_whitespace()
        .next()?
        .parse()
        .ok()
}

/// The `trace <id>` subcommand: reconstruct one retained trace — span
/// tree plus the critical task chain recomputed from the recorded per-task
/// service table — from a `--traces-out` file or a serving `/trace/<id>`.
fn run_trace(o: &Opts, id: &str) -> ExitCode {
    let text = if let Some(path) = &o.trace_from {
        match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("trace: cannot read {path}: {e}");
                return ExitCode::FAILURE;
            }
        }
    } else {
        let base = o.top_url.trim_end_matches('/');
        let url = format!("{base}/trace/{id}");
        match tlp_obs::http_get(&url, Duration::from_secs(2)) {
            Ok((200, body)) => body,
            Ok((status, _)) => {
                eprintln!("trace: {url} returned HTTP {status}");
                return ExitCode::FAILURE;
            }
            Err(e) => {
                eprintln!(
                    "trace: cannot reach {url}: {e}\n\
                     (serve one with: spamctl run --serve 127.0.0.1:9184 --serve-linger-ms 60000, \
                     or read a --traces-out file with --from F)"
                );
                return ExitCode::FAILURE;
            }
        }
    };
    // Structural validation first: same checker CI runs (`tracecheck --spans`).
    if let Err(e) = tlp_obs::validate_span_tree(&text) {
        eprintln!("trace: INVALID span tree: {e}");
        return ExitCode::FAILURE;
    }
    let doc = match Json::parse(&text) {
        Ok(j) => j,
        Err(e) => {
            eprintln!("trace: malformed JSON: {e}");
            return ExitCode::FAILURE;
        }
    };
    // A `--traces-out` file holds a listing; `/trace/<id>` a single doc.
    let singles: Vec<&Json> = match doc.get("traces") {
        Some(Json::Arr(list)) => list.iter().collect(),
        _ => vec![&doc],
    };
    let matches_id = |t: &Json| {
        t.get("trace_id")
            .and_then(Json::as_str)
            .is_some_and(|tid| tid == id || (id.len() >= 4 && tid.starts_with(id)))
    };
    let hits: Vec<&Json> = singles.iter().copied().filter(|t| matches_id(t)).collect();
    let t = match hits.as_slice() {
        [one] => *one,
        [] => {
            eprintln!(
                "trace: no retained trace matches {id:?} ({} candidate(s) in document)",
                singles.len()
            );
            return ExitCode::FAILURE;
        }
        _ => {
            eprintln!("trace: prefix {id:?} is ambiguous ({} matches)", hits.len());
            return ExitCode::FAILURE;
        }
    };
    let get_s = |k: &str| t.get(k).and_then(Json::as_str).unwrap_or("?").to_string();
    let get_n = |k: &str| t.get(k).and_then(Json::as_f64).unwrap_or(0.0);
    println!(
        "trace {} scene={} seed={} [{}]: {:.3}s, retries={} dead={} dropped={}",
        get_s("trace_id"),
        get_s("scene"),
        get_n("seed"),
        get_s("reason"),
        get_n("duration_s"),
        get_n("retries"),
        get_n("dead_letters"),
        get_n("dropped_spans"),
    );
    let spans = match parse_spans(t) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("trace: {e}");
            return ExitCode::FAILURE;
        }
    };
    let root_start = spans
        .iter()
        .find(|s| s.parent.is_none())
        .map(|s| s.start_us)
        .unwrap_or(0);
    print!("{}", render_span_tree(&spans, root_start));

    // Critical task chain, recomputed from the recorded deterministic
    // service table — the same `core::attribution::critical_path_of` the
    // profiler uses, so the two reports agree.
    let services: Vec<multimax_sim::Task> = match t.get("services") {
        Some(Json::Arr(list)) => list
            .iter()
            .filter_map(|s| {
                let task = s.get("task").and_then(Json::as_f64)? as u32;
                let sim_s = s.get("sim_s").and_then(Json::as_f64)?;
                let frac = s.get("match_frac").and_then(Json::as_f64)?.clamp(0.0, 1.0);
                Some(multimax_sim::Task::with_match(task, sim_s.max(0.0), frac))
            })
            .collect(),
        _ => Vec::new(),
    };
    if services.is_empty() {
        println!("critical path: no service table recorded (scene traced without attribution)");
        return ExitCode::SUCCESS;
    }
    let task_spans: Vec<&TSpan> = spans.iter().filter(|s| s.kind == "task").collect();
    let nw = task_spans
        .iter()
        .map(|s| s.worker.as_str())
        .collect::<std::collections::BTreeSet<_>>()
        .len()
        .max(1);
    let cfg = multimax_sim::SimConfig::encore(nw as u32);
    let cp = spam_psm::attribution::critical_path_of(&services, &cfg);
    println!(
        "critical path (core::attribution, {} tasks, {nw} worker(s)): task t{}, {:.2} sim s \
         (fork {} + dequeue {} + service)",
        services.len(),
        cp.task,
        cp.length,
        cfg.fork_overhead,
        cfg.dequeue_overhead,
    );
    // Cross-check against the measured wall spans: the longest successful
    // attempt should be the same task the model says is critical.
    let longest_wall = task_spans
        .iter()
        .filter(|s| s.error.is_none())
        .max_by_key(|s| s.end_us.saturating_sub(s.start_us));
    if let Some(s) = longest_wall {
        let wall_s = s.end_us.saturating_sub(s.start_us) as f64 / 1e6;
        match task_index(&s.name) {
            Some(idx) if idx == cp.task => println!(
                "cross-check: longest measured attempt {} ({wall_s:.3}s wall) agrees with the model"
                , s.name
            ),
            Some(idx) => println!(
                "cross-check: longest measured attempt {} ({wall_s:.3}s wall) is t{idx}, \
                 model says t{} — wall noise or retries moved the chain",
                s.name, cp.task
            ),
            None => println!(
                "cross-check: longest measured attempt {} ({wall_s:.3}s wall)",
                s.name
            ),
        }
    }
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let o = match parse_args() {
        Ok(o) => o,
        Err(m) => {
            eprintln!("{m}");
            return ExitCode::FAILURE;
        }
    };
    if o.top_cmd {
        return run_top(&o);
    }
    if let Some(id) = &o.trace_cmd {
        return run_trace(&o, id);
    }
    let mut sp = SpamProgram::build();
    if o.unshared {
        sp = sp.with_config(ops5::ReteConfig::unshared());
    }
    if o.slow_cmd {
        return run_slow(&o, &sp);
    }
    // Figure 9 is an SF result, so `svm-report` defaults to that scene.
    let default_dataset = if o.svm_report { "sf" } else { "moff" };
    let dataset = o.dataset.as_deref().unwrap_or(default_dataset);
    let scene = build_scene(dataset);
    if o.svm_report {
        return run_svm_report(&o, &sp, &scene);
    }
    if o.chaos {
        return run_chaos(&o, &sp, &scene);
    }
    if o.whatif {
        return run_whatif(&o, &sp, &scene);
    }
    if o.profile {
        return run_profile(&o, &sp, &scene);
    }
    let workers = o.workers.unwrap_or(1);
    println!(
        "spamctl: {} ({:?}), {} regions, LCC at {}, {} worker(s), {} machine(s), obs {}",
        scene.name,
        scene.domain,
        scene.len(),
        o.level.name(),
        workers,
        o.machines,
        o.obs
    );

    // An output file with the level left at `off` records at `full`; an
    // explicit `--obs off` (the default) records nothing.
    let obs_level = if o.obs == ObsLevel::Off && (o.trace_out.is_some() || o.metrics_out.is_some())
    {
        ObsLevel::Full
    } else {
        o.obs
    };
    let rec = Recorder::new(obs_level);
    let mut ctl = rec.sink("control");

    // Live telemetry: `--serve` and `--metrics-snapshot` imply `--live`.
    // With none of the three, `Live::off()` keeps every emitter inert.
    let live_on = o.live || o.serve.is_some() || o.metrics_snapshot.is_some();
    let live = if live_on {
        Live::new(tlp_obs::DEFAULT_WINDOW)
    } else {
        Live::off()
    };
    let slo = live_on.then(|| {
        Arc::new(SloMonitor::new(
            SloConfig::for_scene(dataset),
            live.handle(),
        ))
    });
    // Scene tracing: `--traces-out` implies `--trace-sample`, and `--serve`
    // turns it on too so `/traces`, `/trace/<id>`, and the histogram
    // exemplars are live. Results are bit-identical either way.
    let trace_on = o.trace_sample || o.traces_out.is_some() || o.serve.is_some();
    let tracing = if trace_on {
        Tracing::new(SamplerConfig::default())
    } else {
        Tracing::off()
    };
    let mut server = None;
    if let Some(addr) = &o.serve {
        match tlp_obs::serve_traced(
            addr,
            Arc::clone(&live),
            slo.clone(),
            Some(Arc::clone(&tracing)),
        ) {
            Ok(s) => {
                println!(
                    "serve  : live telemetry on http://{} \
                     (/metrics /healthz /snapshot /traces /trace/<id>)",
                    s.addr()
                );
                server = Some(s);
            }
            Err(e) => {
                eprintln!("cannot bind {addr}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }

    if ctl.enabled(ObsLevel::Summary) {
        ctl.begin(tlp_obs::Category::Phase, "phase.rtf", vec![]);
    }
    let rtf = run_rtf(&sp, &scene);
    if ctl.enabled(ObsLevel::Summary) {
        ctl.end(
            tlp_obs::Category::Phase,
            "phase.rtf",
            vec![("firings", rtf.firings.into())],
        );
    }
    println!(
        "RTF    : {} hypotheses, {} firings",
        rtf.fragments.len(),
        rtf.firings
    );
    let fragments = Arc::new(rtf.fragments.clone());

    // A recording run takes the supervised path so task/supervisor events
    // are emitted; the results are identical either way.
    let exec_real = o.exec_mode == "real";
    let supervised = workers > 1
        || o.retries > 0
        || o.deadline_ms.is_some()
        || o.task_panic_rate > 0.0
        || rec.enabled(ObsLevel::Summary)
        || live_on
        || trace_on
        || exec_real;
    if ctl.enabled(ObsLevel::Summary) {
        ctl.begin(tlp_obs::Category::Phase, "phase.lcc", vec![]);
    }
    // One scene submission = one trace: mint the deterministic id + root
    // span just before the LCC fan-out and close it right after.
    let scene_span = trace_on.then(|| tracing.start_scene(o.fault_seed, dataset));
    let (lcc, measured) = if supervised {
        let mut cfg = SupervisorConfig::default().with_retries(o.retries);
        if let Some(ms) = o.deadline_ms {
            cfg = cfg.with_deadline(Duration::from_millis(ms));
        }
        let mut plan = FaultPlan::seeded(o.fault_seed);
        if o.task_panic_rate > 0.0 {
            plan = plan.with_task_panic_rate(o.task_panic_rate);
        }
        if exec_real {
            // Real cores: the work-stealing executor, chunked by the
            // ParaOPS5 cost model's subtask granularity.
            let exec_cfg = spam_psm::exec::ExecConfig::with_cost_model(
                workers,
                &paraops5::costmodel::CostModel::default(),
            );
            match spam_psm::tlp::run_parallel_lcc_exec(
                &sp,
                &scene,
                &fragments,
                o.level,
                &exec_cfg,
                &cfg,
                &plan,
                &rec,
                &live,
                slo.as_ref(),
                scene_span.as_ref(),
            ) {
                Ok((lcc, m)) => (lcc, Some(m)),
                Err(e) => {
                    eprintln!("LCC supervision error: {e}");
                    return ExitCode::FAILURE;
                }
            }
        } else {
            match spam_psm::tlp::run_parallel_lcc_scene(
                &sp,
                &scene,
                &fragments,
                o.level,
                workers,
                &cfg,
                &plan,
                &rec,
                &live,
                slo.as_ref(),
                scene_span.as_ref(),
            ) {
                Ok(lcc) => (lcc, None),
                Err(e) => {
                    eprintln!("LCC supervision error: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
    } else {
        (spam::lcc::run_lcc(&sp, &scene, &fragments, o.level), None)
    };
    if ctl.enabled(ObsLevel::Summary) {
        ctl.end(
            tlp_obs::Category::Phase,
            "phase.lcc",
            vec![("firings", lcc.firings.into())],
        );
    }
    println!(
        "LCC    : {} tasks, {} consistency records, {} firings, {:.0} simulated s",
        lcc.units.len(),
        lcc.consistents.len(),
        lcc.firings,
        lcc.work.seconds_at(MIPS)
    );
    if supervised {
        // Wall-clock latency detail only when the recorder is on: the
        // default output must stay byte-identical for same-seed runs.
        print!("{}", lcc.report.display(rec.enabled(ObsLevel::Summary)));
    }
    if let Some(m) = &measured {
        println!(
            "exec   : real work-stealing pool, {} worker(s): wall {:.1} ms, \
             utilization {:.0}%, {} steal(s), {} overflow chunk(s) drained, {} chunk(s) of {}",
            m.workers.len(),
            m.wall_s * 1e3,
            100.0 * m.utilization(),
            m.steals(),
            m.overflow_taken(),
            m.chunks,
            lcc.units.len(),
        );
    }
    if let Some(span) = &scene_span {
        let what = match span.finish() {
            SampleVerdict::Retained(r) => format!("retained ({})", r.name()),
            SampleVerdict::Summarized => "summarized".into(),
        };
        println!("trace  : {} {what}", span.trace_id());
    }
    if let Some(path) = &o.traces_out {
        let kept = tracing.retained();
        let doc = Json::obj(vec![(
            "traces",
            Json::Arr(kept.iter().map(RetainedTrace::to_json).collect()),
        )]);
        if let Err(e) = std::fs::write(path, doc.write()) {
            eprintln!("cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!(
            "trace  : {} retained trace(s) -> {path} (tracecheck --spans / spamctl trace --from)",
            kept.len()
        );
    }
    let mut fragments = Arc::new(lcc.fragments.clone());
    let mut consistents = lcc.consistents.clone();

    if ctl.enabled(ObsLevel::Summary) {
        ctl.begin(tlp_obs::Category::Phase, "phase.fa", vec![]);
    }
    let fa = run_fa(&sp, &scene, &fragments, &consistents);
    if ctl.enabled(ObsLevel::Summary) {
        ctl.end(
            tlp_obs::Category::Phase,
            "phase.fa",
            vec![("firings", fa.firings.into())],
        );
    }
    println!(
        "FA     : {} areas, {} predictions, {} firings",
        fa.areas.len(),
        fa.predictions,
        fa.firings
    );

    if o.topdown {
        let td = run_topdown(&sp, &scene, &fragments, &fa, &fa.prediction_list);
        println!(
            "TOPDOWN: {} predicted hypotheses, {} confirmed, {} re-entry firings",
            td.predicted.len(),
            td.confirmed,
            td.firings
        );
        consistents.extend(td.consistents.iter().copied());
        fragments = Arc::new(td.fragments);
    }

    if ctl.enabled(ObsLevel::Summary) {
        ctl.begin(tlp_obs::Category::Phase, "phase.model", vec![]);
    }
    let model = run_model(&sp, &scene, &fragments, &fa.areas, &fa.members);
    if ctl.enabled(ObsLevel::Summary) {
        ctl.end(tlp_obs::Category::Phase, "phase.model", vec![]);
    }
    println!(
        "MODEL  : {} model(s), {} areas, score {}, coverage {:.0}%, window overlap {:.1}%",
        model.models,
        model.areas_used,
        model.score,
        100.0 * model.metrics.coverage,
        100.0 * model.metrics.window_overlap
    );

    if !o.quiet {
        let mut best: Vec<_> = fragments.iter().collect();
        best.sort_by_key(|f| -f.support);
        println!("top hypotheses:");
        for f in best.iter().take(8) {
            println!(
                "  fragment {:>4} region {:>4} {:<18} support {:>3}",
                f.id,
                f.region,
                f.kind.name(),
                f.support
            );
        }
    }

    if o.sweep {
        let trace = spam_psm::trace::lcc_trace(&lcc);
        println!("simulated Encore sweep (task processes: speed-up):");
        for (n, s) in spam_psm::tlp::simulated_tlp_curve(&trace, 14) {
            print!("  {n}:{s:.2}");
        }
        println!();
    }

    if rec.enabled(ObsLevel::Summary) || o.trace_out.is_some() || o.metrics_out.is_some() {
        ctl.flush();
        let trace = spam_psm::trace::lcc_trace(&lcc);
        let sim_workers = (workers as u32).max(1);

        // One machine: replay on a single Encore. Two: replay on the
        // dual-Encore SVM platform — the trace gets a pid lane per machine
        // and the Gantt becomes a two-machine chart.
        let svm = (o.machines == 2).then(|| {
            let mut cfg = svm_sim_config(&o, sim_workers);
            cfg.level = obs_level;
            multimax_sim::simulate_svm(&cfg, &trace.tasks.tasks)
        });
        let sim = match &svm {
            Some(r) => r.sim.clone(),
            None => multimax_sim::simulate(
                &multimax_sim::SimConfig::encore(sim_workers),
                &trace.tasks.tasks,
            ),
        };

        if let Some(r) = &svm {
            println!(
                "SVM    : {} faults, {} transfers, {:.1} MB shipped, {} invalidations ({} netmemory)",
                r.totals.faults,
                r.totals.transfers,
                r.totals.bytes as f64 / 1e6,
                r.totals.invalidations,
                o.svm_mode
            );
            match tlp_obs::stitch(r.home.clone(), r.remote.clone()) {
                Ok(s) => println!(
                    "stitch : {} exchange pairs, offset {:.0} us, drift {:.1} ppm, residual +/-{:.0} us, {} inversions",
                    s.report.pairs,
                    s.report.offset_us,
                    s.report.drift_ppm,
                    s.report.residual_us,
                    s.report.inversions
                ),
                Err(e) => println!("stitch : not possible ({e})"),
            }
        }

        if o.obs == ObsLevel::Full {
            if let Some(r) = &svm {
                let (home_tl, remote_tl) = r.timelines();
                println!(
                    "simulated dual-Encore Gantt ({sim_workers} task processes, makespan {:.0}s):",
                    sim.makespan
                );
                print!(
                    "{}",
                    tlp_obs::multi_gantt(&[("m0", &home_tl), ("m1", &remote_tl)], 72)
                );
            } else {
                let tl = sim.timeline(&format!("encore-sim-{sim_workers}p"));
                println!(
                    "simulated Encore Gantt ({sim_workers} task processes, makespan {:.0}s, coverage {:.1}%):",
                    sim.makespan,
                    100.0 * tl.coverage()
                );
                print!("{}", tl.gantt(72));
                if let Some(m) = &measured {
                    let mtl = m.timeline("exec-real");
                    println!(
                        "measured Gantt ({} worker(s), wall {:.1} ms, coverage {:.1}%):",
                        m.workers.len(),
                        m.wall_s * 1e3,
                        100.0 * mtl.coverage()
                    );
                    print!("{}", mtl.gantt(72));
                }
            }
        }

        if let Some(path) = &o.trace_out {
            if let Some(r) = &svm {
                match write_svm_trace(path, r, Some(&rec)) {
                    Ok(events) => println!(
                        "trace  : {} recorder + {events} machine events, 2 pids -> {path} \
                         (chrome://tracing / Perfetto)",
                        rec.len()
                    ),
                    Err(e) => {
                        eprintln!("{e}");
                        return ExitCode::FAILURE;
                    }
                }
            } else {
                let mut doc = tlp_obs::TraceDoc::new();
                doc.add_recorder("spamctl", &rec);
                doc.add_timeline(&sim.timeline(&format!("encore-sim-{sim_workers}p")));
                if let Some(m) = &measured {
                    doc.add_timeline(&m.timeline("exec-real"));
                }
                if let Err(e) = std::fs::write(path, doc.write()) {
                    eprintln!("cannot write {path}: {e}");
                    return ExitCode::FAILURE;
                }
                println!(
                    "trace  : {} events -> {path} (chrome://tracing / Perfetto)",
                    rec.len()
                );
            }
        }

        if let Some(path) = &o.metrics_out {
            let reg = tlp_obs::MetricsRegistry::new();
            spam_psm::trace::record_phase_metrics(
                &reg,
                "lcc",
                &trace,
                supervised.then_some(&lcc.report),
            );
            spam_psm::trace::record_sim_metrics(&reg, "lcc", &sim);
            if let Err(e) = std::fs::write(path, reg.to_json().write()) {
                eprintln!("cannot write {path}: {e}");
                return ExitCode::FAILURE;
            }
            println!("metrics: snapshot -> {path}");
        }
    }

    if live_on {
        let snap = live.snapshot();
        let health = slo
            .as_ref()
            .map(|m| m.health().name())
            .unwrap_or("unconfigured");
        println!(
            "live   : epoch {}, {} series, health {health}",
            snap.epoch,
            snap.series.len()
        );
        if let Some(path) = &o.metrics_snapshot {
            let text = tlp_obs::openmetrics(&snap);
            match tlp_obs::validate_openmetrics(&text) {
                Ok(summary) => {
                    if let Err(e) = std::fs::write(path, &text) {
                        eprintln!("cannot write {path}: {e}");
                        return ExitCode::FAILURE;
                    }
                    println!("live   : exposition ({summary}) -> {path}");
                }
                Err(e) => {
                    eprintln!("live   : exposition INVALID ({e})");
                    return ExitCode::FAILURE;
                }
            }
        }
        if let Some(server) = &mut server {
            if o.serve_linger_ms > 0 {
                println!(
                    "serve  : lingering {} ms on http://{} (ctrl-c to stop early)",
                    o.serve_linger_ms,
                    server.addr()
                );
                std::thread::sleep(Duration::from_millis(o.serve_linger_ms));
            }
            server.shutdown();
        }
    }
    ExitCode::SUCCESS
}
