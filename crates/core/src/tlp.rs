//! Task-level parallelism: the SPAM/PSM execution model.
//!
//! Two runners:
//!
//! * [`run_parallel_lcc`] — the real thing (§5.1): a control process (the
//!   calling thread) builds the task queue; `n` task processes (threads),
//!   each a complete independent OPS5 engine, pull tasks and fire
//!   asynchronously; the control process collects the results. Verified to
//!   produce exactly the sequential results at any worker count.
//! * [`simulated_tlp_curve`] — replays a measured trace on the simulated
//!   Encore Multimax at 1..=14 task processes (Figure 6 / Figure 8),
//!   since the container running this reproduction has a single core.

use crate::attribution::GapAttribution;
use crate::supervise::{supervise, supervise_observed, TaskAttempt};
use crate::trace::PhaseTrace;
use multimax_sim::{simulate, Schedule, SimConfig};
use ops5::WorkCounters;
use spam::fragments::FragmentHypothesis;
use spam::lcc::{
    decompose, run_lcc_unit, run_lcc_unit_traced, ConsistentRec, LccPhaseResult, Level,
};
use spam::rules::SpamProgram;
use spam::scene::Scene;
use std::sync::Arc;
use tlp_fault::{FaultPlan, SuperviseError, SupervisorConfig, TaskReport};
use tlp_obs::{Live, Recorder, SceneSpan, SloMonitor};

/// Result of a supervised parallel RTF phase: the merged fragments plus the
/// per-batch supervision outcomes.
#[derive(Clone, Debug)]
pub struct RtfParallelResult {
    /// Merged fragments, renumbered densely in batch order (dead-lettered
    /// batches contribute nothing).
    pub fragments: Vec<FragmentHypothesis>,
    /// Per-batch supervision outcomes.
    pub report: TaskReport,
}

/// Runs the LCC phase with `n_workers` real task-process threads pulling
/// from a shared central queue (asynchronous firing: no coordination beyond
/// the queue itself). Unsupervised policy: no deadline, no retries, no
/// fault injection — but a panicking task is still isolated and reported
/// rather than tearing the phase down.
pub fn run_parallel_lcc(
    sp: &SpamProgram,
    scene: &Arc<Scene>,
    fragments: &Arc<Vec<FragmentHypothesis>>,
    level: Level,
    n_workers: usize,
) -> Result<LccPhaseResult, SuperviseError> {
    run_parallel_lcc_supervised(
        sp,
        scene,
        fragments,
        level,
        n_workers,
        &SupervisorConfig::default(),
        &FaultPlan::none(),
    )
}

/// [`run_parallel_lcc`] under an explicit supervision policy and fault
/// plan. The phase completes with partial results: units whose every
/// attempt failed are dead-lettered in the returned report and contribute
/// no consistency records or support.
pub fn run_parallel_lcc_supervised(
    sp: &SpamProgram,
    scene: &Arc<Scene>,
    fragments: &Arc<Vec<FragmentHypothesis>>,
    level: Level,
    n_workers: usize,
    cfg: &SupervisorConfig,
    plan: &FaultPlan,
) -> Result<LccPhaseResult, SuperviseError> {
    run_parallel_lcc_traced(
        sp,
        scene,
        fragments,
        level,
        n_workers,
        cfg,
        plan,
        &Recorder::off(),
    )
}

/// [`run_parallel_lcc_supervised`] with a flight recorder attached: the
/// supervised phase emits task/supervisor events through `rec` (see
/// [`crate::supervise::supervise_traced`]). Results are identical at every
/// recording level.
#[allow(clippy::too_many_arguments)]
pub fn run_parallel_lcc_traced(
    sp: &SpamProgram,
    scene: &Arc<Scene>,
    fragments: &Arc<Vec<FragmentHypothesis>>,
    level: Level,
    n_workers: usize,
    cfg: &SupervisorConfig,
    plan: &FaultPlan,
    rec: &Arc<Recorder>,
) -> Result<LccPhaseResult, SuperviseError> {
    run_parallel_lcc_live(
        sp,
        scene,
        fragments,
        level,
        n_workers,
        cfg,
        plan,
        rec,
        &Live::off(),
        None,
    )
}

/// [`run_parallel_lcc_traced`] with live telemetry attached: worker engines
/// mirror their counters into `live` as they run (see
/// [`spam::lcc::run_lcc_unit_live`]), the supervisor publishes task/queue
/// health (see [`crate::supervise::supervise_observed`]), and — when an
/// [`SloMonitor`] is attached — each completed unit's *simulated* latency
/// (work units at the paper's 1.5 MIPS) is judged against the scene's
/// latency objective, keeping the SLO clock deterministic across hosts.
/// Results are identical at every telemetry setting.
#[allow(clippy::too_many_arguments)]
pub fn run_parallel_lcc_live(
    sp: &SpamProgram,
    scene: &Arc<Scene>,
    fragments: &Arc<Vec<FragmentHypothesis>>,
    level: Level,
    n_workers: usize,
    cfg: &SupervisorConfig,
    plan: &FaultPlan,
    rec: &Arc<Recorder>,
    live: &Arc<Live>,
    slo: Option<&Arc<SloMonitor>>,
) -> Result<LccPhaseResult, SuperviseError> {
    run_parallel_lcc_scene(
        sp, scene, fragments, level, n_workers, cfg, plan, rec, live, slo, None,
    )
}

/// [`run_parallel_lcc_live`] inside a scene-scoped trace: when a
/// [`SceneSpan`] is attached, the supervisor records one `task.exec` span
/// per attempt (parented under the scene's root), retry and dead-letter
/// decisions become aux marker spans, worker engines group their
/// recognize–act cycles into `engine.cycles` aux spans under their attempt,
/// and each completed unit's simulated service time + match fraction land
/// in the trace's service table so `spamctl trace` can rebuild the phase's
/// critical path. Trace-only: results are bit-identical with the span
/// attached, disabled, or absent.
#[allow(clippy::too_many_arguments)]
pub fn run_parallel_lcc_scene(
    sp: &SpamProgram,
    scene: &Arc<Scene>,
    fragments: &Arc<Vec<FragmentHypothesis>>,
    level: Level,
    n_workers: usize,
    cfg: &SupervisorConfig,
    plan: &FaultPlan,
    rec: &Arc<Recorder>,
    live: &Arc<Live>,
    slo: Option<&Arc<SloMonitor>>,
    span: Option<&SceneSpan>,
) -> Result<LccPhaseResult, SuperviseError> {
    let units = decompose(scene, fragments, level);
    let labels: Vec<String> = units.iter().map(|u| u.label()).collect();
    let (slots, report) = supervise_observed(
        n_workers,
        labels,
        cfg,
        plan,
        rec,
        live,
        slo,
        span,
        |i, r: &spam::lcc::LccUnitResult| {
            if let Some(slo) = slo {
                slo.observe(r.work.seconds_at(spam::phases::MIPS), true);
            }
            if let Some(span) = span {
                // The same service model `lcc_trace` feeds the simulator:
                // work units at the paper's 1.5 MIPS plus the unit's match
                // fraction, keyed by task index.
                span.record_service(
                    i as u32,
                    r.work.seconds_at(spam::phases::MIPS),
                    r.work.match_fraction(),
                );
            }
        },
        |a: TaskAttempt| {
            if live.is_enabled() || a.trace.is_some() {
                run_lcc_unit_traced(sp, scene, fragments, &units[a.task], live, a.trace)
            } else {
                run_lcc_unit(sp, scene, fragments, &units[a.task])
            }
        },
    )?;
    let results: Vec<spam::lcc::LccUnitResult> = slots.into_iter().flatten().collect();

    let mut work = WorkCounters::default();
    let mut firings = 0;
    let mut consistents: Vec<ConsistentRec> = Vec::new();
    let mut supports = vec![0i64; fragments.len()];
    for r in &results {
        work.add(&r.work);
        firings += r.firings;
        consistents.extend(r.consistents.iter().copied());
        for &(f, sup) in &r.supports {
            supports[f as usize] += sup;
        }
    }
    let mut updated: Vec<FragmentHypothesis> = fragments.as_ref().clone();
    for f in &mut updated {
        f.support = supports[f.id as usize];
    }
    Ok(LccPhaseResult {
        level,
        fragments: updated,
        consistents,
        units: results,
        work,
        firings,
        report,
    })
}

/// A-priori work estimate for one LCC unit, in cost-model units, used by
/// the work-stealing executor's dynamic chunker. Class units match every
/// fragment of their kind (the level-4 "big task"); finer levels shrink
/// toward a single candidate pair. The absolute scale does not matter —
/// only the ratios steer chunk boundaries.
fn unit_estimate(unit: &spam::lcc::LccUnit, fragments: &[FragmentHypothesis]) -> u64 {
    use spam::lcc::LccUnit;
    let wmes = match unit {
        LccUnit::Class(kind) => fragments.iter().filter(|f| f.kind == *kind).count() as u64 + 1,
        LccUnit::Object(_) => 4,
        LccUnit::ObjectConstraint(..) => 2,
        LccUnit::Pair { .. } => 1,
    };
    wmes * crate::exec::ESTIMATE_UNITS_PER_WME
}

/// Runs the LCC phase on the **real work-stealing executor**
/// ([`crate::exec`]) instead of the central shared queue: per-worker
/// deques seeded with cost-model-sized chunks of units, idle workers
/// stealing from victims, every observability hook of
/// [`run_parallel_lcc_scene`] attached identically. Returns the merged
/// phase result — bit-identical to the sequential and central-queue runs,
/// because results merge in unit order — plus the measured
/// [`crate::exec::ExecReport`] (the wall-clock schedule, per-worker
/// utilization and steal counters; convertible to a simulator result for
/// gap attribution).
#[allow(clippy::too_many_arguments)]
pub fn run_parallel_lcc_exec(
    sp: &SpamProgram,
    scene: &Arc<Scene>,
    fragments: &Arc<Vec<FragmentHypothesis>>,
    level: Level,
    exec: &crate::exec::ExecConfig,
    cfg: &SupervisorConfig,
    plan: &FaultPlan,
    rec: &Arc<Recorder>,
    live: &Arc<Live>,
    slo: Option<&Arc<SloMonitor>>,
    span: Option<&SceneSpan>,
) -> Result<(LccPhaseResult, crate::exec::ExecReport), SuperviseError> {
    let units = decompose(scene, fragments, level);
    let labels: Vec<String> = units.iter().map(|u| u.label()).collect();
    let estimates: Vec<u64> = units.iter().map(|u| unit_estimate(u, fragments)).collect();
    let (slots, report, measured) = crate::exec::execute_observed(
        exec,
        labels,
        &estimates,
        cfg,
        plan,
        rec,
        live,
        slo,
        span,
        |i, r: &spam::lcc::LccUnitResult| {
            if let Some(slo) = slo {
                slo.observe(r.work.seconds_at(spam::phases::MIPS), true);
            }
            if let Some(span) = span {
                span.record_service(
                    i as u32,
                    r.work.seconds_at(spam::phases::MIPS),
                    r.work.match_fraction(),
                );
            }
        },
        |a: TaskAttempt| {
            if live.is_enabled() || a.trace.is_some() {
                run_lcc_unit_traced(sp, scene, fragments, &units[a.task], live, a.trace)
            } else {
                run_lcc_unit(sp, scene, fragments, &units[a.task])
            }
        },
    )?;
    let results: Vec<spam::lcc::LccUnitResult> = slots.into_iter().flatten().collect();

    let mut work = WorkCounters::default();
    let mut firings = 0;
    let mut consistents: Vec<ConsistentRec> = Vec::new();
    let mut supports = vec![0i64; fragments.len()];
    for r in &results {
        work.add(&r.work);
        firings += r.firings;
        consistents.extend(r.consistents.iter().copied());
        for &(f, sup) in &r.supports {
            supports[f as usize] += sup;
        }
    }
    let mut updated: Vec<FragmentHypothesis> = fragments.as_ref().clone();
    for f in &mut updated {
        f.support = supports[f.id as usize];
    }
    Ok((
        LccPhaseResult {
            level,
            fragments: updated,
            consistents,
            units: results,
            work,
            firings,
            report,
        },
        measured,
    ))
}

/// Runs the RTF phase with `n_workers` real task-process threads over
/// region batches (the paper's RTF decomposition: 60–100 tasks, §4).
/// Fragment ids are renumbered densely in batch order, exactly as the
/// sequential [`spam::rtf::run_rtf_tasks`] does.
pub fn run_parallel_rtf(
    sp: &SpamProgram,
    scene: &Arc<Scene>,
    batches: &[Vec<u32>],
    n_workers: usize,
) -> Result<RtfParallelResult, SuperviseError> {
    run_parallel_rtf_supervised(
        sp,
        scene,
        batches,
        n_workers,
        &SupervisorConfig::default(),
        &FaultPlan::none(),
    )
}

/// [`run_parallel_rtf`] under an explicit supervision policy and fault
/// plan.
pub fn run_parallel_rtf_supervised(
    sp: &SpamProgram,
    scene: &Arc<Scene>,
    batches: &[Vec<u32>],
    n_workers: usize,
    cfg: &SupervisorConfig,
    plan: &FaultPlan,
) -> Result<RtfParallelResult, SuperviseError> {
    let labels: Vec<String> = (0..batches.len())
        .map(|i| format!("rtf batch {i} ({} regions)", batches[i].len()))
        .collect();
    let (slots, report) = supervise(n_workers, labels, cfg, plan, |i| {
        spam::rtf::run_rtf_task(sp, scene, &batches[i], (i as i64) << 20).fragments
    })?;
    let mut merged = Vec::new();
    for s in slots.into_iter().flatten() {
        for mut f in s {
            f.id = merged.len() as u32;
            merged.push(f);
        }
    }
    Ok(RtfParallelResult {
        fragments: merged,
        report,
    })
}

/// Simulated task-level-parallelism speed-up curve for a measured trace,
/// on the standard Encore configuration (Figure 6 / Figure 8).
pub fn simulated_tlp_curve(trace: &PhaseTrace, max_workers: u32) -> Vec<(u32, f64)> {
    multimax_sim::speedup_curve(SimConfig::encore, &trace.tasks, max_workers)
        .into_iter()
        .map(|p| (p.n, p.speedup))
        .collect()
}

/// Simulated TLP curve with full gap attribution at each worker count:
/// where the ideal-vs-measured speed-up went, per
/// [`crate::attribution::GapAttribution`] (the `spamctl profile` view of
/// Figure 6).
pub fn attributed_tlp_curve(trace: &PhaseTrace, workers: &[u32]) -> Vec<GapAttribution> {
    let base = simulate(&SimConfig::encore(1), &trace.tasks.tasks).makespan;
    workers
        .iter()
        .map(|&n| {
            let r = simulate(&SimConfig::encore(n), &trace.tasks.tasks);
            GapAttribution::attribute(base, &r, n)
        })
        .collect()
}

/// Simulated speed-up curve with LPT ("big tasks first") scheduling — the
/// tail-end-effect fix §6.2 proposes as future work.
pub fn simulated_tlp_curve_lpt(trace: &PhaseTrace, max_workers: u32) -> Vec<(u32, f64)> {
    multimax_sim::speedup_curve(
        |n| SimConfig {
            schedule: Schedule::Lpt,
            ..SimConfig::encore(n)
        },
        &trace.tasks,
        max_workers,
    )
    .into_iter()
    .map(|p| (p.n, p.speedup))
    .collect()
}

/// Makespan of a *synchronous* task-parallel system: tasks execute in
/// lock-step rounds of `n` with a barrier after each round (§3.2:
/// "synchronous systems are less capable of handling variances in
/// processing times ... a synchronous system quickly reaches saturation
/// speed-ups"). Used by the sync-vs-async ablation bench.
pub fn synchronous_makespan(trace: &PhaseTrace, n: u32) -> f64 {
    let cfg = SimConfig::encore(n);
    cfg.fork_overhead
        + trace
            .tasks
            .tasks
            .chunks(n as usize)
            .map(|round| {
                round
                    .iter()
                    .map(|t| t.service + cfg.dequeue_overhead)
                    .fold(0.0f64, f64::max)
            })
            .sum::<f64>()
}

/// Asynchronous makespan of the same configuration (for the ablation).
pub fn asynchronous_makespan(trace: &PhaseTrace, n: u32) -> f64 {
    simulate(&SimConfig::encore(n), &trace.tasks.tasks).makespan
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::lcc_trace;
    use spam::lcc::run_lcc;
    use spam::rtf::run_rtf;

    fn setup() -> (SpamProgram, Arc<Scene>, Arc<Vec<FragmentHypothesis>>) {
        let sp = SpamProgram::build();
        let scene = Arc::new(spam::generate_scene(&spam::datasets::dc().spec));
        let rtf = run_rtf(&sp, &scene);
        let frags = Arc::new(rtf.fragments);
        (sp, scene, frags)
    }

    fn canonical(c: &[ConsistentRec]) -> Vec<(u32, u32, &'static str)> {
        let mut v: Vec<_> = c.iter().map(|r| (r.a, r.b, r.rel.name())).collect();
        v.sort();
        v
    }

    #[test]
    fn parallel_equals_sequential_at_any_worker_count() {
        let (sp, scene, frags) = setup();
        let seq = run_lcc(&sp, &scene, &frags, Level::L3);
        for n in [1, 2, 4] {
            let par = run_parallel_lcc(&sp, &scene, &frags, Level::L3, n).unwrap();
            assert!(par.report.is_clean(), "workers={n}");
            assert_eq!(par.firings, seq.firings, "workers={n}");
            assert_eq!(
                canonical(&par.consistents),
                canonical(&seq.consistents),
                "workers={n}"
            );
            let seq_sup: Vec<i64> = seq.fragments.iter().map(|f| f.support).collect();
            let par_sup: Vec<i64> = par.fragments.iter().map(|f| f.support).collect();
            assert_eq!(seq_sup, par_sup, "workers={n}");
            assert_eq!(par.work, seq.work, "total work is schedule-independent");
        }
    }

    #[test]
    fn simulated_curve_is_near_linear_on_lcc() {
        let (sp, scene, frags) = setup();
        let lcc = run_lcc(&sp, &scene, &frags, Level::L3);
        let trace = lcc_trace(&lcc);
        let curve = simulated_tlp_curve(&trace, 14);
        assert!((curve[0].1 - 1.0).abs() < 1e-9);
        let s14 = curve[13].1;
        // DC is the smallest dataset (fewest tasks per processor); the
        // figure_6 bench exercises the full three-airport sweep where SF
        // reaches the paper's ~12x.
        assert!(
            s14 > 9.0 && s14 <= 14.0,
            "Figure 6 band (DC): expected near-linear speed-up at 14 processes, got {s14:.2}"
        );
    }

    #[test]
    fn synchronous_lags_asynchronous_under_variance() {
        let (sp, scene, frags) = setup();
        let lcc = run_lcc(&sp, &scene, &frags, Level::L3);
        let trace = lcc_trace(&lcc);
        let sync = synchronous_makespan(&trace, 8);
        let asyn = asynchronous_makespan(&trace, 8);
        assert!(
            sync > asyn * 1.05,
            "sync {sync:.1}s should lag async {asyn:.1}s"
        );
    }

    #[test]
    fn parallel_rtf_equals_sequential() {
        let (sp, scene, _) = setup();
        let batches = spam::rtf::rtf_task_batches(&scene, 9);
        let (seq, _) = spam::rtf::run_rtf_tasks(&sp, &scene, &batches);
        for n in [1, 3] {
            let par = run_parallel_rtf(&sp, &scene, &batches, n).unwrap();
            assert!(par.report.is_clean(), "workers={n}");
            assert_eq!(seq, par.fragments, "workers={n}");
        }
    }

    #[test]
    fn zero_workers_rejected_without_panicking() {
        let (sp, scene, frags) = setup();
        let err = match run_parallel_lcc(&sp, &scene, &frags, Level::L3, 0) {
            Ok(_) => panic!("zero workers must be a typed error"),
            Err(e) => e,
        };
        assert_eq!(err, tlp_fault::SuperviseError::NoWorkers);
        let batches = spam::rtf::rtf_task_batches(&scene, 9);
        assert_eq!(
            run_parallel_rtf(&sp, &scene, &batches, 0).err(),
            Some(tlp_fault::SuperviseError::NoWorkers)
        );
    }

    /// Acceptance scenario: inject a panic into one LCC task of N; the
    /// phase completes with N-1 unit results and the report names the
    /// failed task.
    #[test]
    fn panicking_unit_yields_partial_phase_with_named_dead_letter() {
        let (sp, scene, frags) = setup();
        let seq = run_lcc(&sp, &scene, &frags, Level::L3);
        let n_units = seq.units.len();
        assert!(n_units > 2, "need a few units for the scenario");
        let victim = 1usize;
        let plan = FaultPlan::none().with_task_panic(victim, u32::MAX);
        let par = run_parallel_lcc_supervised(
            &sp,
            &scene,
            &frags,
            Level::L3,
            3,
            &SupervisorConfig::default(),
            &plan,
        )
        .unwrap();
        assert_eq!(par.units.len(), n_units - 1, "partial results expected");
        let dead = par.report.dead_letters();
        assert_eq!(dead.len(), 1);
        assert_eq!(dead[0].task, victim);
        assert_eq!(dead[0].label, seq.report.outcomes[victim].label);
        assert!(dead[0].error.as_deref().unwrap().contains("injected fault"));
        // The surviving units carry less (or equal) total support/firings.
        assert!(par.firings < seq.firings);
    }

    /// Acceptance scenario: the same single-task fault with one retry
    /// allowed recovers completely — the phase equals the sequential run —
    /// and is deterministic under the fixed plan.
    #[test]
    fn retry_recovers_injected_fault_deterministically() {
        let (sp, scene, frags) = setup();
        let seq = run_lcc(&sp, &scene, &frags, Level::L3);
        let plan = FaultPlan::seeded(42).with_task_panic(1, 1);
        let cfg = SupervisorConfig::default()
            .with_retries(1)
            .with_backoff(std::time::Duration::from_millis(1));
        let run =
            || run_parallel_lcc_supervised(&sp, &scene, &frags, Level::L3, 3, &cfg, &plan).unwrap();
        let a = run();
        assert_eq!(a.firings, seq.firings);
        assert_eq!(canonical(&a.consistents), canonical(&seq.consistents));
        assert_eq!(a.report.dead_letters().len(), 0);
        assert_eq!(a.report.total_retries(), 1);
        assert_eq!(
            a.report.outcomes[1].status,
            tlp_fault::TaskStatus::Retried(1)
        );
        let b = run();
        let statuses = |r: &LccPhaseResult| {
            r.report
                .outcomes
                .iter()
                .map(|o| (o.task, o.status.clone(), o.attempts))
                .collect::<Vec<_>>()
        };
        assert_eq!(statuses(&a), statuses(&b), "fixed plan must replay");
        assert_eq!(canonical(&a.consistents), canonical(&b.consistents));
    }

    /// Acceptance scenario: the live-telemetry runner produces exactly the
    /// sequential results while publishing the full series set — engine
    /// mirrors, supervisor counters, and SLO health — into one registry.
    #[test]
    fn live_runner_matches_sequential_and_publishes_everything() {
        use tlp_obs::{Health, Live, LiveValue, SloConfig, SloMonitor};
        let (sp, scene, frags) = setup();
        let seq = run_lcc(&sp, &scene, &frags, Level::L3);
        let live = Live::new(8);
        let slo = Arc::new(SloMonitor::new(SloConfig::for_scene("dc"), live.handle()));
        let par = run_parallel_lcc_live(
            &sp,
            &scene,
            &frags,
            Level::L3,
            3,
            &SupervisorConfig::default(),
            &FaultPlan::none(),
            &Recorder::off(),
            &live,
            Some(&slo),
        )
        .unwrap();
        assert!(par.report.is_clean());
        assert_eq!(par.firings, seq.firings);
        assert_eq!(canonical(&par.consistents), canonical(&seq.consistents));
        assert_eq!(par.work, seq.work, "telemetry must not change work");
        assert_eq!(live.epoch(), par.units.len() as u64);

        let snap = live.snapshot();
        let total = |name: &str| match snap.series.get(name) {
            Some(LiveValue::Counter { total, .. }) => *total,
            other => panic!("{name}: expected counter, got {other:?}"),
        };
        // Engine mirrors add up to the phase totals.
        assert_eq!(total("spam_live_match_units"), par.work.match_units);
        assert_eq!(total("spam_live_firings"), par.firings);
        assert_eq!(total("spam_live_rhs_actions"), par.work.rhs_actions);
        // Supervisor counters.
        assert_eq!(total("spam_live_tasks_completed"), par.units.len() as u64);
        assert!(snap.series.contains_key("spam_live_queue_depth"));
        assert!(snap
            .series
            .keys()
            .any(|k| k.starts_with("spam_live_worker_busy_us{")));
        // SLO series, fed with simulated latencies.
        match snap.series.get("spam_slo_latency_seconds") {
            Some(LiveValue::Histogram(h)) => {
                // Windowed: holds the last `window` epochs' observations.
                assert!(h.count() >= 1);
                assert!(h.count() <= par.units.len() as u64);
                assert!(h.sum() > 0.0, "simulated latencies are positive");
            }
            other => panic!("slo latency histogram missing: {other:?}"),
        }
        assert_eq!(slo.health(), Health::Healthy, "DC L3 meets its objective");
    }

    /// Acceptance scenario: the real work-stealing executor produces the
    /// sequential results bit-for-bit at every worker count, while the
    /// measured report stays internally consistent (task conservation,
    /// utilization in range, a gap-free Gantt).
    #[test]
    fn exec_runner_equals_sequential_at_any_worker_count() {
        let (sp, scene, frags) = setup();
        let seq = run_lcc(&sp, &scene, &frags, Level::L3);
        for n in [1, 2, 4] {
            let (par, measured) = run_parallel_lcc_exec(
                &sp,
                &scene,
                &frags,
                Level::L3,
                &crate::exec::ExecConfig::new(n),
                &SupervisorConfig::default(),
                &FaultPlan::none(),
                &Recorder::off(),
                &Live::off(),
                None,
                None,
            )
            .unwrap();
            assert!(par.report.is_clean(), "workers={n}");
            assert_eq!(par.firings, seq.firings, "workers={n}");
            assert_eq!(
                canonical(&par.consistents),
                canonical(&seq.consistents),
                "workers={n}"
            );
            let seq_sup: Vec<i64> = seq.fragments.iter().map(|f| f.support).collect();
            let par_sup: Vec<i64> = par.fragments.iter().map(|f| f.support).collect();
            assert_eq!(seq_sup, par_sup, "workers={n}");
            assert_eq!(par.work, seq.work, "total work is schedule-independent");
            // Measured-schedule sanity.
            let executed: u64 = measured.workers.iter().map(|w| w.executed).sum();
            assert_eq!(executed, seq.units.len() as u64, "task conservation");
            let u = measured.utilization();
            assert!(u > 0.0 && u <= 1.0 + 1e-9, "utilization {u} out of range");
            assert!(
                measured.timeline("lcc-exec").coverage() > 0.999,
                "measured Gantt must be gap-free"
            );
        }
    }

    /// Acceptance scenario: a killed unit on the real executor retries and
    /// the phase still equals the sequential run — the recovery path is
    /// schedule-independent too.
    #[test]
    fn exec_runner_recovers_injected_fault() {
        let (sp, scene, frags) = setup();
        let seq = run_lcc(&sp, &scene, &frags, Level::L3);
        let plan = FaultPlan::seeded(42).with_task_panic(1, 1);
        let cfg = SupervisorConfig::default()
            .with_retries(1)
            .with_backoff(std::time::Duration::from_millis(1));
        let (par, _) = run_parallel_lcc_exec(
            &sp,
            &scene,
            &frags,
            Level::L3,
            &crate::exec::ExecConfig::new(3),
            &cfg,
            &plan,
            &Recorder::off(),
            &Live::off(),
            None,
            None,
        )
        .unwrap();
        assert_eq!(par.firings, seq.firings);
        assert_eq!(canonical(&par.consistents), canonical(&seq.consistents));
        assert_eq!(par.report.dead_letters().len(), 0);
        assert_eq!(par.report.total_retries(), 1);
    }

    #[test]
    fn lpt_no_worse_than_fifo() {
        let (sp, scene, frags) = setup();
        let lcc = run_lcc(&sp, &scene, &frags, Level::L3);
        let trace = lcc_trace(&lcc);
        let fifo = simulated_tlp_curve(&trace, 14);
        let lpt = simulated_tlp_curve_lpt(&trace, 14);
        assert!(lpt[13].1 >= fifo[13].1 * 0.999);
    }
}
