//! Measured-trace extraction: engine work → simulator task sets.
//!
//! §5.2: the paper measures task-level parallelism by timing task
//! executions against the 1-task-process BASELINE. Our engine counts work
//! units per task deterministically; at the Encore's ~1.5 MIPS those become
//! the per-task service times the multiprocessor simulator replays.

use multimax_sim::{SimResult, Task, TaskSet};
use spam::lcc::LccPhaseResult;
use spam::phases::MIPS;
use spam::rtf::RtfResult;
use tlp_fault::TaskReport;
use tlp_obs::MetricsRegistry;

/// A phase execution converted to a simulator workload.
#[derive(Clone, Debug)]
pub struct PhaseTrace {
    /// Per-task service times + match fractions.
    pub tasks: TaskSet,
    /// Aggregate per-cycle statistics (for the match-parallelism model).
    pub cycle_log: Vec<ops5::CycleStats>,
    /// Total firings across tasks.
    pub firings: u64,
    /// Total RHS actions across tasks.
    pub rhs_actions: u64,
}

/// Builds the trace of an LCC phase run: one simulator task per LCC task.
pub fn lcc_trace(phase: &LccPhaseResult) -> PhaseTrace {
    let tasks = phase
        .units
        .iter()
        .enumerate()
        .map(|(i, u)| Task::with_match(i as u32, u.work.seconds_at(MIPS), u.work.match_fraction()))
        .collect();
    PhaseTrace {
        tasks: TaskSet::new(tasks),
        cycle_log: phase
            .units
            .iter()
            .flat_map(|u| u.cycle_log.clone())
            .collect(),
        firings: phase.firings,
        rhs_actions: phase.units.iter().map(|u| u.rhs_actions).sum(),
    }
}

/// Builds the trace of an RTF phase executed as task batches.
pub fn rtf_trace(results: &[RtfResult]) -> PhaseTrace {
    let tasks = results
        .iter()
        .enumerate()
        .map(|(i, r)| Task::with_match(i as u32, r.work.seconds_at(MIPS), r.work.match_fraction()))
        .collect();
    PhaseTrace {
        tasks: TaskSet::new(tasks),
        cycle_log: results.iter().flat_map(|r| r.cycle_log.clone()).collect(),
        firings: results.iter().map(|r| r.firings).sum(),
        rhs_actions: results.iter().map(|r| r.work.rhs_actions).sum(),
    }
}

/// Records a phase's per-task distributions into `reg`, prefixed with
/// `phase` (e.g. `lcc.service_time_s`). This is the metrics-registry view
/// of a measured trace: service-time and match-fraction histograms plus
/// task/firing totals, and — when a supervision [`TaskReport`] is supplied
/// — queue-wait/retry-latency histograms and the retry counter.
pub fn record_phase_metrics(
    reg: &MetricsRegistry,
    phase: &str,
    trace: &PhaseTrace,
    report: Option<&TaskReport>,
) {
    for t in &trace.tasks.tasks {
        reg.record(&format!("{phase}.service_time_s"), t.service);
        reg.record(&format!("{phase}.match_fraction"), t.match_fraction);
    }
    reg.count(&format!("{phase}.tasks"), trace.tasks.len() as u64);
    reg.count(&format!("{phase}.firings"), trace.firings);
    reg.count(&format!("{phase}.rhs_actions"), trace.rhs_actions);
    if let Some(report) = report {
        for o in &report.outcomes {
            reg.record(&format!("{phase}.queue_wait_s"), o.queue_wait.as_secs_f64());
            if o.attempts > 1 {
                reg.record(
                    &format!("{phase}.retry_latency_s"),
                    o.retry_latency.as_secs_f64(),
                );
            }
        }
        reg.count(
            &format!("{phase}.retries"),
            u64::from(report.total_retries()),
        );
        reg.count(
            &format!("{phase}.dead_letters"),
            report.dead_letters().len() as u64,
        );
    }
}

/// Records a simulated run's queueing behaviour into `reg`: per-task
/// simulated queue-wait and service-time histograms plus makespan and
/// worker-utilization gauges.
pub fn record_sim_metrics(reg: &MetricsRegistry, phase: &str, result: &SimResult) {
    for x in &result.executions {
        reg.record(
            &format!("{phase}.sim_queue_wait_s"),
            x.acquired - x.queued_at,
        );
        reg.record(
            &format!("{phase}.sim_service_time_s"),
            x.finished - x.started,
        );
    }
    reg.gauge(&format!("{phase}.sim_makespan_s"), result.makespan);
    reg.gauge(&format!("{phase}.sim_utilization"), result.utilization());
    reg.count(
        &format!("{phase}.sim_task_retries"),
        u64::from(result.task_retries),
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use spam::lcc::{run_lcc, Level};
    use spam::rtf::run_rtf;
    use spam::rules::SpamProgram;
    use std::sync::Arc;

    #[test]
    fn lcc_trace_preserves_totals() {
        let sp = SpamProgram::build();
        let scene = Arc::new(spam::generate_scene(&spam::datasets::dc().spec));
        let rtf = run_rtf(&sp, &scene);
        let frags = Arc::new(rtf.fragments);
        let lcc = run_lcc(&sp, &scene, &frags, Level::L3);
        let trace = lcc_trace(&lcc);
        assert_eq!(trace.tasks.len(), lcc.units.len());
        assert_eq!(trace.firings, lcc.firings);
        let total: f64 = trace.tasks.total_service();
        assert!((total - lcc.work.seconds_at(MIPS)).abs() / total < 1e-9);
        // Per-task match fractions sit in the calibrated LCC band on
        // average (individual tasks vary).
        let mean_mf: f64 = trace
            .tasks
            .tasks
            .iter()
            .map(|t| t.match_fraction)
            .sum::<f64>()
            / trace.tasks.len() as f64;
        assert!((0.2..0.7).contains(&mean_mf), "mean task mf {mean_mf:.2}");
    }

    #[test]
    fn phase_and_sim_metrics_snapshot() {
        use multimax_sim::{simulate, SimConfig};
        use tlp_obs::Metric;
        let sp = SpamProgram::build();
        let scene = Arc::new(spam::generate_scene(&spam::datasets::dc().spec));
        let rtf = run_rtf(&sp, &scene);
        let frags = Arc::new(rtf.fragments);
        let lcc = run_lcc(&sp, &scene, &frags, Level::L3);
        let trace = lcc_trace(&lcc);
        let reg = MetricsRegistry::new();
        record_phase_metrics(&reg, "lcc", &trace, Some(&lcc.report));
        let result = simulate(&SimConfig::encore(8), &trace.tasks.tasks);
        record_sim_metrics(&reg, "lcc", &result);
        let snap = reg.snapshot();
        match snap.get("lcc.service_time_s") {
            Some(Metric::Histogram(h)) => {
                assert_eq!(h.count(), trace.tasks.len() as u64);
                assert!((h.sum() - trace.tasks.total_service()).abs() < 1e-6);
            }
            other => panic!("expected histogram, got {other:?}"),
        }
        match snap.get("lcc.sim_queue_wait_s") {
            Some(Metric::Histogram(h)) => assert_eq!(h.count(), trace.tasks.len() as u64),
            other => panic!("expected histogram, got {other:?}"),
        }
        assert!(matches!(
            snap.get("lcc.sim_utilization"),
            Some(Metric::Gauge(_))
        ));
        assert!(matches!(snap.get("lcc.firings"), Some(Metric::Counter(_))));
    }
}
