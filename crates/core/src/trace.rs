//! Measured-trace extraction: engine work → simulator task sets.
//!
//! §5.2: the paper measures task-level parallelism by timing task
//! executions against the 1-task-process BASELINE. Our engine counts work
//! units per task deterministically; at the Encore's ~1.5 MIPS those become
//! the per-task service times the multiprocessor simulator replays.

use multimax_sim::{Task, TaskSet};
use spam::lcc::LccPhaseResult;
use spam::phases::MIPS;
use spam::rtf::RtfResult;

/// A phase execution converted to a simulator workload.
#[derive(Clone, Debug)]
pub struct PhaseTrace {
    /// Per-task service times + match fractions.
    pub tasks: TaskSet,
    /// Aggregate per-cycle statistics (for the match-parallelism model).
    pub cycle_log: Vec<ops5::CycleStats>,
    /// Total firings across tasks.
    pub firings: u64,
    /// Total RHS actions across tasks.
    pub rhs_actions: u64,
}

/// Builds the trace of an LCC phase run: one simulator task per LCC task.
pub fn lcc_trace(phase: &LccPhaseResult) -> PhaseTrace {
    let tasks = phase
        .units
        .iter()
        .enumerate()
        .map(|(i, u)| Task::with_match(i as u32, u.work.seconds_at(MIPS), u.work.match_fraction()))
        .collect();
    PhaseTrace {
        tasks: TaskSet::new(tasks),
        cycle_log: phase
            .units
            .iter()
            .flat_map(|u| u.cycle_log.clone())
            .collect(),
        firings: phase.firings,
        rhs_actions: phase.units.iter().map(|u| u.rhs_actions).sum(),
    }
}

/// Builds the trace of an RTF phase executed as task batches.
pub fn rtf_trace(results: &[RtfResult]) -> PhaseTrace {
    let tasks = results
        .iter()
        .enumerate()
        .map(|(i, r)| Task::with_match(i as u32, r.work.seconds_at(MIPS), r.work.match_fraction()))
        .collect();
    PhaseTrace {
        tasks: TaskSet::new(tasks),
        cycle_log: results.iter().flat_map(|r| r.cycle_log.clone()).collect(),
        firings: results.iter().map(|r| r.firings).sum(),
        rhs_actions: results.iter().map(|r| r.work.rhs_actions).sum(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spam::lcc::{run_lcc, Level};
    use spam::rtf::run_rtf;
    use spam::rules::SpamProgram;
    use std::sync::Arc;

    #[test]
    fn lcc_trace_preserves_totals() {
        let sp = SpamProgram::build();
        let scene = Arc::new(spam::generate_scene(&spam::datasets::dc().spec));
        let rtf = run_rtf(&sp, &scene);
        let frags = Arc::new(rtf.fragments);
        let lcc = run_lcc(&sp, &scene, &frags, Level::L3);
        let trace = lcc_trace(&lcc);
        assert_eq!(trace.tasks.len(), lcc.units.len());
        assert_eq!(trace.firings, lcc.firings);
        let total: f64 = trace.tasks.total_service();
        assert!((total - lcc.work.seconds_at(MIPS)).abs() / total < 1e-9);
        // Per-task match fractions sit in the calibrated LCC band on
        // average (individual tasks vary).
        let mean_mf: f64 = trace
            .tasks
            .tasks
            .iter()
            .map(|t| t.match_fraction)
            .sum::<f64>()
            / trace.tasks.len() as f64;
        assert!((0.2..0.7).contains(&mean_mf), "mean task mf {mean_mf:.2}");
    }
}
