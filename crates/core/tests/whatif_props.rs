//! Property tests for the causal what-if engine: a larger virtual speedup
//! on the same target never predicts a larger makespan (the FIFO schedule
//! of independent tasks is monotone in its inputs), the predicted makespan
//! never drops below the perturbed critical-path lower bound, and a 0%
//! speedup is exactly the identity.

use multimax_sim::{SimConfig, Task, TaskSet};
use proptest::prelude::*;
use spam_psm::trace::PhaseTrace;
use spam_psm::whatif::{predict, GapComponent, Target};

/// Synthetic task sets with service times spanning three orders of
/// magnitude and arbitrary match fractions.
fn tasks_strategy() -> impl Strategy<Value = Vec<Task>> {
    prop::collection::vec((0.01f64..10.0, 0.0f64..1.0), 1..60).prop_map(|specs| {
        specs
            .into_iter()
            .enumerate()
            .map(|(i, (service, mf))| Task::with_match(i as u32, service, mf))
            .collect()
    })
}

fn trace_of(tasks: Vec<Task>) -> PhaseTrace {
    PhaseTrace {
        tasks: TaskSet::new(tasks),
        cycle_log: Vec::new(),
        firings: 0,
        rhs_actions: 0,
    }
}

/// One target per task-set-independent kind, plus a task target picked
/// from the set by index.
fn target_for(kind: u8, tasks: &[Task], pick: usize) -> Target {
    match kind {
        0 => Target::Match,
        1 => Target::Level(3),
        2 => Target::Component(GapComponent::Fork),
        3 => Target::Component(GapComponent::Dequeue),
        _ => Target::Task(tasks[pick % tasks.len()].id),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Monotonicity: for the same target, scaling harder never predicts a
    /// larger makespan. Holds because the FIFO greedy schedule of
    /// independent tasks is monotone in service times and overheads —
    /// Graham's scheduling anomalies need precedence constraints the
    /// task-queue model does not have.
    #[test]
    fn larger_virtual_speedup_never_predicts_larger_makespan(
        tasks in tasks_strategy(),
        workers in 1u32..14,
        kind in 0u8..5,
        pick in 0usize..60,
        lo in 0.0f64..100.0,
        delta in 0.0f64..100.0,
    ) {
        let trace = trace_of(tasks);
        let target = target_for(kind, &trace.tasks.tasks, pick);
        let cfg = SimConfig::encore(workers);
        let hi = (lo + delta).min(100.0);
        let small = predict(&trace, None, &cfg, &target, lo).unwrap();
        let large = predict(&trace, None, &cfg, &target, hi).unwrap();
        prop_assert!(
            large.predicted_makespan <= small.predicted_makespan + 1e-9,
            "target {} at {}%: {} then at {}%: {}",
            target, lo, small.predicted_makespan, hi, large.predicted_makespan
        );
    }

    /// The prediction respects the physics of the perturbed workload: the
    /// makespan never drops below the perturbed critical-path lower bound,
    /// and never rises above the unperturbed makespan.
    #[test]
    fn prediction_stays_between_critical_path_and_baseline(
        tasks in tasks_strategy(),
        workers in 1u32..14,
        kind in 0u8..5,
        pick in 0usize..60,
        pct in 0.0f64..100.0,
    ) {
        let trace = trace_of(tasks);
        let target = target_for(kind, &trace.tasks.tasks, pick);
        let cfg = SimConfig::encore(workers);
        let p = predict(&trace, None, &cfg, &target, pct).unwrap();
        prop_assert!(
            p.predicted_makespan >= p.critical.length - 1e-9,
            "target {} at {}%: predicted {} below critical bound {}",
            target, pct, p.predicted_makespan, p.critical.length
        );
        prop_assert!(
            p.predicted_makespan <= p.base_makespan + 1e-9,
            "target {} at {}%: predicted {} above baseline {}",
            target, pct, p.predicted_makespan, p.base_makespan
        );
        // Derived figures stay sane for reporting.
        prop_assert!(p.saved() >= -1e-9);
        prop_assert!(p.speedup() >= 1.0 - 1e-9);
    }

    /// A 0% virtual speedup is the identity on every target kind: same
    /// makespan, same critical chain, zero predicted saving.
    #[test]
    fn zero_scale_is_a_no_op(
        tasks in tasks_strategy(),
        workers in 1u32..14,
        kind in 0u8..5,
        pick in 0usize..60,
    ) {
        let trace = trace_of(tasks);
        let target = target_for(kind, &trace.tasks.tasks, pick);
        let cfg = SimConfig::encore(workers);
        let p = predict(&trace, None, &cfg, &target, 0.0).unwrap();
        prop_assert_eq!(p.predicted_makespan, p.base_makespan);
        prop_assert_eq!(p.critical.length, p.base_critical.length);
        prop_assert_eq!(p.saved(), 0.0);
    }
}
