//! Property tests for the speed-up-attribution invariants: the gap
//! components sum exactly to the ideal-vs-measured gap (the decomposition
//! never silently loses processor-seconds), and the critical task chain
//! lower-bounds the makespan of every simulated schedule — including runs
//! with injected worker deaths.

use multimax_sim::{simulate, simulate_with_faults, SimConfig, Task, TaskSet};
use proptest::prelude::*;
use spam_psm::attribution::{critical_path, GapAttribution};
use spam_psm::trace::PhaseTrace;
use tlp_fault::FaultPlan;

/// Synthetic task sets with service times spanning three orders of
/// magnitude and arbitrary match fractions.
fn tasks_strategy() -> impl Strategy<Value = Vec<Task>> {
    prop::collection::vec((0.01f64..10.0, 0.0f64..1.0), 1..80).prop_map(|specs| {
        specs
            .into_iter()
            .enumerate()
            .map(|(i, (service, mf))| Task::with_match(i as u32, service, mf))
            .collect()
    })
}

fn trace_of(tasks: Vec<Task>) -> PhaseTrace {
    PhaseTrace {
        tasks: TaskSet::new(tasks),
        cycle_log: Vec::new(),
        firings: 0,
        rhs_actions: 0,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn components_sum_to_the_gap(
        tasks in tasks_strategy(),
        workers in 1u32..14,
    ) {
        let base = simulate(&SimConfig::encore(1), &tasks).makespan;
        let r = simulate(&SimConfig::encore(workers), &tasks);
        let a = GapAttribution::attribute(base, &r, workers);
        let sum: f64 = a.components().iter().map(|(_, v)| v).sum();
        let tol = 1e-9 * a.capacity().max(1.0);
        prop_assert!(
            (sum - a.gap()).abs() <= tol,
            "components {} != gap {} (workers {})", sum, a.gap(), workers
        );
        // The remainder bucket never goes (meaningfully) negative: the
        // named overheads cannot exceed the non-busy capacity.
        prop_assert!(a.idle >= -tol, "negative idle {}", a.idle);
        // Ideal bounds measured for a work-conserving schedule.
        prop_assert!(a.measured_speedup() <= a.ideal_speedup() + 1e-9);
    }

    #[test]
    fn components_sum_to_the_gap_under_faults(
        tasks in tasks_strategy(),
        workers in 2u32..10,
        seed in 0u64..1000,
    ) {
        let base = simulate(&SimConfig::encore(1), &tasks).makespan;
        // Kill worker 0 after its first dispatch; seeded plan varies the
        // rest deterministically.
        let plan = FaultPlan::seeded(seed).with_worker_death(0, 1);
        let r = simulate_with_faults(&SimConfig::encore(workers), &tasks, &plan);
        let a = GapAttribution::attribute(base, &r, workers);
        let sum: f64 = a.components().iter().map(|(_, v)| v).sum();
        let tol = 1e-9 * a.capacity().max(1.0);
        prop_assert!(
            (sum - a.gap()).abs() <= tol,
            "components {} != gap {} with faults", sum, a.gap()
        );
        prop_assert!(a.fault >= 0.0);
    }

    #[test]
    fn critical_path_lower_bounds_every_makespan(
        tasks in tasks_strategy(),
        workers in 1u32..14,
    ) {
        let trace = trace_of(tasks);
        let cfg = SimConfig::encore(workers);
        let cp = critical_path(&trace, &cfg);
        let r = simulate(&cfg, &trace.tasks.tasks);
        prop_assert!(
            cp.length <= r.makespan + 1e-9,
            "critical path {} > makespan {} at {} workers",
            cp.length, r.makespan, workers
        );
        // The chain's task really is in the set.
        prop_assert!(trace.tasks.tasks.iter().any(|t| t.id == cp.task));
    }

    #[test]
    fn critical_path_holds_with_match_speedup(
        tasks in tasks_strategy(),
        workers in 1u32..10,
        match_speedup in 1.0f64..4.0,
    ) {
        let trace = trace_of(tasks);
        let cfg = SimConfig { match_speedup, ..SimConfig::encore(workers) };
        let cp = critical_path(&trace, &cfg);
        let r = simulate(&cfg, &trace.tasks.tasks);
        prop_assert!(cp.length <= r.makespan + 1e-9);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The SVM accountant's acceptance identity: the nine cross-machine gap
    /// components sum to the observed-capacity-vs-net-busy difference
    /// exactly, for arbitrary workloads, worker counts, clock skews, and
    /// recorder levels.
    #[test]
    fn svm_gap_components_sum_exactly(
        services in prop::collection::vec(0.2f64..6.0, 20..120),
        workers in 2u32..26,
        skew_us in -5_000i64..5_000,
        drift in -150.0f64..150.0,
        full in 0u8..2,
    ) {
        use multimax_sim::{simulate_svm, ClockDomain, SvmSimConfig};
        use spam_psm::attribution::build_svm_report;
        let ts = TaskSet::from_services(&services);
        let mut cfg = SvmSimConfig::dual_encore(workers);
        cfg.remote_clock = ClockDomain::new(skew_us, drift);
        cfg.level = if full == 1 { tlp_obs::ObsLevel::Full } else { tlp_obs::ObsLevel::Off };
        let r = simulate_svm(&cfg, &ts.tasks);
        let report = build_svm_report("prop", "L?", "tuned", &r, &ts, 3);
        let a = &report.attribution;
        let sum: f64 = a.components().iter().map(|(_, v)| v).sum();
        prop_assert!(
            (sum - a.gap()).abs() < 1e-9 * a.capacity().max(1.0),
            "components {} != gap {}", sum, a.gap()
        );
        // The pieces the accountant pulls out of busy/fork stay
        // non-negative, and net busy never exceeds raw busy.
        prop_assert!(a.busy_net <= r.sim.busy.iter().sum::<f64>() + 1e-9);
        prop_assert!(a.fork >= -1e-9 && a.warmup >= -1e-9);
        prop_assert!(a.page_wait >= 0.0 && a.transfer >= 0.0);
        // Equivalent processors never exceeds the worker count (the SVM
        // run cannot beat the pure-TLP run it is compared against).
        prop_assert!(report.equivalent <= f64::from(workers) + 1e-6);
    }
}
