//! Differential property tests across the three execution substrates:
//! the sequential engine, the threaded parallel matcher (`paraops5`), and
//! the real work-stealing executor (`spam_psm::exec`). Over random
//! programs, working-memory seeds, and worker counts — with and without
//! seeded kills — all three must produce **identical firing sequences**
//! (the recognize–act cycle log) and **bit-identical work totals**; only
//! the wall-clock schedule is allowed to differ.

use ops5::{sym, Engine, Program, Value, WorkCounters};
use paraops5::threaded::{MatchPoolOptions, RecoveryPolicy, ThreadedMatcher};
use proptest::prelude::*;
use spam_psm::exec::ExecConfig;
use spam_psm::TaskAttempt;
use std::sync::Arc;
use tlp_fault::{FaultPlan, SupervisorConfig};
use tlp_obs::{Live, Recorder};

/// Quiescing programs over a common `(item kind count)` seed class, so one
/// seed strategy drives them all. Each exercises a different control shape:
/// a countdown with negation, a destructive fold, and symmetric pairing.
const PROGRAMS: &[&str] = &[
    // 1: countdown — modify loops then a negation-guarded finish
    "(literalize item kind count)
     (literalize done kind)
     (p consume (item ^kind <k> ^count { <n> > 0 })
        -->
        (modify 1 ^count (compute <n> - 1)))
     (p finish (item ^kind <k> ^count 0) -(done ^kind <k>)
        -->
        (make done ^kind <k>)
        (remove 1))",
    // 2: destructive fold into an accumulator
    "(literalize item kind count)
     (literalize sum v)
     (p fold (item ^count <a>) (sum ^v <s>)
        -->
        (modify 2 ^v (compute <s> + <a>))
        (remove 1))",
    // 3: symmetric pairing with a negation latch
    "(literalize item kind count)
     (literalize pair kind)
     (p pair (item ^kind <k> ^count <a>) (item ^kind <k> ^count > <a>)
        -(pair ^kind <k>)
        -->
        (make pair ^kind <k>))",
];

/// Which matcher backs the engine for one arm.
enum Arm {
    Sequential,
    /// Threaded matcher at `workers` match processes; `kill` optionally
    /// fates one worker to die after a number of chunks (Respawn policy).
    Threaded {
        workers: usize,
        kill: Option<(usize, u64)>,
    },
}

/// Runs one engine over `seeds` and returns the observable identity: the
/// firing sequence (cycle-log production ids), the work counters, and the
/// sorted final working memory.
fn run_arm(src: &str, seeds: &[(u8, i8)], arm: Arm) -> (Vec<u32>, WorkCounters, Vec<String>) {
    let program = Arc::new(Program::parse(src).unwrap());
    let compiled = Engine::compile(&program).unwrap();
    let mut e = match arm {
        Arm::Sequential => Engine::with_compiled(Arc::clone(&program), compiled),
        Arm::Threaded { workers, kill } => {
            let opts = MatchPoolOptions {
                fault_plan: match kill {
                    Some((w, after)) => FaultPlan::seeded(9).with_worker_death(w, after),
                    None => FaultPlan::none(),
                },
                recovery: RecoveryPolicy::Respawn,
                ..MatchPoolOptions::default()
            };
            let m = ThreadedMatcher::with_options(&program, &compiled, workers, opts).unwrap();
            Engine::with_matcher(Arc::clone(&program), compiled, Box::new(m))
        }
    };
    e.enable_cycle_log();
    if program.class(sym("sum")).is_some() {
        e.make_wme("sum", &[("v", 0.into())]).unwrap();
    }
    for &(k, n) in seeds {
        e.make_wme(
            "item",
            &[
                ("kind", Value::symbol(&format!("k{}", k % 4))),
                ("count", i64::from(n).into()),
            ],
        )
        .unwrap();
    }
    e.run(10_000);
    let firing_seq: Vec<u32> = e.take_cycle_log().iter().map(|c| c.production).collect();
    let mut wm: Vec<String> = e.wm().iter().map(|(_, w)| w.to_string()).collect();
    wm.sort();
    (firing_seq, e.work(), wm)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// One engine, three substrates: the threaded matcher — healthy or
    /// with a fated worker respawning mid-run — must reproduce the
    /// sequential engine's firing sequence, work total, and final WM.
    #[test]
    fn threaded_matcher_equals_sequential(
        prog_idx in 0usize..PROGRAMS.len(),
        seeds in prop::collection::vec((0u8..4, 0i8..5), 1..10),
        workers in 1usize..4,
        (do_kill, kill_w, kill_after) in (0u8..2, 0usize..3, 0u64..3),
    ) {
        let src = PROGRAMS[prog_idx];
        let seq = run_arm(src, &seeds, Arm::Sequential);
        let kill = (do_kill == 1).then_some((kill_w % workers.max(1), kill_after));
        let par = run_arm(src, &seeds, Arm::Threaded { workers, kill });
        prop_assert_eq!(&par.0, &seq.0, "firing sequences must be identical");
        prop_assert_eq!(&par.1, &seq.1, "work totals must be bit-identical");
        prop_assert_eq!(&par.2, &seq.2, "final WM must be identical");
    }

    /// Many engines, real tasks: the work-stealing executor runs each seed
    /// group as an independent engine instance; every slot must carry the
    /// exact sequential result for its group regardless of worker count,
    /// steal order, or a seeded task kill (retried once).
    #[test]
    fn real_executor_equals_sequential_per_task(
        prog_idx in 0usize..PROGRAMS.len(),
        seeds in prop::collection::vec((0u8..4, 0i8..5), 2..14),
        workers in 1usize..5,
        (do_kill, kill_sel) in (0u8..2, 0usize..4),
    ) {
        let kill_task = (do_kill == 1).then_some(kill_sel);
        let src = PROGRAMS[prog_idx];
        let groups: Vec<Vec<(u8, i8)>> = seeds.chunks(3).map(<[_]>::to_vec).collect();
        let reference: Vec<_> = groups
            .iter()
            .map(|g| run_arm(src, g, Arm::Sequential))
            .collect();

        let labels: Vec<String> = (0..groups.len()).map(|i| format!("unit {i}")).collect();
        let mut plan = FaultPlan::seeded(7);
        let mut cfg = SupervisorConfig::default();
        if let Some(k) = kill_task {
            plan = plan.with_task_panic(k % groups.len(), 1);
            cfg = cfg
                .with_retries(1)
                .with_backoff(std::time::Duration::from_millis(1));
        }
        let (slots, report, measured) = spam_psm::exec::execute_observed(
            &ExecConfig::new(workers),
            labels,
            &[],
            &cfg,
            &plan,
            &Recorder::off(),
            &Live::off(),
            None,
            None,
            |_, _| {},
            |a: TaskAttempt| run_arm(src, &groups[a.task], Arm::Sequential),
        )
        .unwrap();
        prop_assert_eq!(report.dead_letters().len(), 0);
        for (i, slot) in slots.into_iter().enumerate() {
            let got = slot.expect("no dead letters, so every slot is filled");
            prop_assert_eq!(&got.0, &reference[i].0, "task {} firing sequence", i);
            prop_assert_eq!(&got.1, &reference[i].1, "task {} work total", i);
            prop_assert_eq!(&got.2, &reference[i].2, "task {} final WM", i);
        }
        // Attempt conservation: every task once, plus one per retry.
        let executed: u64 = measured.workers.iter().map(|w| w.executed).sum();
        let expected = groups.len() as u64 + u64::from(report.total_retries());
        prop_assert_eq!(executed, expected, "attempt conservation");
    }
}
