//! Property-based tests for the geometry substrate.

use proptest::prelude::*;
use spam_geometry::{convex_hull, Aabb, Obb, Point, Polygon, Segment, ShapeDescriptors, Vector};

fn pt() -> impl Strategy<Value = Point> {
    (-1000.0..1000.0f64, -1000.0..1000.0f64).prop_map(|(x, y)| Point::new(x, y))
}

fn rect() -> impl Strategy<Value = Polygon> {
    (
        pt(),
        1.0..500.0f64,
        1.0..500.0f64,
        0.0..std::f64::consts::PI,
    )
        .prop_map(|(c, l, w, a)| Polygon::oriented_rect(c, l, w, a))
}

proptest! {
    #[test]
    fn segment_intersection_symmetric(a in pt(), b in pt(), c in pt(), d in pt()) {
        let s1 = Segment::new(a, b);
        let s2 = Segment::new(c, d);
        prop_assert_eq!(s1.intersects(&s2), s2.intersects(&s1));
    }

    #[test]
    fn segment_distance_symmetric_and_consistent(a in pt(), b in pt(), c in pt(), d in pt()) {
        let s1 = Segment::new(a, b);
        let s2 = Segment::new(c, d);
        let d12 = s1.distance_to_segment(&s2);
        let d21 = s2.distance_to_segment(&s1);
        prop_assert!((d12 - d21).abs() < 1e-9);
        if s1.intersects(&s2) {
            prop_assert_eq!(d12, 0.0);
        } else {
            prop_assert!(d12 > 0.0);
        }
    }

    #[test]
    fn hull_contains_inputs_and_is_convex(pts in prop::collection::vec(pt(), 3..60)) {
        let h = convex_hull(&pts);
        if h.len() >= 3 {
            let poly = Polygon::new(h.clone());
            for &p in &pts {
                // Allow boundary tolerance.
                prop_assert!(poly.contains_point(p) || poly.distance_to_point(p) < 1e-6);
            }
            // Convexity: every turn is counter-clockwise or collinear.
            let n = h.len();
            for i in 0..n {
                let o = h[i];
                let a = h[(i + 1) % n];
                let b = h[(i + 2) % n];
                prop_assert!((a - o).cross(b - o) >= -1e-9);
            }
        }
    }

    #[test]
    fn polygon_intersects_symmetric(a in rect(), b in rect()) {
        prop_assert_eq!(a.intersects(&b), b.intersects(&a));
    }

    #[test]
    fn polygon_min_distance_symmetric(a in rect(), b in rect()) {
        let dab = a.min_distance(&b);
        let dba = b.min_distance(&a);
        prop_assert!((dab - dba).abs() < 1e-9);
        prop_assert!(dab >= 0.0);
    }

    #[test]
    fn polygon_distance_zero_iff_intersecting(a in rect(), b in rect()) {
        let inter = a.intersects(&b);
        let dist = a.min_distance(&b);
        if inter {
            prop_assert_eq!(dist, 0.0);
        } else {
            prop_assert!(dist > 0.0);
        }
    }

    #[test]
    fn translation_preserves_descriptors(r in rect(), dx in -100.0..100.0f64, dy in -100.0..100.0f64) {
        let moved = r.translated(Vector::new(dx, dy));
        let d0 = ShapeDescriptors::of_polygon(&r);
        let d1 = ShapeDescriptors::of_polygon(&moved);
        prop_assert!((d0.area - d1.area).abs() < 1e-6);
        prop_assert!((d0.perimeter - d1.perimeter).abs() < 1e-6);
        prop_assert!((d0.compactness - d1.compactness).abs() < 1e-9);
    }

    #[test]
    fn obb_covers_all_points(pts in prop::collection::vec(pt(), 1..40)) {
        if let Some(obb) = Obb::of_points(&pts) {
            if obb.width() > 1e-9 {
                let cover = Polygon::new(obb.corners().to_vec());
                for &p in &pts {
                    prop_assert!(
                        cover.contains_point(p) || cover.distance_to_point(p) < 1e-6,
                        "obb must cover {:?}", p
                    );
                }
            }
        }
    }

    #[test]
    fn bbox_contains_polygon_vertices(r in rect()) {
        let bb = r.bbox();
        for &v in r.vertices() {
            prop_assert!(bb.contains_point(v));
        }
        prop_assert!((bb.area() + 1e-6) >= r.area());
    }

    #[test]
    fn aabb_union_is_commutative_and_covering(a in pt(), b in pt(), c in pt(), d in pt()) {
        let b1 = Aabb::from_corners(a, b);
        let b2 = Aabb::from_corners(c, d);
        let u = b1.union(&b2);
        prop_assert_eq!(u, b2.union(&b1));
        prop_assert!(u.contains_point(a) && u.contains_point(b));
        prop_assert!(u.contains_point(c) && u.contains_point(d));
    }

    #[test]
    fn adjacency_monotone_in_gap(a in rect(), b in rect(), g1 in 0.0..50.0f64, g2 in 0.0..50.0f64) {
        let (lo, hi) = if g1 <= g2 { (g1, g2) } else { (g2, g1) };
        if a.adjacent_to(&b, lo) {
            prop_assert!(a.adjacent_to(&b, hi));
        }
    }
}
