//! Line segments: intersection and distance predicates.

use crate::point::{orientation, Orientation, Point, Vector};

/// A closed line segment between two points.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Segment {
    /// First endpoint.
    pub a: Point,
    /// Second endpoint.
    pub b: Point,
}

impl Segment {
    /// Creates a segment.
    #[inline]
    pub const fn new(a: Point, b: Point) -> Self {
        Segment { a, b }
    }

    /// Segment length.
    #[inline]
    pub fn length(&self) -> f64 {
        self.a.distance(self.b)
    }

    /// Direction vector `b - a` (not normalised).
    #[inline]
    pub fn direction(&self) -> Vector {
        self.b - self.a
    }

    /// Midpoint of the segment.
    #[inline]
    pub fn midpoint(&self) -> Point {
        self.a.midpoint(self.b)
    }

    /// True when `p` lies on this segment (within [`crate::EPSILON`]).
    pub fn contains_point(&self, p: Point) -> bool {
        if orientation(self.a, self.b, p) != Orientation::Collinear {
            return false;
        }
        let d = self.direction();
        let t = (p - self.a).dot(d);
        t >= -crate::EPSILON && t <= d.norm_sq() + crate::EPSILON
    }

    /// True when this segment intersects `other` (including endpoint touches
    /// and collinear overlap).
    pub fn intersects(&self, other: &Segment) -> bool {
        let o1 = orientation(self.a, self.b, other.a);
        let o2 = orientation(self.a, self.b, other.b);
        let o3 = orientation(other.a, other.b, self.a);
        let o4 = orientation(other.a, other.b, self.b);

        if o1 != o2 && o3 != o4 && o1 != Orientation::Collinear && o2 != Orientation::Collinear {
            return true;
        }
        // Collinear / endpoint special cases.
        (o1 == Orientation::Collinear && self.contains_point(other.a))
            || (o2 == Orientation::Collinear && self.contains_point(other.b))
            || (o3 == Orientation::Collinear && other.contains_point(self.a))
            || (o4 == Orientation::Collinear && other.contains_point(self.b))
            || (o1 != o2 && o3 != o4)
    }

    /// The proper intersection point of the two segments' supporting lines,
    /// if the segments cross at a single point. Returns `None` for parallel
    /// or non-crossing segments.
    pub fn intersection_point(&self, other: &Segment) -> Option<Point> {
        let r = self.direction();
        let s = other.direction();
        let denom = r.cross(s);
        if denom.abs() <= crate::EPSILON {
            return None; // parallel (possibly collinear)
        }
        let qp = other.a - self.a;
        let t = qp.cross(s) / denom;
        let u = qp.cross(r) / denom;
        let tol = 1e-12;
        if (-tol..=1.0 + tol).contains(&t) && (-tol..=1.0 + tol).contains(&u) {
            Some(self.a + r * t)
        } else {
            None
        }
    }

    /// Closest point on the segment to `p`.
    pub fn closest_point_to(&self, p: Point) -> Point {
        let d = self.direction();
        let len_sq = d.norm_sq();
        if len_sq <= crate::EPSILON {
            return self.a; // degenerate segment
        }
        let t = ((p - self.a).dot(d) / len_sq).clamp(0.0, 1.0);
        self.a + d * t
    }

    /// Minimum distance from `p` to the segment.
    #[inline]
    pub fn distance_to_point(&self, p: Point) -> f64 {
        self.closest_point_to(p).distance(p)
    }

    /// Minimum distance between two segments (0 when they intersect).
    pub fn distance_to_segment(&self, other: &Segment) -> f64 {
        if self.intersects(other) {
            return 0.0;
        }
        let d1 = self.distance_to_point(other.a);
        let d2 = self.distance_to_point(other.b);
        let d3 = other.distance_to_point(self.a);
        let d4 = other.distance_to_point(self.b);
        d1.min(d2).min(d3).min(d4)
    }

    /// Angle of the segment direction in radians, folded into `[0, π)` so
    /// that direction reversal does not change the answer.
    pub fn axis_angle(&self) -> f64 {
        let mut a = self.direction().angle();
        if a < 0.0 {
            a += std::f64::consts::PI;
        }
        if a >= std::f64::consts::PI {
            a -= std::f64::consts::PI;
        }
        a
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seg(ax: f64, ay: f64, bx: f64, by: f64) -> Segment {
        Segment::new(Point::new(ax, ay), Point::new(bx, by))
    }

    #[test]
    fn crossing_segments_intersect() {
        let s1 = seg(0.0, 0.0, 10.0, 10.0);
        let s2 = seg(0.0, 10.0, 10.0, 0.0);
        assert!(s1.intersects(&s2));
        let p = s1.intersection_point(&s2).unwrap();
        assert!((p.x - 5.0).abs() < 1e-9 && (p.y - 5.0).abs() < 1e-9);
    }

    #[test]
    fn disjoint_segments_do_not_intersect() {
        let s1 = seg(0.0, 0.0, 1.0, 0.0);
        let s2 = seg(0.0, 1.0, 1.0, 1.0);
        assert!(!s1.intersects(&s2));
        assert!(s1.intersection_point(&s2).is_none());
        assert!((s1.distance_to_segment(&s2) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn touching_at_endpoint_counts_as_intersection() {
        let s1 = seg(0.0, 0.0, 1.0, 1.0);
        let s2 = seg(1.0, 1.0, 2.0, 0.0);
        assert!(s1.intersects(&s2));
        assert_eq!(s1.distance_to_segment(&s2), 0.0);
    }

    #[test]
    fn collinear_overlap_intersects() {
        let s1 = seg(0.0, 0.0, 2.0, 0.0);
        let s2 = seg(1.0, 0.0, 3.0, 0.0);
        assert!(s1.intersects(&s2));
        // but the supporting lines are parallel, so no unique crossing point:
        assert!(s1.intersection_point(&s2).is_none());
    }

    #[test]
    fn collinear_disjoint_does_not_intersect() {
        let s1 = seg(0.0, 0.0, 1.0, 0.0);
        let s2 = seg(2.0, 0.0, 3.0, 0.0);
        assert!(!s1.intersects(&s2));
        assert!((s1.distance_to_segment(&s2) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn closest_point_clamps_to_endpoints() {
        let s = seg(0.0, 0.0, 10.0, 0.0);
        assert_eq!(
            s.closest_point_to(Point::new(-5.0, 3.0)),
            Point::new(0.0, 0.0)
        );
        assert_eq!(
            s.closest_point_to(Point::new(15.0, 3.0)),
            Point::new(10.0, 0.0)
        );
        assert_eq!(
            s.closest_point_to(Point::new(4.0, 3.0)),
            Point::new(4.0, 0.0)
        );
    }

    #[test]
    fn degenerate_segment_distance() {
        let s = seg(1.0, 1.0, 1.0, 1.0);
        assert!((s.distance_to_point(Point::new(4.0, 5.0)) - 5.0).abs() < 1e-12);
        assert_eq!(s.length(), 0.0);
    }

    #[test]
    fn axis_angle_folds_direction() {
        let s1 = seg(0.0, 0.0, 1.0, 1.0);
        let s2 = seg(1.0, 1.0, 0.0, 0.0);
        assert!((s1.axis_angle() - s2.axis_angle()).abs() < 1e-12);
        assert!((s1.axis_angle() - std::f64::consts::FRAC_PI_4).abs() < 1e-12);
    }

    #[test]
    fn contains_point_on_and_off() {
        let s = seg(0.0, 0.0, 4.0, 0.0);
        assert!(s.contains_point(Point::new(2.0, 0.0)));
        assert!(s.contains_point(Point::new(0.0, 0.0)));
        assert!(s.contains_point(Point::new(4.0, 0.0)));
        assert!(!s.contains_point(Point::new(5.0, 0.0)));
        assert!(!s.contains_point(Point::new(2.0, 0.1)));
    }
}
