//! # spam-geometry
//!
//! A small, dependency-free 2-D computational-geometry library built as the
//! substrate for the SPAM aerial-image interpretation system (Harvey et al.,
//! PPoPP 1990).
//!
//! SPAM is unusual among production systems studied for parallelism in that a
//! large fraction of its run time is spent *outside* the match phase, in
//! geometric right-hand-side evaluation: spatial-constraint checks such as
//! *runways intersect taxiways* or *terminal buildings are adjacent to parking
//! aprons*. In the original system these checks ran as external processes
//! forked from Lisp (later ported to C function calls). This crate provides
//! those primitives:
//!
//! * [`Point`], [`Vector`], [`Segment`], [`Aabb`] — basic types;
//! * [`Polygon`] — simple polygons with area / centroid / containment /
//!   intersection / distance / adjacency predicates;
//! * [`convex_hull`] — Andrew's monotone chain;
//! * [`Obb`] — minimum-area oriented bounding box (rotating calipers) and the
//!   shape descriptors derived from it (elongation, orientation,
//!   rectangularity);
//! * [`descriptors`] — region shape statistics used by SPAM's
//!   region-to-fragment classification rules;
//! * [`GridIndex`] — a uniform-grid spatial index for neighbour queries over
//!   scene regions;
//! * [`alignment`] — collinearity / linear-alignment tests used by SPAM's
//!   top-down RTF re-entry.
//!
//! All computation is `f64`, deterministic, and allocation-conscious: the hot
//! predicates (`intersects`, `adjacent_to`, `min_distance`) allocate nothing.
//!
//! ```
//! use spam_geometry::{Polygon, Point};
//!
//! let runway = Polygon::axis_rect(Point::new(0.0, 0.0), 3000.0, 60.0);
//! let taxiway = Polygon::axis_rect(Point::new(1500.0, -200.0), 40.0, 500.0);
//! assert!(runway.bbox().intersects(&taxiway.bbox()) || !runway.intersects(&taxiway));
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod alignment;
pub mod bbox;
pub mod clip;
pub mod descriptors;
pub mod grid;
pub mod hull;
pub mod obb;
pub mod point;
pub mod polygon;
pub mod segment;

pub use alignment::{aligned, collinearity, AlignmentReport};
pub use bbox::Aabb;
pub use clip::{clip_convex, coverage_fraction, intersection_area};
pub use descriptors::ShapeDescriptors;
pub use grid::GridIndex;
pub use hull::convex_hull;
pub use obb::Obb;
pub use point::{Point, Vector};
pub use polygon::Polygon;
pub use segment::Segment;

/// Geometric tolerance used for exact-coincidence tests.
pub const EPSILON: f64 = 1e-9;

/// Default adjacency gap (metres) below which two regions count as adjacent.
///
/// The SPAM segmentations are metric ground coordinates; two regions closer
/// than this gap are considered touching. This mirrors the original system's
/// *adjacency* constraint, which tolerated small segmentation gaps.
pub const ADJACENCY_GAP: f64 = 15.0;
