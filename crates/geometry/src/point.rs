//! Points and vectors in the scene plane.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

/// A point in 2-D ground coordinates (metres).
#[derive(Clone, Copy, PartialEq, Default)]
pub struct Point {
    /// Easting coordinate.
    pub x: f64,
    /// Northing coordinate.
    pub y: f64,
}

/// A displacement between two [`Point`]s.
#[derive(Clone, Copy, PartialEq, Default)]
pub struct Vector {
    /// X component.
    pub x: f64,
    /// Y component.
    pub y: f64,
}

impl fmt::Debug for Point {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({:.3}, {:.3})", self.x, self.y)
    }
}

impl fmt::Debug for Vector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "<{:.3}, {:.3}>", self.x, self.y)
    }
}

impl Point {
    /// Creates a point.
    #[inline]
    pub const fn new(x: f64, y: f64) -> Self {
        Point { x, y }
    }

    /// The origin.
    pub const ORIGIN: Point = Point { x: 0.0, y: 0.0 };

    /// Euclidean distance to `other`.
    #[inline]
    pub fn distance(&self, other: Point) -> f64 {
        (*self - other).norm()
    }

    /// Squared Euclidean distance to `other` (avoids the square root).
    #[inline]
    pub fn distance_sq(&self, other: Point) -> f64 {
        (*self - other).norm_sq()
    }

    /// Midpoint of the segment from `self` to `other`.
    #[inline]
    pub fn midpoint(&self, other: Point) -> Point {
        Point::new((self.x + other.x) * 0.5, (self.y + other.y) * 0.5)
    }

    /// Linear interpolation: `t = 0` gives `self`, `t = 1` gives `other`.
    #[inline]
    pub fn lerp(&self, other: Point, t: f64) -> Point {
        Point::new(
            self.x + (other.x - self.x) * t,
            self.y + (other.y - self.y) * t,
        )
    }

    /// Rotate about `pivot` by `angle` radians (counter-clockwise).
    pub fn rotate_about(&self, pivot: Point, angle: f64) -> Point {
        let (s, c) = angle.sin_cos();
        let d = *self - pivot;
        Point::new(pivot.x + d.x * c - d.y * s, pivot.y + d.x * s + d.y * c)
    }

    /// True when every coordinate is finite.
    #[inline]
    pub fn is_finite(&self) -> bool {
        self.x.is_finite() && self.y.is_finite()
    }
}

impl Vector {
    /// Creates a vector.
    #[inline]
    pub const fn new(x: f64, y: f64) -> Self {
        Vector { x, y }
    }

    /// Euclidean norm.
    #[inline]
    pub fn norm(&self) -> f64 {
        self.norm_sq().sqrt()
    }

    /// Squared norm.
    #[inline]
    pub fn norm_sq(&self) -> f64 {
        self.x * self.x + self.y * self.y
    }

    /// Dot product.
    #[inline]
    pub fn dot(&self, other: Vector) -> f64 {
        self.x * other.x + self.y * other.y
    }

    /// 2-D cross product (z-component of the 3-D cross product).
    #[inline]
    pub fn cross(&self, other: Vector) -> f64 {
        self.x * other.y - self.y * other.x
    }

    /// Unit vector in the same direction. Returns the zero vector unchanged.
    pub fn normalized(&self) -> Vector {
        let n = self.norm();
        if n <= f64::EPSILON {
            *self
        } else {
            Vector::new(self.x / n, self.y / n)
        }
    }

    /// Perpendicular vector (rotated +90°).
    #[inline]
    pub fn perp(&self) -> Vector {
        Vector::new(-self.y, self.x)
    }

    /// Angle of the vector in radians, in `(-π, π]`.
    #[inline]
    pub fn angle(&self) -> f64 {
        self.y.atan2(self.x)
    }

    /// Unit vector at `angle` radians.
    #[inline]
    pub fn from_angle(angle: f64) -> Vector {
        let (s, c) = angle.sin_cos();
        Vector::new(c, s)
    }
}

/// Orientation of the ordered triple `(a, b, c)`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Orientation {
    /// Counter-clockwise turn.
    Ccw,
    /// Clockwise turn.
    Cw,
    /// The three points are collinear.
    Collinear,
}

/// Computes the orientation of the ordered point triple `(a, b, c)`.
#[inline]
pub fn orientation(a: Point, b: Point, c: Point) -> Orientation {
    let v = (b - a).cross(c - a);
    if v > crate::EPSILON {
        Orientation::Ccw
    } else if v < -crate::EPSILON {
        Orientation::Cw
    } else {
        Orientation::Collinear
    }
}

impl Sub for Point {
    type Output = Vector;
    #[inline]
    fn sub(self, rhs: Point) -> Vector {
        Vector::new(self.x - rhs.x, self.y - rhs.y)
    }
}

impl Add<Vector> for Point {
    type Output = Point;
    #[inline]
    fn add(self, rhs: Vector) -> Point {
        Point::new(self.x + rhs.x, self.y + rhs.y)
    }
}

impl Sub<Vector> for Point {
    type Output = Point;
    #[inline]
    fn sub(self, rhs: Vector) -> Point {
        Point::new(self.x - rhs.x, self.y - rhs.y)
    }
}

impl AddAssign<Vector> for Point {
    #[inline]
    fn add_assign(&mut self, rhs: Vector) {
        self.x += rhs.x;
        self.y += rhs.y;
    }
}

impl SubAssign<Vector> for Point {
    #[inline]
    fn sub_assign(&mut self, rhs: Vector) {
        self.x -= rhs.x;
        self.y -= rhs.y;
    }
}

impl Add for Vector {
    type Output = Vector;
    #[inline]
    fn add(self, rhs: Vector) -> Vector {
        Vector::new(self.x + rhs.x, self.y + rhs.y)
    }
}

impl Sub for Vector {
    type Output = Vector;
    #[inline]
    fn sub(self, rhs: Vector) -> Vector {
        Vector::new(self.x - rhs.x, self.y - rhs.y)
    }
}

impl Mul<f64> for Vector {
    type Output = Vector;
    #[inline]
    fn mul(self, rhs: f64) -> Vector {
        Vector::new(self.x * rhs, self.y * rhs)
    }
}

impl Div<f64> for Vector {
    type Output = Vector;
    #[inline]
    fn div(self, rhs: f64) -> Vector {
        Vector::new(self.x / rhs, self.y / rhs)
    }
}

impl Neg for Vector {
    type Output = Vector;
    #[inline]
    fn neg(self) -> Vector {
        Vector::new(-self.x, -self.y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distance_is_symmetric() {
        let a = Point::new(1.0, 2.0);
        let b = Point::new(4.0, 6.0);
        assert_eq!(a.distance(b), b.distance(a));
        assert!((a.distance(b) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn midpoint_and_lerp_agree() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(10.0, -4.0);
        assert_eq!(a.midpoint(b), a.lerp(b, 0.5));
        assert_eq!(a.lerp(b, 0.0), a);
        assert_eq!(a.lerp(b, 1.0), b);
    }

    #[test]
    fn cross_sign_encodes_turn_direction() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(1.0, 0.0);
        let left = Point::new(1.0, 1.0);
        let right = Point::new(1.0, -1.0);
        assert_eq!(orientation(a, b, left), Orientation::Ccw);
        assert_eq!(orientation(a, b, right), Orientation::Cw);
        assert_eq!(
            orientation(a, b, Point::new(2.0, 0.0)),
            Orientation::Collinear
        );
    }

    #[test]
    fn rotate_about_quarter_turn() {
        let p = Point::new(1.0, 0.0);
        let r = p.rotate_about(Point::ORIGIN, std::f64::consts::FRAC_PI_2);
        assert!((r.x - 0.0).abs() < 1e-12);
        assert!((r.y - 1.0).abs() < 1e-12);
    }

    #[test]
    fn perp_is_orthogonal() {
        let v = Vector::new(3.0, 4.0);
        assert_eq!(v.dot(v.perp()), 0.0);
        assert_eq!(v.perp().norm(), v.norm());
    }

    #[test]
    fn normalized_zero_is_zero() {
        let z = Vector::new(0.0, 0.0);
        assert_eq!(z.normalized(), z);
        let v = Vector::new(0.0, 2.5);
        assert!((v.normalized().norm() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn vector_arithmetic() {
        let v = Vector::new(1.0, 2.0);
        let w = Vector::new(3.0, -1.0);
        assert_eq!(v + w, Vector::new(4.0, 1.0));
        assert_eq!(v - w, Vector::new(-2.0, 3.0));
        assert_eq!(v * 2.0, Vector::new(2.0, 4.0));
        assert_eq!(w / 2.0, Vector::new(1.5, -0.5));
        assert_eq!(-v, Vector::new(-1.0, -2.0));
    }

    #[test]
    fn from_angle_round_trips() {
        for &a in &[0.0, 0.3, 1.2, -2.0, 3.0] {
            let v = Vector::from_angle(a);
            assert!((v.angle() - a).abs() < 1e-12, "angle {a}");
            assert!((v.norm() - 1.0).abs() < 1e-12);
        }
    }
}
