//! Linear-alignment tests.
//!
//! SPAM's region-to-fragment phase performs *linear alignment* as a top-down
//! activity: fragments hypothesised as parts of the same runway or taxiway
//! must share an axis and lie roughly along one line. These helpers quantify
//! that.

use crate::obb::{axis_angle_diff, Obb};
use crate::point::Point;
use crate::segment::Segment;

/// The result of an alignment test between two elongated regions.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct AlignmentReport {
    /// Angular difference between the two long axes, radians in `[0, π/2]`.
    pub angle_diff: f64,
    /// Perpendicular offset of the second centre from the first axis line (m).
    pub lateral_offset: f64,
    /// Gap between the nearer pair of axis endpoints (m); negative when the
    /// axis extents overlap.
    pub end_gap: f64,
}

/// Computes the collinearity report of two oriented boxes.
pub fn collinearity(a: &Obb, b: &Obb) -> AlignmentReport {
    let angle_diff = axis_angle_diff(a.angle, b.angle);

    // Perpendicular offset of b's centre from a's (infinite) axis line.
    let (a0, a1) = a.axis_endpoints();
    let axis = if a0.distance(a1) <= crate::EPSILON {
        Segment::new(a0, a0 + crate::point::Vector::from_angle(a.angle))
    } else {
        Segment::new(a0, a1)
    };
    let dir = axis.direction().normalized();
    let lateral_offset = (b.center - a.center).cross(dir).abs();

    // Gap along a's axis between the two boxes' axis projections.
    let proj = |p: Point| (p - a.center).dot(dir);
    let (b0, b1) = b.axis_endpoints();
    let (amin, amax) = (-a.half_length, a.half_length);
    let (pb0, pb1) = (proj(b0), proj(b1));
    let (bmin, bmax) = (pb0.min(pb1), pb0.max(pb1));
    let end_gap = if bmin > amax {
        bmin - amax
    } else if amin > bmax {
        amin - bmax
    } else {
        // Overlapping extents: negative overlap depth.
        -(amax.min(bmax) - amin.max(bmin))
    };

    AlignmentReport {
        angle_diff,
        lateral_offset,
        end_gap,
    }
}

/// True when two elongated regions are aligned within the tolerances:
/// axes within `max_angle` radians, lateral offset at most `max_offset`
/// metres, and end gap at most `max_gap` metres.
pub fn aligned(a: &Obb, b: &Obb, max_angle: f64, max_offset: f64, max_gap: f64) -> bool {
    let r = collinearity(a, b);
    r.angle_diff <= max_angle && r.lateral_offset <= max_offset && r.end_gap <= max_gap
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::polygon::Polygon;

    fn obb_of(center: Point, len: f64, w: f64, ang: f64) -> Obb {
        let p = Polygon::oriented_rect(center, len, w, ang);
        Obb::of_points(p.vertices()).unwrap()
    }

    #[test]
    fn collinear_segments_of_a_runway_align() {
        // Two pieces of one broken-up runway, separated by a 50 m gap.
        let a = obb_of(Point::new(0.0, 0.0), 1000.0, 40.0, 0.0);
        let b = obb_of(Point::new(1050.0, 0.0), 1000.0, 40.0, 0.0);
        let r = collinearity(&a, &b);
        assert!(r.angle_diff < 1e-9);
        assert!(r.lateral_offset < 1e-9);
        assert!((r.end_gap - 50.0).abs() < 1e-6);
        assert!(aligned(&a, &b, 0.1, 20.0, 100.0));
        assert!(!aligned(&a, &b, 0.1, 20.0, 40.0)); // gap too big
    }

    #[test]
    fn parallel_offset_regions_do_not_align() {
        // Runway and a parallel taxiway 200 m to the side.
        let a = obb_of(Point::new(0.0, 0.0), 1000.0, 40.0, 0.0);
        let b = obb_of(Point::new(0.0, 200.0), 1000.0, 20.0, 0.0);
        let r = collinearity(&a, &b);
        assert!(r.angle_diff < 1e-9);
        assert!((r.lateral_offset - 200.0).abs() < 1e-6);
        assert!(r.end_gap < 0.0, "extents overlap along the axis");
        assert!(!aligned(&a, &b, 0.1, 20.0, 100.0));
    }

    #[test]
    fn crossing_regions_fail_angle_test() {
        let a = obb_of(Point::new(0.0, 0.0), 1000.0, 40.0, 0.0);
        let b = obb_of(
            Point::new(0.0, 0.0),
            1000.0,
            40.0,
            std::f64::consts::FRAC_PI_3,
        );
        let r = collinearity(&a, &b);
        assert!((r.angle_diff - std::f64::consts::FRAC_PI_3).abs() < 1e-9);
        assert!(!aligned(&a, &b, 0.2, 50.0, 100.0));
    }

    #[test]
    fn alignment_is_rotation_invariant() {
        for &theta in &[0.0, 0.4, 1.1, 2.7] {
            let pivot = Point::new(123.0, -77.0);
            let pa = Polygon::oriented_rect(Point::new(0.0, 0.0), 800.0, 30.0, 0.0)
                .rotated_about(pivot, theta);
            let pb = Polygon::oriented_rect(Point::new(1000.0, 0.0), 800.0, 30.0, 0.0)
                .rotated_about(pivot, theta);
            let a = Obb::of_points(pa.vertices()).unwrap();
            let b = Obb::of_points(pb.vertices()).unwrap();
            let r = collinearity(&a, &b);
            assert!(r.angle_diff < 1e-6, "theta={theta}: {r:?}");
            assert!(r.lateral_offset < 1e-6, "theta={theta}: {r:?}");
            assert!((r.end_gap - 200.0).abs() < 1e-6, "theta={theta}: {r:?}");
        }
    }

    #[test]
    fn overlap_depth_is_negative_gap() {
        let a = obb_of(Point::new(0.0, 0.0), 1000.0, 40.0, 0.0);
        let b = obb_of(Point::new(400.0, 0.0), 1000.0, 40.0, 0.0);
        let r = collinearity(&a, &b);
        // a spans [-500,500], b spans [-100,900]; overlap = 600.
        assert!((r.end_gap + 600.0).abs() < 1e-6);
    }
}
