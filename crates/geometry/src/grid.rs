//! A uniform-grid spatial index over scene regions.
//!
//! SPAM's constraint checks are pairwise (*does this runway intersect that
//! taxiway?*), but candidate generation must not be quadratic over the whole
//! segmentation. The original system relied on functional-area windows; we
//! provide a uniform grid that buckets region bounding boxes and answers
//! "which regions might touch this box" queries.

use crate::bbox::Aabb;
use crate::point::Point;

/// A uniform grid bucketing items by their axis-aligned bounding boxes.
#[derive(Clone, Debug)]
pub struct GridIndex {
    origin: Point,
    cell: f64,
    nx: usize,
    ny: usize,
    cells: Vec<Vec<u32>>,
    boxes: Vec<Aabb>,
}

impl GridIndex {
    /// Creates an index covering `bounds`, with roughly `target_cells` cells.
    pub fn new(bounds: Aabb, target_cells: usize) -> Self {
        let w = bounds.width().max(1.0);
        let h = bounds.height().max(1.0);
        let cell = (w * h / target_cells.max(1) as f64).sqrt().max(1e-6);
        let nx = (w / cell).ceil() as usize + 1;
        let ny = (h / cell).ceil() as usize + 1;
        GridIndex {
            origin: bounds.min,
            cell,
            nx,
            ny,
            cells: vec![Vec::new(); nx * ny],
            boxes: Vec::new(),
        }
    }

    /// Number of indexed items.
    pub fn len(&self) -> usize {
        self.boxes.len()
    }

    /// True when nothing has been inserted.
    pub fn is_empty(&self) -> bool {
        self.boxes.is_empty()
    }

    /// Inserts an item with bounding box `bb`; returns its dense id.
    pub fn insert(&mut self, bb: Aabb) -> u32 {
        let id = self.boxes.len() as u32;
        self.boxes.push(bb);
        let (x0, y0, x1, y1) = self.cell_range(&bb);
        for cy in y0..=y1 {
            for cx in x0..=x1 {
                self.cells[cy * self.nx + cx].push(id);
            }
        }
        id
    }

    /// Ids of all items whose bounding box intersects `query`
    /// (deduplicated, ascending).
    pub fn query(&self, query: &Aabb) -> Vec<u32> {
        let mut out = Vec::new();
        if query.is_empty() {
            return out;
        }
        let (x0, y0, x1, y1) = self.cell_range(query);
        for cy in y0..=y1 {
            for cx in x0..=x1 {
                for &id in &self.cells[cy * self.nx + cx] {
                    if self.boxes[id as usize].intersects(query) {
                        out.push(id);
                    }
                }
            }
        }
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Ids of items within `gap` of `query` (bounding-box filter only; the
    /// caller refines with exact polygon distance).
    pub fn query_within(&self, query: &Aabb, gap: f64) -> Vec<u32> {
        self.query(&query.inflated(gap))
    }

    fn cell_range(&self, bb: &Aabb) -> (usize, usize, usize, usize) {
        let clamp_x = |v: f64| -> usize {
            (((v - self.origin.x) / self.cell).floor().max(0.0) as usize).min(self.nx - 1)
        };
        let clamp_y = |v: f64| -> usize {
            (((v - self.origin.y) / self.cell).floor().max(0.0) as usize).min(self.ny - 1)
        };
        (
            clamp_x(bb.min.x),
            clamp_y(bb.min.y),
            clamp_x(bb.max.x),
            clamp_y(bb.max.y),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bb(x0: f64, y0: f64, x1: f64, y1: f64) -> Aabb {
        Aabb::from_corners(Point::new(x0, y0), Point::new(x1, y1))
    }

    fn world() -> Aabb {
        bb(0.0, 0.0, 1000.0, 1000.0)
    }

    #[test]
    fn query_finds_overlapping_items() {
        let mut g = GridIndex::new(world(), 100);
        let a = g.insert(bb(10.0, 10.0, 50.0, 50.0));
        let b = g.insert(bb(40.0, 40.0, 80.0, 80.0));
        let c = g.insert(bb(500.0, 500.0, 600.0, 600.0));
        assert_eq!(g.len(), 3);
        let hits = g.query(&bb(45.0, 45.0, 46.0, 46.0));
        assert_eq!(hits, vec![a, b]);
        let hits = g.query(&bb(550.0, 550.0, 551.0, 551.0));
        assert_eq!(hits, vec![c]);
        assert!(g.query(&bb(900.0, 900.0, 950.0, 950.0)).is_empty());
    }

    #[test]
    fn query_outside_bounds_is_clamped_not_panicking() {
        let mut g = GridIndex::new(world(), 64);
        let a = g.insert(bb(990.0, 990.0, 1050.0, 1050.0)); // spills past bounds
        let hits = g.query(&bb(1040.0, 1040.0, 2000.0, 2000.0));
        assert_eq!(hits, vec![a]);
        assert!(g.query(&bb(-500.0, -500.0, -400.0, -400.0)).is_empty());
    }

    #[test]
    fn items_spanning_many_cells_are_deduplicated() {
        let mut g = GridIndex::new(world(), 400);
        let a = g.insert(bb(0.0, 450.0, 1000.0, 550.0)); // a long runway strip
        let hits = g.query(&bb(0.0, 0.0, 1000.0, 1000.0));
        assert_eq!(hits, vec![a]);
    }

    #[test]
    fn query_within_respects_gap() {
        let mut g = GridIndex::new(world(), 100);
        let a = g.insert(bb(100.0, 100.0, 200.0, 200.0));
        // A query box 30m away from item a:
        let q = bb(230.0, 100.0, 260.0, 200.0);
        assert!(g.query(&q).is_empty());
        assert_eq!(g.query_within(&q, 40.0), vec![a]);
        assert!(g.query_within(&q, 10.0).is_empty());
    }

    #[test]
    fn brute_force_equivalence() {
        // Deterministic LCG-driven boxes; grid query must equal brute force.
        let mut s: u64 = 42;
        let mut next = move || {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((s >> 20) % 1000) as f64
        };
        let mut g = GridIndex::new(world(), 256);
        let mut boxes = Vec::new();
        for _ in 0..150 {
            let x = next();
            let y = next();
            let w = next() * 0.1;
            let h = next() * 0.1;
            let b = bb(x, y, x + w, y + h);
            g.insert(b);
            boxes.push(b);
        }
        for _ in 0..50 {
            let x = next();
            let y = next();
            let q = bb(x, y, x + 50.0, y + 50.0);
            let expected: Vec<u32> = boxes
                .iter()
                .enumerate()
                .filter(|(_, b)| b.intersects(&q))
                .map(|(i, _)| i as u32)
                .collect();
            assert_eq!(g.query(&q), expected);
        }
    }
}
