//! Convex hulls (Andrew's monotone chain).

use crate::point::Point;

/// Computes the convex hull of a point set.
///
/// Returns the hull vertices in counter-clockwise order without repeating
/// the first vertex. Collinear points on the hull boundary are dropped.
/// Degenerate inputs (fewer than three distinct points, or all collinear)
/// return the distinct extreme points (possibly fewer than three).
pub fn convex_hull(points: &[Point]) -> Vec<Point> {
    let mut pts: Vec<Point> = points.to_vec();
    pts.sort_by(|a, b| {
        a.x.partial_cmp(&b.x)
            .unwrap()
            .then(a.y.partial_cmp(&b.y).unwrap())
    });
    pts.dedup();
    let n = pts.len();
    if n < 3 {
        return pts;
    }

    let cross = |o: Point, a: Point, b: Point| (a - o).cross(b - o);

    let mut hull: Vec<Point> = Vec::with_capacity(2 * n);
    // Lower hull.
    for &p in &pts {
        while hull.len() >= 2
            && cross(hull[hull.len() - 2], hull[hull.len() - 1], p) <= crate::EPSILON
        {
            hull.pop();
        }
        hull.push(p);
    }
    // Upper hull.
    let lower_len = hull.len() + 1;
    for &p in pts.iter().rev().skip(1) {
        while hull.len() >= lower_len
            && cross(hull[hull.len() - 2], hull[hull.len() - 1], p) <= crate::EPSILON
        {
            hull.pop();
        }
        hull.push(p);
    }
    hull.pop(); // last point equals the first
    hull
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::polygon::signed_area;

    #[test]
    fn square_hull_is_square() {
        let pts = vec![
            Point::new(0.0, 0.0),
            Point::new(1.0, 0.0),
            Point::new(1.0, 1.0),
            Point::new(0.0, 1.0),
            Point::new(0.5, 0.5), // interior point dropped
            Point::new(0.5, 0.0), // collinear boundary point dropped
        ];
        let h = convex_hull(&pts);
        assert_eq!(h.len(), 4);
        assert!(signed_area(&h) > 0.0, "hull must be counter-clockwise");
        assert!((signed_area(&h) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn collinear_points_degenerate() {
        let pts: Vec<Point> = (0..5).map(|i| Point::new(i as f64, 0.0)).collect();
        let h = convex_hull(&pts);
        assert_eq!(h.len(), 2);
        assert_eq!(h[0], Point::new(0.0, 0.0));
        assert_eq!(h[1], Point::new(4.0, 0.0));
    }

    #[test]
    fn duplicates_are_removed() {
        let pts = vec![
            Point::new(0.0, 0.0),
            Point::new(0.0, 0.0),
            Point::new(1.0, 0.0),
            Point::new(1.0, 0.0),
            Point::new(0.0, 1.0),
        ];
        let h = convex_hull(&pts);
        assert_eq!(h.len(), 3);
    }

    #[test]
    fn single_and_empty_inputs() {
        assert!(convex_hull(&[]).is_empty());
        let h = convex_hull(&[Point::new(2.0, 3.0)]);
        assert_eq!(h, vec![Point::new(2.0, 3.0)]);
    }

    #[test]
    fn hull_contains_all_points() {
        // A deterministic pseudo-random cloud.
        let mut pts = Vec::new();
        let mut s: u64 = 0x9E3779B97F4A7C15;
        for _ in 0..200 {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let x = ((s >> 16) & 0xFFFF) as f64 / 655.36;
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let y = ((s >> 16) & 0xFFFF) as f64 / 655.36;
            pts.push(Point::new(x, y));
        }
        let h = convex_hull(&pts);
        assert!(h.len() >= 3);
        let poly = crate::polygon::Polygon::new(h);
        for &p in &pts {
            assert!(
                poly.contains_point(p),
                "hull must contain every input point: {p:?}"
            );
        }
    }
}
