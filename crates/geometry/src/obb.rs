//! Minimum-area oriented bounding boxes via rotating calipers.

use crate::hull::convex_hull;
use crate::point::{Point, Vector};

/// A minimum-area oriented bounding box of a point set.
///
/// SPAM's region-to-fragment rules classify regions largely by the shape of
/// this box: a runway is a very elongated box, a terminal building a squat
/// one, and the box orientation feeds the *linear alignment* checks.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Obb {
    /// Box centre.
    pub center: Point,
    /// Half the long extent.
    pub half_length: f64,
    /// Half the short extent.
    pub half_width: f64,
    /// Orientation of the long axis, radians in `[0, π)`.
    pub angle: f64,
}

impl Obb {
    /// Computes the minimum-area OBB of `points`.
    ///
    /// Returns `None` for degenerate inputs (fewer than three distinct,
    /// non-collinear points we still handle by producing a zero-width box;
    /// an empty input returns `None`).
    pub fn of_points(points: &[Point]) -> Option<Obb> {
        if points.is_empty() {
            return None;
        }
        let hull = convex_hull(points);
        match hull.len() {
            0 => None,
            1 => Some(Obb {
                center: hull[0],
                half_length: 0.0,
                half_width: 0.0,
                angle: 0.0,
            }),
            2 => {
                let d = hull[1] - hull[0];
                Some(Obb {
                    center: hull[0].midpoint(hull[1]),
                    half_length: d.norm() * 0.5,
                    half_width: 0.0,
                    angle: fold_angle(d.angle()),
                })
            }
            _ => Some(min_area_obb(&hull)),
        }
    }

    /// Elongation: long extent / short extent (≥ 1; ∞ for zero-width boxes).
    pub fn elongation(&self) -> f64 {
        if self.half_width <= crate::EPSILON {
            f64::INFINITY
        } else {
            self.half_length / self.half_width
        }
    }

    /// Box area.
    pub fn area(&self) -> f64 {
        4.0 * self.half_length * self.half_width
    }

    /// Full length of the long axis.
    pub fn length(&self) -> f64 {
        2.0 * self.half_length
    }

    /// Full length of the short axis.
    pub fn width(&self) -> f64 {
        2.0 * self.half_width
    }

    /// The four corner points (counter-clockwise).
    pub fn corners(&self) -> [Point; 4] {
        let u = Vector::from_angle(self.angle) * self.half_length;
        let v = Vector::from_angle(self.angle).perp() * self.half_width;
        [
            self.center - u - v,
            self.center + u - v,
            self.center + u + v,
            self.center - u + v,
        ]
    }

    /// Endpoints of the long axis (the "spine" of an elongated region).
    pub fn axis_endpoints(&self) -> (Point, Point) {
        let u = Vector::from_angle(self.angle) * self.half_length;
        (self.center - u, self.center + u)
    }
}

/// Folds an angle into `[0, π)` (box axes are undirected).
pub fn fold_angle(a: f64) -> f64 {
    let mut a = a % std::f64::consts::PI;
    if a < 0.0 {
        a += std::f64::consts::PI;
    }
    a
}

/// Absolute angular difference between two undirected axes, in `[0, π/2]`.
pub fn axis_angle_diff(a: f64, b: f64) -> f64 {
    let d = (fold_angle(a) - fold_angle(b)).abs();
    d.min(std::f64::consts::PI - d)
}

fn min_area_obb(hull: &[Point]) -> Obb {
    let n = hull.len();
    let mut best_area = f64::INFINITY;
    let mut best = Obb {
        center: hull[0],
        half_length: 0.0,
        half_width: 0.0,
        angle: 0.0,
    };
    // The minimum-area rectangle has a side collinear with a hull edge.
    for i in 0..n {
        let e = hull[(i + 1) % n] - hull[i];
        if e.norm_sq() <= crate::EPSILON {
            continue;
        }
        let u = e.normalized();
        let v = u.perp();
        let (mut min_u, mut max_u) = (f64::INFINITY, f64::NEG_INFINITY);
        let (mut min_v, mut max_v) = (f64::INFINITY, f64::NEG_INFINITY);
        for &p in hull {
            let d = p - hull[i];
            let pu = d.dot(u);
            let pv = d.dot(v);
            min_u = min_u.min(pu);
            max_u = max_u.max(pu);
            min_v = min_v.min(pv);
            max_v = max_v.max(pv);
        }
        let du = max_u - min_u;
        let dv = max_v - min_v;
        let area = du * dv;
        if area < best_area {
            best_area = area;
            let cu = (min_u + max_u) * 0.5;
            let cv = (min_v + max_v) * 0.5;
            let center = hull[i] + u * cu + v * cv;
            // Long side defines the orientation.
            let (hl, hw, ang) = if du >= dv {
                (du * 0.5, dv * 0.5, u.angle())
            } else {
                (dv * 0.5, du * 0.5, v.angle())
            };
            best = Obb {
                center,
                half_length: hl,
                half_width: hw,
                angle: fold_angle(ang),
            };
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::polygon::Polygon;

    #[test]
    fn axis_rect_obb_recovers_dimensions() {
        let r = Polygon::axis_rect(Point::new(3.0, 4.0), 10.0, 2.0);
        let obb = Obb::of_points(r.vertices()).unwrap();
        assert!((obb.length() - 10.0).abs() < 1e-9);
        assert!((obb.width() - 2.0).abs() < 1e-9);
        assert!((obb.center.x - 3.0).abs() < 1e-9);
        assert!((obb.center.y - 4.0).abs() < 1e-9);
        assert!(obb.angle.abs() < 1e-9 || (obb.angle - std::f64::consts::PI).abs() < 1e-9);
        assert!((obb.elongation() - 5.0).abs() < 1e-9);
    }

    #[test]
    fn rotated_rect_obb_recovers_angle() {
        let ang = 0.6;
        let r = Polygon::oriented_rect(Point::new(0.0, 0.0), 20.0, 4.0, ang);
        let obb = Obb::of_points(r.vertices()).unwrap();
        assert!(axis_angle_diff(obb.angle, ang) < 1e-9);
        assert!((obb.length() - 20.0).abs() < 1e-9);
        assert!((obb.width() - 4.0).abs() < 1e-9);
    }

    #[test]
    fn obb_area_never_below_hull_area() {
        let tri = vec![
            Point::new(0.0, 0.0),
            Point::new(4.0, 0.0),
            Point::new(0.0, 3.0),
        ];
        let obb = Obb::of_points(&tri).unwrap();
        assert!(obb.area() >= 6.0 - 1e-9);
    }

    #[test]
    fn degenerate_inputs() {
        assert!(Obb::of_points(&[]).is_none());
        let single = Obb::of_points(&[Point::new(1.0, 1.0)]).unwrap();
        assert_eq!(single.length(), 0.0);
        let two = Obb::of_points(&[Point::new(0.0, 0.0), Point::new(0.0, 4.0)]).unwrap();
        assert!((two.length() - 4.0).abs() < 1e-12);
        assert_eq!(two.width(), 0.0);
        assert!(two.elongation().is_infinite());
    }

    #[test]
    fn corners_reconstruct_box() {
        let r = Polygon::oriented_rect(Point::new(5.0, -2.0), 8.0, 2.0, 1.0);
        let obb = Obb::of_points(r.vertices()).unwrap();
        let poly = Polygon::new(obb.corners().to_vec());
        assert!((poly.area() - obb.area()).abs() < 1e-9);
        for &v in r.vertices() {
            assert!(poly.distance_to_point(v) < 1e-6);
        }
    }

    #[test]
    fn axis_angle_diff_folds() {
        use std::f64::consts::PI;
        assert!(axis_angle_diff(0.1, PI + 0.1) < 1e-12);
        assert!((axis_angle_diff(0.0, PI / 2.0) - PI / 2.0).abs() < 1e-12);
        assert!((axis_angle_diff(-0.2, 0.2) - 0.4).abs() < 1e-12);
    }
}
