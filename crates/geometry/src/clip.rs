//! Convex polygon clipping (Sutherland–Hodgman) and intersection areas.
//!
//! SPAM's model-evaluation phase scores a scene model by how much of the
//! scene its functional areas explain; that needs area-of-overlap between
//! region polygons and area windows.

use crate::point::Point;
use crate::polygon::{signed_area, Polygon};

/// Clips `subject` against a **convex** `clip` polygon (Sutherland–Hodgman).
///
/// Returns the vertex ring of the intersection (counter-clockwise), or an
/// empty vector when the polygons do not overlap. The subject may be any
/// simple polygon; the clip polygon must be convex.
pub fn clip_convex(subject: &Polygon, clip: &Polygon) -> Vec<Point> {
    let mut output: Vec<Point> = subject.vertices().to_vec();
    let cv = clip.vertices();
    let n = cv.len();
    for i in 0..n {
        if output.is_empty() {
            return output;
        }
        let a = cv[i];
        let b = cv[(i + 1) % n];
        let edge = b - a;
        let inside = |p: Point| edge.cross(p - a) >= -crate::EPSILON;

        let input = std::mem::take(&mut output);
        let m = input.len();
        for j in 0..m {
            let cur = input[j];
            let nxt = input[(j + 1) % m];
            let cur_in = inside(cur);
            let nxt_in = inside(nxt);
            if cur_in {
                output.push(cur);
            }
            if cur_in != nxt_in {
                // Edge crosses the clip line: add the intersection point.
                let d = nxt - cur;
                let denom = edge.cross(d);
                if denom.abs() > crate::EPSILON {
                    let t = edge.cross(cur - a) / -denom;
                    output.push(cur + d * t.clamp(0.0, 1.0));
                }
            }
        }
    }
    output
}

/// Area of the intersection of `subject` with the **convex** `clip`.
pub fn intersection_area(subject: &Polygon, clip: &Polygon) -> f64 {
    if !subject.bbox().intersects(&clip.bbox()) {
        return 0.0;
    }
    let ring = clip_convex(subject, clip);
    if ring.len() < 3 {
        0.0
    } else {
        signed_area(&ring).abs()
    }
}

/// Fraction of `subject`'s area lying inside the convex `clip` (0..=1).
pub fn coverage_fraction(subject: &Polygon, clip: &Polygon) -> f64 {
    let a = subject.area();
    if a <= crate::EPSILON {
        return 0.0;
    }
    (intersection_area(subject, clip) / a).clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::point::Vector;

    fn sq(cx: f64, cy: f64, s: f64) -> Polygon {
        Polygon::axis_rect(Point::new(cx, cy), s, s)
    }

    #[test]
    fn identical_squares_full_overlap() {
        let a = sq(0.0, 0.0, 2.0);
        assert!((intersection_area(&a, &a) - 4.0).abs() < 1e-9);
        assert!((coverage_fraction(&a, &a) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn half_overlap() {
        let a = sq(0.0, 0.0, 2.0);
        let b = sq(1.0, 0.0, 2.0); // shifted by half its width
        assert!((intersection_area(&a, &b) - 2.0).abs() < 1e-9);
        assert!((coverage_fraction(&a, &b) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn disjoint_is_zero() {
        let a = sq(0.0, 0.0, 2.0);
        let b = sq(10.0, 0.0, 2.0);
        assert_eq!(intersection_area(&a, &b), 0.0);
        assert!(clip_convex(&a, &b).is_empty());
    }

    #[test]
    fn contained_subject_keeps_its_area() {
        let small = sq(0.0, 0.0, 1.0);
        let big = sq(0.0, 0.0, 10.0);
        assert!((intersection_area(&small, &big) - 1.0).abs() < 1e-9);
        assert!((intersection_area(&big, &small) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn rotated_clip_window() {
        let subject = sq(0.0, 0.0, 2.0);
        let diamond = subject.rotated_about(Point::new(0.0, 0.0), std::f64::consts::FRAC_PI_4);
        // Square ∩ its 45°-rotation is a regular octagon with area 8(√2−1).
        let expected = 8.0 * (2.0f64.sqrt() - 1.0);
        assert!(
            (intersection_area(&subject, &diamond) - expected).abs() < 1e-6,
            "{}",
            intersection_area(&subject, &diamond)
        );
    }

    #[test]
    fn intersection_commutes_for_convex_pairs() {
        let a = Polygon::oriented_rect(Point::new(3.0, 1.0), 6.0, 2.0, 0.4);
        let b = Polygon::regular(Point::new(4.0, 1.5), 2.0, 12);
        let ab = intersection_area(&a, &b);
        let ba = intersection_area(&b, &a);
        assert!((ab - ba).abs() < 1e-9);
        assert!(ab > 0.0);
    }

    #[test]
    fn translation_far_away_never_negative() {
        let a = sq(0.0, 0.0, 3.0);
        for k in 0..20 {
            let b = a.translated(Vector::new(k as f64 * 0.4, 0.1 * k as f64));
            let v = intersection_area(&a, &b);
            assert!((0.0..=9.0 + 1e-9).contains(&v));
        }
    }
}
