//! Region shape descriptors used by SPAM's region-to-fragment rules.

use crate::obb::Obb;
use crate::polygon::Polygon;

/// Shape statistics of a segmented image region.
///
/// These are the features SPAM's RTF (region-to-fragment) phase tests in its
/// classification rules: a long, thin, straight region with runway-like width
/// becomes a *runway* hypothesis; a compact medium region near an apron
/// becomes a *terminal building* hypothesis, and so on.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ShapeDescriptors {
    /// Region area (m²).
    pub area: f64,
    /// Region perimeter (m).
    pub perimeter: f64,
    /// Isoperimetric compactness: `4π·area / perimeter²` (1 for a disc,
    /// → 0 for elongated or ragged shapes).
    pub compactness: f64,
    /// Long / short extent of the minimum-area oriented bounding box.
    pub elongation: f64,
    /// Long extent of the oriented bounding box (m).
    pub length: f64,
    /// Short extent of the oriented bounding box (m).
    pub width: f64,
    /// Orientation of the long axis, radians in `[0, π)`.
    pub orientation: f64,
    /// `area / obb_area`: 1 for a perfect rectangle, lower for ragged shapes.
    pub rectangularity: f64,
}

impl ShapeDescriptors {
    /// Computes descriptors for a polygonal region.
    pub fn of_polygon(poly: &Polygon) -> ShapeDescriptors {
        let area = poly.area();
        let perimeter = poly.perimeter();
        let obb = Obb::of_points(poly.vertices()).expect("polygon has vertices");
        let obb_area = obb.area();
        ShapeDescriptors {
            area,
            perimeter,
            compactness: if perimeter > crate::EPSILON {
                (4.0 * std::f64::consts::PI * area / (perimeter * perimeter)).min(1.0)
            } else {
                0.0
            },
            elongation: obb.elongation().min(1e6),
            length: obb.length(),
            width: obb.width(),
            orientation: obb.angle,
            rectangularity: if obb_area > crate::EPSILON {
                (area / obb_area).min(1.0)
            } else {
                0.0
            },
        }
    }

    /// True for long, thin, rectangular regions (runways, taxiways, roads).
    pub fn is_linear(&self, min_elongation: f64) -> bool {
        self.elongation >= min_elongation && self.rectangularity >= 0.5
    }

    /// True for compact blob-like regions (buildings, tanks).
    pub fn is_compact(&self, min_compactness: f64) -> bool {
        self.compactness >= min_compactness
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::point::Point;

    #[test]
    fn runway_like_region_is_linear() {
        let runway = Polygon::oriented_rect(Point::new(0.0, 0.0), 2500.0, 45.0, 0.3);
        let d = ShapeDescriptors::of_polygon(&runway);
        assert!(d.elongation > 50.0);
        assert!(d.is_linear(10.0));
        assert!(!d.is_compact(0.5));
        assert!((d.length - 2500.0).abs() < 1e-6);
        assert!((d.width - 45.0).abs() < 1e-6);
        assert!(d.rectangularity > 0.99);
    }

    #[test]
    fn building_like_region_is_compact() {
        let bld = Polygon::axis_rect(Point::new(0.0, 0.0), 80.0, 60.0);
        let d = ShapeDescriptors::of_polygon(&bld);
        assert!(d.elongation < 2.0);
        assert!(d.is_compact(0.7));
        assert!(!d.is_linear(10.0));
    }

    #[test]
    fn disc_compactness_is_one() {
        let disc = Polygon::regular(Point::new(0.0, 0.0), 10.0, 128);
        let d = ShapeDescriptors::of_polygon(&disc);
        assert!(d.compactness > 0.99, "compactness was {}", d.compactness);
        assert!((d.elongation - 1.0).abs() < 0.01);
    }

    #[test]
    fn descriptors_rotation_invariant() {
        let a = Polygon::axis_rect(Point::new(0.0, 0.0), 100.0, 20.0);
        let b = a.rotated_about(Point::new(50.0, 50.0), 1.234);
        let da = ShapeDescriptors::of_polygon(&a);
        let db = ShapeDescriptors::of_polygon(&b);
        assert!((da.area - db.area).abs() < 1e-6);
        assert!((da.elongation - db.elongation).abs() < 1e-6);
        assert!((da.compactness - db.compactness).abs() < 1e-9);
        assert!((da.rectangularity - db.rectangularity).abs() < 1e-9);
    }
}
