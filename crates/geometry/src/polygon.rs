//! Simple polygons and the spatial predicates SPAM's constraint rules use.

use crate::bbox::Aabb;
use crate::point::{Point, Vector};
use crate::segment::Segment;

/// A simple (non-self-intersecting) polygon given by its vertex ring.
///
/// Vertices may be in either winding order; constructors normalise to
/// counter-clockwise. The polygon is closed implicitly (the last vertex
/// connects back to the first).
#[derive(Clone, Debug, PartialEq)]
pub struct Polygon {
    verts: Vec<Point>,
    bbox: Aabb,
}

impl Polygon {
    /// Builds a polygon from at least three vertices.
    ///
    /// # Panics
    /// Panics when fewer than three vertices are supplied or any coordinate
    /// is non-finite.
    pub fn new(mut verts: Vec<Point>) -> Self {
        assert!(verts.len() >= 3, "polygon needs >= 3 vertices");
        assert!(
            verts.iter().all(Point::is_finite),
            "polygon vertices must be finite"
        );
        if signed_area(&verts) < 0.0 {
            verts.reverse();
        }
        let bbox = Aabb::from_points(verts.iter().copied());
        Polygon { verts, bbox }
    }

    /// Axis-aligned rectangle centred at `center`.
    pub fn axis_rect(center: Point, width: f64, height: f64) -> Self {
        let hw = width * 0.5;
        let hh = height * 0.5;
        Polygon::new(vec![
            Point::new(center.x - hw, center.y - hh),
            Point::new(center.x + hw, center.y - hh),
            Point::new(center.x + hw, center.y + hh),
            Point::new(center.x - hw, center.y + hh),
        ])
    }

    /// Rectangle centred at `center`, rotated by `angle` radians.
    pub fn oriented_rect(center: Point, length: f64, width: f64, angle: f64) -> Self {
        let u = Vector::from_angle(angle) * (length * 0.5);
        let v = Vector::from_angle(angle).perp() * (width * 0.5);
        Polygon::new(vec![
            center - u - v,
            center + u - v,
            center + u + v,
            center - u + v,
        ])
    }

    /// Regular n-gon approximation of a circle (used for tanks, clutter).
    pub fn regular(center: Point, radius: f64, sides: usize) -> Self {
        assert!(sides >= 3);
        let verts = (0..sides)
            .map(|i| {
                let a = std::f64::consts::TAU * i as f64 / sides as f64;
                center + Vector::from_angle(a) * radius
            })
            .collect();
        Polygon::new(verts)
    }

    /// Vertex ring (counter-clockwise).
    #[inline]
    pub fn vertices(&self) -> &[Point] {
        &self.verts
    }

    /// Number of vertices.
    #[inline]
    pub fn len(&self) -> usize {
        self.verts.len()
    }

    /// Always false: a polygon has at least three vertices.
    #[inline]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Cached axis-aligned bounding box.
    #[inline]
    pub fn bbox(&self) -> Aabb {
        self.bbox
    }

    /// Iterator over the polygon's edges.
    pub fn edges(&self) -> impl Iterator<Item = Segment> + '_ {
        let n = self.verts.len();
        (0..n).map(move |i| Segment::new(self.verts[i], self.verts[(i + 1) % n]))
    }

    /// Polygon area (always non-negative).
    pub fn area(&self) -> f64 {
        signed_area(&self.verts).abs()
    }

    /// Perimeter length.
    pub fn perimeter(&self) -> f64 {
        self.edges().map(|e| e.length()).sum()
    }

    /// Area centroid.
    pub fn centroid(&self) -> Point {
        let mut cx = 0.0;
        let mut cy = 0.0;
        let mut a = 0.0;
        let n = self.verts.len();
        for i in 0..n {
            let p = self.verts[i];
            let q = self.verts[(i + 1) % n];
            let w = p.x * q.y - q.x * p.y;
            cx += (p.x + q.x) * w;
            cy += (p.y + q.y) * w;
            a += w;
        }
        if a.abs() <= crate::EPSILON {
            // Degenerate: fall back to the vertex mean.
            let inv = 1.0 / n as f64;
            let sx: f64 = self.verts.iter().map(|p| p.x).sum();
            let sy: f64 = self.verts.iter().map(|p| p.y).sum();
            return Point::new(sx * inv, sy * inv);
        }
        let f = 1.0 / (3.0 * a);
        Point::new(cx * f, cy * f)
    }

    /// Point-in-polygon test (boundary counts as inside).
    pub fn contains_point(&self, p: Point) -> bool {
        if !self.bbox.contains_point(p) {
            return false;
        }
        // Boundary first, then even-odd ray cast.
        for e in self.edges() {
            if e.contains_point(p) {
                return true;
            }
        }
        let mut inside = false;
        let n = self.verts.len();
        let mut j = n - 1;
        for i in 0..n {
            let pi = self.verts[i];
            let pj = self.verts[j];
            if (pi.y > p.y) != (pj.y > p.y) {
                let xint = pj.x + (p.y - pj.y) / (pi.y - pj.y) * (pi.x - pj.x);
                if p.x < xint {
                    inside = !inside;
                }
            }
            j = i;
        }
        inside
    }

    /// True when the two polygons' interiors or boundaries meet.
    pub fn intersects(&self, other: &Polygon) -> bool {
        if !self.bbox.intersects(&other.bbox) {
            return false;
        }
        // Any edge crossing?
        for e in self.edges() {
            for f in other.edges() {
                if e.intersects(&f) {
                    return true;
                }
            }
        }
        // Full containment (one inside the other, no edge crossing).
        self.contains_point(other.verts[0]) || other.contains_point(self.verts[0])
    }

    /// True when `other` lies entirely inside this polygon.
    pub fn contains_polygon(&self, other: &Polygon) -> bool {
        if !self.bbox.intersects(&other.bbox) {
            return false;
        }
        if !other.verts.iter().all(|&v| self.contains_point(v)) {
            return false;
        }
        // No edge of `other` may cross out through an edge of `self`; a
        // proper crossing exists iff some edge pair intersects at a point
        // interior to both. Vertices on the boundary are fine, so test the
        // midpoints of other's edges as well.
        other.edges().all(|e| self.contains_point(e.midpoint()))
    }

    /// Minimum distance between the two polygons' boundaries
    /// (0 when they intersect or one contains the other).
    pub fn min_distance(&self, other: &Polygon) -> f64 {
        if self.intersects(other) {
            return 0.0;
        }
        let mut best = f64::INFINITY;
        for e in self.edges() {
            for f in other.edges() {
                let d = e.distance_to_segment(&f);
                if d < best {
                    best = d;
                }
            }
        }
        best
    }

    /// True when the gap between the polygons is at most `gap`
    /// (SPAM's *adjacency* constraint).
    pub fn adjacent_to(&self, other: &Polygon, gap: f64) -> bool {
        if !self.bbox.inflated(gap).intersects(&other.bbox) {
            return false;
        }
        self.min_distance(other) <= gap
    }

    /// Distance from the polygon boundary to a point (0 when inside).
    pub fn distance_to_point(&self, p: Point) -> f64 {
        if self.contains_point(p) {
            return 0.0;
        }
        self.edges()
            .map(|e| e.distance_to_point(p))
            .fold(f64::INFINITY, f64::min)
    }

    /// Translated copy.
    pub fn translated(&self, v: Vector) -> Polygon {
        Polygon::new(self.verts.iter().map(|&p| p + v).collect())
    }

    /// Copy rotated about `pivot` by `angle` radians.
    pub fn rotated_about(&self, pivot: Point, angle: f64) -> Polygon {
        Polygon::new(
            self.verts
                .iter()
                .map(|&p| p.rotate_about(pivot, angle))
                .collect(),
        )
    }
}

/// Signed area of a vertex ring: positive for counter-clockwise winding.
pub fn signed_area(verts: &[Point]) -> f64 {
    let n = verts.len();
    let mut a = 0.0;
    for i in 0..n {
        let p = verts[i];
        let q = verts[(i + 1) % n];
        a += p.x * q.y - q.x * p.y;
    }
    a * 0.5
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit_square() -> Polygon {
        Polygon::axis_rect(Point::new(0.5, 0.5), 1.0, 1.0)
    }

    #[test]
    fn winding_is_normalised_ccw() {
        let cw = Polygon::new(vec![
            Point::new(0.0, 0.0),
            Point::new(0.0, 1.0),
            Point::new(1.0, 1.0),
            Point::new(1.0, 0.0),
        ]);
        assert!(signed_area(cw.vertices()) > 0.0);
    }

    #[test]
    fn rect_area_perimeter_centroid() {
        let r = Polygon::axis_rect(Point::new(2.0, 3.0), 4.0, 2.0);
        assert!((r.area() - 8.0).abs() < 1e-12);
        assert!((r.perimeter() - 12.0).abs() < 1e-12);
        let c = r.centroid();
        assert!((c.x - 2.0).abs() < 1e-12 && (c.y - 3.0).abs() < 1e-12);
    }

    #[test]
    fn oriented_rect_preserves_area() {
        let r = Polygon::oriented_rect(Point::new(5.0, 5.0), 10.0, 2.0, 0.7);
        assert!((r.area() - 20.0).abs() < 1e-9);
        let c = r.centroid();
        assert!((c.x - 5.0).abs() < 1e-9 && (c.y - 5.0).abs() < 1e-9);
    }

    #[test]
    fn contains_point_inside_outside_boundary() {
        let sq = unit_square();
        assert!(sq.contains_point(Point::new(0.5, 0.5)));
        assert!(sq.contains_point(Point::new(0.0, 0.0))); // corner
        assert!(sq.contains_point(Point::new(0.5, 0.0))); // edge
        assert!(!sq.contains_point(Point::new(1.5, 0.5)));
        assert!(!sq.contains_point(Point::new(-0.001, 0.5)));
    }

    #[test]
    fn intersects_overlap_touch_disjoint_containment() {
        let a = unit_square();
        let b = a.translated(Vector::new(0.5, 0.5));
        let c = a.translated(Vector::new(2.0, 0.0));
        let tiny = Polygon::axis_rect(Point::new(0.5, 0.5), 0.1, 0.1);
        assert!(a.intersects(&b));
        assert!(!a.intersects(&c));
        assert!(a.intersects(&tiny)); // containment, no edge crossing
        assert!(tiny.intersects(&a)); // symmetric
        let touch = a.translated(Vector::new(1.0, 0.0));
        assert!(a.intersects(&touch)); // shared edge
    }

    #[test]
    fn contains_polygon_cases() {
        let big = Polygon::axis_rect(Point::new(0.0, 0.0), 10.0, 10.0);
        let small = Polygon::axis_rect(Point::new(1.0, 1.0), 2.0, 2.0);
        let overlapping = Polygon::axis_rect(Point::new(5.0, 0.0), 4.0, 2.0);
        assert!(big.contains_polygon(&small));
        assert!(!small.contains_polygon(&big));
        assert!(!big.contains_polygon(&overlapping));
    }

    #[test]
    fn min_distance_matches_gap() {
        let a = unit_square();
        let b = a.translated(Vector::new(3.0, 0.0));
        assert!((a.min_distance(&b) - 2.0).abs() < 1e-12);
        assert_eq!(a.min_distance(&a.translated(Vector::new(0.5, 0.0))), 0.0);
    }

    #[test]
    fn adjacency_respects_gap_threshold() {
        let a = unit_square();
        let b = a.translated(Vector::new(1.1, 0.0)); // 0.1 gap
        assert!(a.adjacent_to(&b, 0.2));
        assert!(!a.adjacent_to(&b, 0.05));
        assert!(b.adjacent_to(&a, 0.2)); // symmetric
    }

    #[test]
    fn distance_to_point_inside_is_zero() {
        let sq = unit_square();
        assert_eq!(sq.distance_to_point(Point::new(0.5, 0.5)), 0.0);
        assert!((sq.distance_to_point(Point::new(2.0, 0.5)) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn rotation_preserves_area_and_perimeter() {
        let r = Polygon::axis_rect(Point::new(0.0, 0.0), 3.0, 1.0);
        let rr = r.rotated_about(Point::new(10.0, 10.0), 1.1);
        assert!((r.area() - rr.area()).abs() < 1e-9);
        assert!((r.perimeter() - rr.perimeter()).abs() < 1e-9);
    }

    #[test]
    fn regular_polygon_approximates_circle() {
        let c = Polygon::regular(Point::new(0.0, 0.0), 1.0, 64);
        assert!((c.area() - std::f64::consts::PI).abs() < 0.01);
        assert!(c.contains_point(Point::new(0.9, 0.0)));
        assert!(!c.contains_point(Point::new(1.01, 0.0)));
    }

    #[test]
    #[should_panic(expected = ">= 3 vertices")]
    fn too_few_vertices_panics() {
        let _ = Polygon::new(vec![Point::new(0.0, 0.0), Point::new(1.0, 0.0)]);
    }
}
