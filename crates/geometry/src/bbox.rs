//! Axis-aligned bounding boxes.

use crate::point::Point;

/// An axis-aligned bounding box, stored as min/max corners.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Aabb {
    /// Lower-left corner.
    pub min: Point,
    /// Upper-right corner.
    pub max: Point,
}

impl Aabb {
    /// An "empty" box that unions as the identity.
    pub const EMPTY: Aabb = Aabb {
        min: Point {
            x: f64::INFINITY,
            y: f64::INFINITY,
        },
        max: Point {
            x: f64::NEG_INFINITY,
            y: f64::NEG_INFINITY,
        },
    };

    /// Builds a box from two corner points (in any order).
    pub fn from_corners(a: Point, b: Point) -> Self {
        Aabb {
            min: Point::new(a.x.min(b.x), a.y.min(b.y)),
            max: Point::new(a.x.max(b.x), a.y.max(b.y)),
        }
    }

    /// Tight box around a point set. Returns [`Aabb::EMPTY`] for an empty set.
    pub fn from_points<I: IntoIterator<Item = Point>>(points: I) -> Self {
        let mut b = Aabb::EMPTY;
        for p in points {
            b.expand_to(p);
        }
        b
    }

    /// True when no point has been added.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.min.x > self.max.x
    }

    /// Grows the box to include `p`.
    #[inline]
    pub fn expand_to(&mut self, p: Point) {
        self.min.x = self.min.x.min(p.x);
        self.min.y = self.min.y.min(p.y);
        self.max.x = self.max.x.max(p.x);
        self.max.y = self.max.y.max(p.y);
    }

    /// Union of two boxes.
    pub fn union(&self, other: &Aabb) -> Aabb {
        if self.is_empty() {
            return *other;
        }
        if other.is_empty() {
            return *self;
        }
        Aabb {
            min: Point::new(self.min.x.min(other.min.x), self.min.y.min(other.min.y)),
            max: Point::new(self.max.x.max(other.max.x), self.max.y.max(other.max.y)),
        }
    }

    /// Box width (x extent).
    #[inline]
    pub fn width(&self) -> f64 {
        (self.max.x - self.min.x).max(0.0)
    }

    /// Box height (y extent).
    #[inline]
    pub fn height(&self) -> f64 {
        (self.max.y - self.min.y).max(0.0)
    }

    /// Box area.
    #[inline]
    pub fn area(&self) -> f64 {
        if self.is_empty() {
            0.0
        } else {
            self.width() * self.height()
        }
    }

    /// Box centre.
    #[inline]
    pub fn center(&self) -> Point {
        self.min.midpoint(self.max)
    }

    /// True when `p` is inside or on the boundary.
    #[inline]
    pub fn contains_point(&self, p: Point) -> bool {
        p.x >= self.min.x && p.x <= self.max.x && p.y >= self.min.y && p.y <= self.max.y
    }

    /// True when the boxes overlap (closed-interval test).
    #[inline]
    pub fn intersects(&self, other: &Aabb) -> bool {
        !self.is_empty()
            && !other.is_empty()
            && self.min.x <= other.max.x
            && other.min.x <= self.max.x
            && self.min.y <= other.max.y
            && other.min.y <= self.max.y
    }

    /// Box inflated by `pad` on every side.
    pub fn inflated(&self, pad: f64) -> Aabb {
        Aabb {
            min: Point::new(self.min.x - pad, self.min.y - pad),
            max: Point::new(self.max.x + pad, self.max.y + pad),
        }
    }

    /// Minimum distance between two boxes (0 when they overlap).
    pub fn distance_to(&self, other: &Aabb) -> f64 {
        let dx = (other.min.x - self.max.x)
            .max(self.min.x - other.max.x)
            .max(0.0);
        let dy = (other.min.y - self.max.y)
            .max(self.min.y - other.max.y)
            .max(0.0);
        (dx * dx + dy * dy).sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_corners_normalises_order() {
        let b = Aabb::from_corners(Point::new(3.0, -1.0), Point::new(1.0, 4.0));
        assert_eq!(b.min, Point::new(1.0, -1.0));
        assert_eq!(b.max, Point::new(3.0, 4.0));
        assert_eq!(b.width(), 2.0);
        assert_eq!(b.height(), 5.0);
        assert_eq!(b.area(), 10.0);
    }

    #[test]
    fn empty_behaviour() {
        let e = Aabb::EMPTY;
        assert!(e.is_empty());
        assert_eq!(e.area(), 0.0);
        let b = Aabb::from_corners(Point::new(0.0, 0.0), Point::new(1.0, 1.0));
        assert_eq!(e.union(&b), b);
        assert_eq!(b.union(&e), b);
        assert!(!e.intersects(&b));
    }

    #[test]
    fn intersects_and_touching() {
        let a = Aabb::from_corners(Point::new(0.0, 0.0), Point::new(2.0, 2.0));
        let b = Aabb::from_corners(Point::new(1.0, 1.0), Point::new(3.0, 3.0));
        let c = Aabb::from_corners(Point::new(2.0, 0.0), Point::new(4.0, 2.0));
        let d = Aabb::from_corners(Point::new(5.0, 5.0), Point::new(6.0, 6.0));
        assert!(a.intersects(&b));
        assert!(a.intersects(&c)); // edge touch counts
        assert!(!a.intersects(&d));
    }

    #[test]
    fn distance_between_boxes() {
        let a = Aabb::from_corners(Point::new(0.0, 0.0), Point::new(1.0, 1.0));
        let b = Aabb::from_corners(Point::new(4.0, 5.0), Point::new(6.0, 7.0));
        assert!((a.distance_to(&b) - 5.0).abs() < 1e-12);
        let c = Aabb::from_corners(Point::new(0.5, 0.5), Point::new(2.0, 2.0));
        assert_eq!(a.distance_to(&c), 0.0);
    }

    #[test]
    fn contains_point_boundary() {
        let b = Aabb::from_corners(Point::new(0.0, 0.0), Point::new(1.0, 1.0));
        assert!(b.contains_point(Point::new(0.0, 0.0)));
        assert!(b.contains_point(Point::new(1.0, 1.0)));
        assert!(b.contains_point(Point::new(0.5, 0.5)));
        assert!(!b.contains_point(Point::new(1.01, 0.5)));
    }

    #[test]
    fn inflate_grows_box() {
        let b = Aabb::from_corners(Point::new(0.0, 0.0), Point::new(1.0, 1.0)).inflated(0.5);
        assert_eq!(b.min, Point::new(-0.5, -0.5));
        assert_eq!(b.max, Point::new(1.5, 1.5));
    }

    #[test]
    fn from_points_tight() {
        let b = Aabb::from_points([
            Point::new(1.0, 5.0),
            Point::new(-2.0, 3.0),
            Point::new(0.0, 9.0),
        ]);
        assert_eq!(b.min, Point::new(-2.0, 3.0));
        assert_eq!(b.max, Point::new(1.0, 9.0));
    }
}
