//! Cross-crate integration: the full SPAM pipeline on every dataset must
//! reproduce the paper's workload shape (Tables 1–3).

use spam::phases::run_pipeline;

#[test]
fn all_three_airports_interpret_with_the_papers_shape() {
    for dataset in spam::datasets::all() {
        let name = dataset.spec.name;
        let paper_rtf_hyps = dataset.paper.hypotheses_rtf;
        let r = run_pipeline(&dataset);

        // One scene model, several functional areas.
        assert_eq!(r.model.models, 1, "{name}: one scene model");
        // The model explains a substantial share of the segmentation and
        // its area windows are mostly compatible (low overlap).
        assert!(
            r.model.metrics.coverage > 0.25,
            "{name}: model coverage {:.2}",
            r.model.metrics.coverage
        );
        assert!(
            r.model.metrics.window_overlap < 0.6,
            "{name}: window overlap {:.2}",
            r.model.metrics.window_overlap
        );
        assert!(
            r.fa.areas.len() >= 5,
            "{name}: expected several functional areas, got {}",
            r.fa.areas.len()
        );

        // LCC dominates time and firings (the premise of the whole paper).
        let [rtf, lcc, fa, model] = r.stats;
        assert!(lcc.seconds > rtf.seconds, "{name}: LCC time > RTF time");
        assert!(lcc.seconds > fa.seconds, "{name}: LCC time > FA time");
        assert!(lcc.seconds > model.seconds, "{name}: LCC time > MODEL time");
        assert!(
            lcc.firings > rtf.firings + fa.firings + model.firings,
            "{name}: LCC fires more than all other phases combined"
        );

        // Match fractions sit in the calibrated bands: RTF ≈ 0.6 (§6.5),
        // LCC 0.30–0.50 (§1).
        assert!(
            (0.50..0.80).contains(&rtf.match_fraction),
            "{name}: RTF match fraction {:.2}",
            rtf.match_fraction
        );
        assert!(
            (0.25..0.55).contains(&lcc.match_fraction),
            "{name}: LCC match fraction {:.2}",
            lcc.match_fraction
        );

        // Hypothesis counts land near the paper's (where readable).
        if let Some(p) = paper_rtf_hyps {
            let got = r.rtf.fragments.len() as f64;
            let want = p as f64;
            assert!(
                (got - want).abs() / want < 0.45,
                "{name}: {got} RTF hypotheses vs paper's {want}"
            );
        }

        // The interpretation is grounded: supported hypotheses mostly agree
        // with the generator's ground truth.
        let mut right = 0u32;
        let mut wrong = 0u32;
        for f in r.fragments.iter().filter(|f| f.support >= 3) {
            match r.scene.region(f.region).truth {
                Some(t) if t == f.kind => right += 1,
                Some(_) => wrong += 1,
                None => {}
            }
        }
        // "Wrong" includes deliberate classify/subclassify ambiguity (a
        // runway region also hypothesised as taxiway gains support from the
        // same real structure; FA/MODEL disambiguate later), so majority
        // agreement is the right bar here.
        assert!(
            right > wrong,
            "{name}: supported hypotheses should mostly match truth ({right} vs {wrong})"
        );
    }
}

#[test]
fn pipeline_is_deterministic_across_runs() {
    let a = run_pipeline(&spam::datasets::dc());
    let b = run_pipeline(&spam::datasets::dc());
    assert_eq!(a.total_firings(), b.total_firings());
    assert_eq!(a.rtf.fragments, b.rtf.fragments);
    assert_eq!(a.lcc.consistents.len(), b.lcc.consistents.len());
    assert_eq!(a.fa.areas, b.fa.areas);
    assert_eq!(a.model.score, b.model.score);
    assert!((a.total_seconds() - b.total_seconds()).abs() < 1e-9);
}

#[test]
fn suburban_domain_interprets_with_the_same_architecture() {
    // The paper's second task area (§2.2): same rule base, same phases,
    // different scene-type knowledge.
    use spam::fragments::FragmentKind;
    let scene = std::sync::Arc::new(spam::generate_suburb(&spam::generate::SuburbSpec::demo()));
    let r = spam::run_pipeline_scene(std::sync::Arc::clone(&scene));
    assert_eq!(r.model.models, 1);
    // Every true street must be hypothesised as a street and end up
    // well-supported (streets anchor the suburban constraint web).
    for region in &scene.regions {
        if region.truth == Some(FragmentKind::Street) {
            let f = r
                .fragments
                .iter()
                .find(|f| f.region == region.id && f.kind == FragmentKind::Street)
                .unwrap_or_else(|| panic!("street region {} missed", region.id));
            assert!(f.support >= 3, "street support {}", f.support);
        }
    }
    // House lots dominate the functional areas.
    let lots = r.fa.areas.iter().filter(|a| a.kind == "house-lot").count();
    assert!(lots >= 10, "expected many house lots, got {lots}");
    // LCC still dominates the profile.
    assert!(r.stats[1].seconds > r.stats[0].seconds);
    // No airport-class hypotheses leak into a suburban scene.
    assert!(r
        .fragments
        .iter()
        .all(|f| f.kind >= FragmentKind::House || f.kind <= FragmentKind::FuelTank));
    assert!(!r
        .fragments
        .iter()
        .any(|f| f.kind == FragmentKind::Runway || f.kind == FragmentKind::TerminalBuilding));
}
