//! Print/parse round-trip of the full generated SPAM rule base, checked all
//! the way down to engine behaviour: an LCC task run under the reparsed
//! program must produce the identical interpretation.

use ops5::printer::print_program;
use ops5::Program;
use spam::lcc::{decompose, run_lcc_unit, Level};
use spam::rtf::run_rtf;
use spam::rules::SpamProgram;
use std::sync::Arc;

#[test]
fn spam_rulebase_survives_print_parse_with_identical_behaviour() {
    let src = spam::rules::spam_source();
    let p1 = Arc::new(Program::parse(&src).unwrap());
    let printed = print_program(&p1);
    let p2 = Arc::new(
        Program::parse(&printed)
            .unwrap_or_else(|e| panic!("reparse of printed rule base failed: {e}")),
    );

    assert_eq!(p1.productions.len(), p2.productions.len());
    for (a, b) in p1.productions.iter().zip(&p2.productions) {
        assert_eq!(a.name, b.name);
        assert_eq!(a.specificity, b.specificity, "{}", a.name);
        assert_eq!(a.n_vars, b.n_vars, "{}", a.name);
        assert_eq!(a.ces.len(), b.ces.len(), "{}", a.name);
        assert_eq!(a.actions.len(), b.actions.len(), "{}", a.name);
    }

    // Behavioural equivalence: run the same LCC tasks under both programs.
    let original = SpamProgram::build();
    let reparsed = SpamProgram {
        compiled: ops5::Engine::compile(&p2).unwrap(),
        program: p2,
        config: ops5::ReteConfig::default(),
    };
    let scene = Arc::new(spam::generate_scene(&spam::datasets::dc().spec));
    let rtf = run_rtf(&original, &scene);
    let frags = Arc::new(rtf.fragments);
    let units = decompose(&scene, &frags, Level::L3);
    for unit in units.iter().take(12) {
        let a = run_lcc_unit(&original, &scene, &frags, unit);
        let b = run_lcc_unit(&reparsed, &scene, &frags, unit);
        assert_eq!(a.firings, b.firings, "{unit:?}");
        assert_eq!(a.consistents, b.consistents, "{unit:?}");
        assert_eq!(a.supports, b.supports, "{unit:?}");
    }

    // And printing the reparsed program is a fixed point.
    let printed2 = print_program(&reparsed.program);
    let p3 = Program::parse(&printed2).unwrap();
    assert_eq!(printed2, print_program(&p3));
}
