//! Cross-crate integration: every experiment's headline claim, asserted.
//!
//! These are the shape checks the bench binaries print; here they gate the
//! test suite, so a regression in any subsystem that would bend a figure
//! fails loudly.

use paraops5::costmodel::{amdahl_limit, match_speedup, match_speedup_curve, CostModel};
use paraops5::suites::{rubik, suite_engine, tourney, weaver};
use spam::lcc::Level;
use spam::rtf::{rtf_task_batches, run_rtf_tasks};
use spam_psm::baseline::port_factor;
use spam_psm::combined::combined_cell;
use spam_psm::trace::{lcc_trace, rtf_trace};
use tlp_bench::Prepared;

#[test]
fn figure_3_rubik_weaver_beat_tourney() {
    let model = CostModel::default();
    let mut speeds = Vec::new();
    for s in [rubik(), weaver(), tourney()] {
        let mut e = suite_engine(&s);
        assert!(e.run(s.firings + 10).quiescent());
        speeds.push(match_speedup(&e.take_cycle_log(), 11, &model));
    }
    assert!(speeds[0] > speeds[1] && speeds[1] > speeds[2]);
    assert!(speeds[0] > 5.0, "rubik {:.2}", speeds[0]);
    assert!(speeds[2] < 3.0, "tourney {:.2}", speeds[2]);
}

#[test]
fn figure_7_match_parallelism_saturates_early_near_its_limit() {
    let p = Prepared::new(spam::datasets::moff());
    let trace = lcc_trace(&p.lcc(Level::L3));
    let model = CostModel::default();
    let curve = match_speedup_curve(&trace.cycle_log, 13, &model);
    let limit = amdahl_limit(&trace.cycle_log);
    let peak = curve
        .iter()
        .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
        .unwrap();
    assert!(
        (1.2..2.2).contains(&limit),
        "LCC asymptote should sit near the paper's 1.36-1.95 band: {limit:.2}"
    );
    assert!(
        peak.0 <= 8,
        "peaks by ~6 match processes (paper), got {}",
        peak.0
    );
    assert!(
        peak.1 / limit > 0.75,
        "achieves most of the asymptote: {:.2} of {limit:.2}",
        peak.1
    );
    // Far below the task-level speed-ups at the same processor counts.
    assert!(peak.1 < 3.0);
}

#[test]
fn figure_8_rtf_profile() {
    let p = Prepared::new(spam::datasets::dc());
    let batch = (p.scene.len() / 70).max(1);
    let batches = rtf_task_batches(&p.scene, batch);
    let (merged, results) = run_rtf_tasks(&p.sp, &p.scene, &batches);
    assert!(!merged.is_empty());
    let trace = rtf_trace(&results);
    // 60-100ish tasks, low CV (paper: ~0.3).
    assert!(
        (40..=160).contains(&trace.tasks.len()),
        "RTF task count {}",
        trace.tasks.len()
    );
    assert!(trace.tasks.coeff_of_variance() < 0.5);
    // Match-parallelism limited near 2 (paper: ≈2.5, asymptote ≈2.3).
    let limit = amdahl_limit(&trace.cycle_log);
    assert!((1.5..2.8).contains(&limit), "RTF asymptote {limit:.2}");
    // TLP still near-linear.
    let curve = spam_psm::tlp::simulated_tlp_curve(&trace, 14);
    assert!(curve[13].1 > 9.0, "RTF TLP at 14: {:.2}", curve[13].1);
}

#[test]
fn table_9_multiplicativity_on_sf_level_2() {
    let p = Prepared::new(spam::datasets::sf());
    let trace = lcc_trace(&p.lcc(Level::L2));
    let model = CostModel::default();
    let cell = combined_cell(&trace, 4, 2, &model);
    assert!(
        (cell.achieved - cell.predicted).abs() / cell.predicted < 0.1,
        "(Task4, Match2): achieved {:.2} vs predicted {:.2}",
        cell.achieved,
        cell.predicted
    );
    assert!(
        cell.achieved > 4.0,
        "combined beats TLP alone: {:.2}",
        cell.achieved
    );
    assert_eq!(cell.processors, 13);
}

#[test]
fn figure_9_translational_loss_band() {
    use multimax_sim::{simulate, Machine, SimConfig, SvmConfig};
    let p = Prepared::new(spam::datasets::moff());
    let trace = lcc_trace(&p.lcc(Level::L3));
    let big = |n: u32| SimConfig {
        machine: Machine {
            local: multimax_sim::ClusterConfig {
                processors: 32,
                reserved: 2,
            },
            remote: None,
        },
        task_processes: n,
        ..SimConfig::encore(1)
    };
    let svm = |n: u32| SimConfig {
        machine: Machine::dual_encore_svm(),
        task_processes: n,
        svm: SvmConfig::tuned(),
        ..SimConfig::encore(1)
    };
    let base = simulate(&big(1), &trace.tasks.tasks).makespan;
    let s20_svm = base / simulate(&svm(20), &trace.tasks.tasks).makespan;
    let s20_pure = base / simulate(&big(20), &trace.tasks.tasks).makespan;
    let s13 = base / simulate(&svm(13), &trace.tasks.tasks).makespan;
    // Remote processors help…
    assert!(
        s20_svm > s13 + 0.5,
        "remote processors must help: {s20_svm:.2} vs {s13:.2}"
    );
    // …but at a visible translational cost (paper ≈ 1.5 processors).
    let s19_pure = base / simulate(&big(19), &trace.tasks.tasks).makespan;
    assert!(s20_svm < s20_pure, "SVM below pure TLP");
    assert!(
        s20_svm < s19_pure,
        "loss of at least ~1 processor: svm(20)={s20_svm:.2} pure(19)={s19_pure:.2}"
    );
}

#[test]
fn baseline_port_factor_in_band() {
    let p = Prepared::new(spam::datasets::moff());
    let pf = port_factor(&p.sp, &p.scene, &p.fragments, 12);
    let f = pf.factor();
    assert!(
        (5.0..40.0).contains(&f),
        "port factor {f:.1} should be near the paper's 10-20x"
    );
}

#[test]
fn multiplied_sources_exceed_best_single_source() {
    // §1: "task-level parallelism ... will multiply with the speed-ups
    // obtained from match parallelism" — combined > either alone.
    let p = Prepared::new(spam::datasets::dc());
    let trace = lcc_trace(&p.lcc(Level::L2));
    let model = CostModel::default();
    let tlp = combined_cell(&trace, 4, 0, &model).achieved;
    let mat = combined_cell(&trace, 1, 3, &model).achieved;
    let both = combined_cell(&trace, 4, 3, &model).achieved;
    assert!(both > tlp && both > mat);
    assert!(both > tlp * mat * 0.85, "roughly multiplicative");
}
