//! Cross-crate integration: SPAM/PSM task-level parallelism — real threads
//! against sequential ground truth, and the simulated Encore sweeps.

use spam::lcc::{run_lcc, Level};
use spam::rtf::run_rtf;
use spam::rules::SpamProgram;
use spam_psm::tlp::{run_parallel_lcc, simulated_tlp_curve};
use spam_psm::trace::lcc_trace;
use std::sync::Arc;

fn prepared(
    d: spam::datasets::Dataset,
) -> (
    SpamProgram,
    Arc<spam::scene::Scene>,
    Arc<Vec<spam::fragments::FragmentHypothesis>>,
) {
    let sp = SpamProgram::build();
    let scene = Arc::new(spam::generate_scene(&d.spec));
    let rtf = run_rtf(&sp, &scene);
    let frags = Arc::new(rtf.fragments);
    (sp, scene, frags)
}

#[test]
fn threaded_psm_equals_sequential_on_both_chosen_levels() {
    let (sp, scene, frags) = prepared(spam::datasets::dc());
    for level in [Level::L3, Level::L2] {
        let seq = run_lcc(&sp, &scene, &frags, level);
        let par = run_parallel_lcc(&sp, &scene, &frags, level, 3).unwrap();
        assert_eq!(seq.firings, par.firings, "{level:?}");
        let key = |c: &spam::lcc::ConsistentRec| (c.a, c.b, c.rel.name().to_owned());
        let mut s: Vec<_> = seq.consistents.iter().map(key).collect();
        let mut p: Vec<_> = par.consistents.iter().map(key).collect();
        s.sort();
        p.sort();
        assert_eq!(s, p, "{level:?}: consistency sets must match");
        assert_eq!(
            seq.fragments.iter().map(|f| f.support).collect::<Vec<_>>(),
            par.fragments.iter().map(|f| f.support).collect::<Vec<_>>(),
            "{level:?}: supports must match"
        );
    }
}

#[test]
fn figure_6_shape_on_the_largest_dataset() {
    // SF is the paper's headline dataset: near-linear to >11x at Level 3
    // and Level 2 consistently above Level 3.
    let (sp, scene, frags) = prepared(spam::datasets::sf());
    let l3 = lcc_trace(&run_lcc(&sp, &scene, &frags, Level::L3));
    let l2 = lcc_trace(&run_lcc(&sp, &scene, &frags, Level::L2));
    let c3 = simulated_tlp_curve(&l3, 14);
    let c2 = simulated_tlp_curve(&l2, 14);
    assert!(
        c3[13].1 > 11.0,
        "SF Level 3 at 14 processes: {:.2} (paper 11.90)",
        c3[13].1
    );
    assert!(
        c2[13].1 > 12.0,
        "SF Level 2 at 14 processes: {:.2} (paper 12.58)",
        c2[13].1
    );
    // Level 2 consistently at or above Level 3 (§6.2).
    for (a, b) in c3.iter().zip(&c2) {
        assert!(b.1 >= a.1 * 0.97, "Level 2 below Level 3 at {}", a.0);
    }
    // Near-linearity: every step up to 10 processes gains ≥ 70 % of a
    // processor.
    for w in c3.windows(2).take(9) {
        assert!(w[1].1 - w[0].1 > 0.7, "non-linear step at {}", w[1].0);
    }
}

#[test]
fn total_work_is_independent_of_decomposition_and_schedule() {
    let (sp, scene, frags) = prepared(spam::datasets::dc());
    let l3 = run_lcc(&sp, &scene, &frags, Level::L3);
    let par = run_parallel_lcc(&sp, &scene, &frags, Level::L3, 2).unwrap();
    assert_eq!(l3.work, par.work);
    // And the simulator conserves it.
    let trace = lcc_trace(&l3);
    let r1 = multimax_sim::simulate(&multimax_sim::SimConfig::encore(1), &trace.tasks.tasks);
    let r14 = multimax_sim::simulate(&multimax_sim::SimConfig::encore(14), &trace.tasks.tasks);
    assert!((r1.total_work - r14.total_work).abs() < 1e-9);
}
