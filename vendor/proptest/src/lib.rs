//! Vendored, dependency-light subset of the `proptest` API.
//!
//! The build environment has no network access, so the workspace vendors
//! the slice of proptest its property tests use: the [`proptest!`] macro
//! (with `#![proptest_config(...)]`), [`Strategy`] with `prop_map`,
//! [`prop_oneof!`], `prop::collection::vec`, numeric-range and tuple
//! strategies, and `prop_assert!`/`prop_assert_eq!`.
//!
//! Differences from upstream: cases are generated from a deterministic
//! per-case seed (failures print the case number, which is enough to
//! reproduce), and there is no shrinking — the first failing case is
//! reported as-is.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt;
use std::ops::Range;

/// Everything the `proptest!` tests import.
pub mod prelude {
    pub use crate::{
        prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, ProptestConfig,
        Strategy, TestCaseError,
    };
}

/// Error carried by `prop_assert!` failures inside a test case.
#[derive(Debug)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// Creates a failure with a message.
    pub fn fail(msg: impl Into<String>) -> TestCaseError {
        TestCaseError(msg.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// Per-test configuration.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of cases to run.
    pub cases: u32,
}

impl ProptestConfig {
    /// Configuration running `cases` cases.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// A value generator.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// The result of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut StdRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

range_strategy!(i8, u8, i16, u16, i32, u32, i64, u64, usize, isize, f32, f64);

macro_rules! tuple_strategy {
    ($($s:ident/$v:ident),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($s,)+) = self;
                ($($s.generate(rng),)+)
            }
        }
    };
}

tuple_strategy!(A / a, B / b);
tuple_strategy!(A / a, B / b, C / c);
tuple_strategy!(A / a, B / b, C / c, D / d);
tuple_strategy!(A / a, B / b, C / c, D / d, E / e);
tuple_strategy!(A / a, B / b, C / c, D / d, E / e, F / f);

/// One weighted arm of a [`Union`]: `(weight, generator)`.
pub type UnionArm<T> = (u32, Box<dyn Fn(&mut StdRng) -> T>);

/// A weighted union of strategies (the result of [`prop_oneof!`]).
pub struct Union<T> {
    arms: Vec<UnionArm<T>>,
}

impl<T> Union<T> {
    /// Builds a union from weighted generator arms.
    pub fn new(arms: Vec<UnionArm<T>>) -> Union<T> {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        let total: u32 = self.arms.iter().map(|(w, _)| *w).sum();
        let mut pick = rng.gen_range(0u32..total);
        for (w, f) in &self.arms {
            if pick < *w {
                return f(rng);
            }
            pick -= w;
        }
        unreachable!("weights exhausted")
    }
}

/// Strategy combinator namespaces (`prop::collection::vec` and friends).
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use super::super::Strategy;
        use rand::rngs::StdRng;
        use rand::Rng;
        use std::ops::Range;

        /// A strategy producing `Vec`s of values from `element`, with a
        /// length drawn from `size`.
        pub struct VecStrategy<S> {
            element: S,
            size: Range<usize>,
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;

            fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
                let n = rng.gen_range(self.size.clone());
                (0..n).map(|_| self.element.generate(rng)).collect()
            }
        }

        /// Generates vectors of `element` values with lengths in `size`.
        pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
            assert!(size.start < size.end, "empty size range");
            VecStrategy { element, size }
        }
    }
}

/// Derives the deterministic RNG for one test case.
pub fn case_rng(test_name: &str, case: u32) -> StdRng {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h ^= case as u64;
    h = h.wrapping_mul(0x0000_0100_0000_01b3);
    StdRng::seed_from_u64(h)
}

/// Asserts a condition inside a `proptest!` case, failing the case (not
/// aborting the process) when false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::TestCaseError::fail(concat!(
                "assertion failed: ",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Asserts equality inside a `proptest!` case.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        if !(a == b) {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: {:?} == {:?}",
                a, b
            )));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        if !(a == b) {
            return Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    }};
}

/// Asserts inequality inside a `proptest!` case.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        if !(a != b) {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: {:?} != {:?}",
                a, b
            )));
        }
    }};
}

/// Weighted choice between strategies.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![
            $(($weight, {
                let s = $strat;
                Box::new(move |rng: &mut rand::rngs::StdRng| $crate::Strategy::generate(&s, rng))
                    as Box<dyn Fn(&mut rand::rngs::StdRng) -> _>
            }),)+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::prop_oneof![$(1u32 => $strat),+]
    };
}

/// Defines property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `config.cases` generated cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@munch ($cfg); $($rest)*);
    };
    (@munch ($cfg:expr); $(#[$meta:meta])* fn $name:ident($($arg:pat in $strat:expr),* $(,)?) $body:block $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            for case in 0..config.cases {
                let mut proptest_case_rng = $crate::case_rng(stringify!($name), case);
                $(let $arg = $crate::Strategy::generate(&($strat), &mut proptest_case_rng);)*
                let outcome: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                    $body
                    #[allow(unreachable_code)]
                    Ok(())
                })();
                if let Err(e) = outcome {
                    panic!("proptest {} case {}/{} failed: {}", stringify!($name), case, config.cases, e);
                }
            }
        }
        $crate::proptest!(@munch ($cfg); $($rest)*);
    };
    (@munch ($cfg:expr);) => {};
    (@munch $($rest:tt)*) => {
        compile_error!("proptest! could not parse a test item; expected `fn name(arg in strategy, ...) { .. }`");
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@munch ($crate::ProptestConfig::default()); $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_and_tuples((a, b) in (0u8..10, -4i32..4), v in prop::collection::vec(0.0f64..1.0, 1..8)) {
            prop_assert!(a < 10);
            prop_assert!((-4..4).contains(&b));
            prop_assert!(!v.is_empty() && v.len() < 8);
            for x in &v {
                prop_assert!((0.0..1.0).contains(x));
            }
        }

        #[test]
        fn oneof_hits_every_arm(picks in prop::collection::vec(prop_oneof![3 => (0u8..1).prop_map(|_| "heavy"), 1 => (0u8..1).prop_map(|_| "light")], 40..60)) {
            prop_assert!(picks.contains(&"heavy"));
        }
    }

    #[test]
    fn cases_are_deterministic() {
        use crate::Strategy;
        let s = (0u32..1000, 0.0f64..1.0);
        let a = s.generate(&mut crate::case_rng("t", 5));
        let b = s.generate(&mut crate::case_rng("t", 5));
        assert_eq!(a, b);
    }
}
