//! Vendored, dependency-free subset of the `rand` 0.8 API.
//!
//! This build environment has no network access and no registry cache, so
//! the workspace vendors the small slice of `rand` it actually uses:
//!
//! * [`rngs::StdRng`] — the ChaCha12-based standard RNG, including the
//!   PCG32-based `seed_from_u64` seeding path;
//! * [`Rng::gen_range`] over integer and float ranges, implemented with the
//!   same widening-multiply rejection (integers) and 52-bit mantissa
//!   scaling (floats) as upstream `rand` 0.8.5;
//! * [`Rng::gen`] for the primitive types the workspace draws directly.
//!
//! The implementation follows the upstream algorithms step for step so that
//! seeded streams (and therefore every generated scene and synthetic
//! workload in this repository) are reproducible and match what the code
//! produced when built against crates.io `rand` 0.8.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

use std::ops::Range;

/// The core of a random number generator: raw word output.
pub trait RngCore {
    /// Returns the next random `u32`.
    fn next_u32(&mut self) -> u32;
    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

/// A seedable RNG (the `rand` 0.8 trait shape).
pub trait SeedableRng: Sized {
    /// The seed type.
    type Seed: Default + AsMut<[u8]>;

    /// Creates an RNG from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates an RNG from a `u64`, expanding it with the PCG32 output
    /// function exactly as `rand_core` 0.6 does.
    fn seed_from_u64(mut state: u64) -> Self {
        fn pcg32(state: &mut u64) -> [u8; 4] {
            const MUL: u64 = 6364136223846793005;
            const INC: u64 = 11634580027462260723;
            *state = state.wrapping_mul(MUL).wrapping_add(INC);
            let s = *state;
            let xorshifted = (((s >> 18) ^ s) >> 27) as u32;
            let rot = (s >> 59) as u32;
            xorshifted.rotate_right(rot).to_le_bytes()
        }
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(4) {
            let bytes = pcg32(&mut state);
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }
}

/// Types that can be drawn uniformly from their full value range
/// (the `Standard` distribution of upstream `rand`).
pub trait Standard: Sized {
    /// Draws one value.
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u32 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for u64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for usize {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for f64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53-bit mantissa scaling, as upstream's `Standard` for f64.
        let fraction = rng.next_u64() >> 11;
        fraction as f64 * (1.0 / ((1u64 << 53) as f64))
    }
}

impl Standard for bool {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}

/// Range types that [`Rng::gen_range`] accepts.
pub trait SampleRange<T> {
    /// Draws a value uniformly from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// The user-facing RNG extension trait.
pub trait Rng: RngCore {
    /// Draws a value of `T` from its full range.
    fn gen<T: Standard>(&mut self) -> T {
        T::draw(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_single(self)
    }

    /// Draws `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p={p} outside [0,1]");
        f64::draw(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

// ---- Uniform integer sampling (upstream `uniform_int_impl!`) -------------

macro_rules! uniform_int_small {
    ($ty:ty, $unsigned:ty) => {
        impl SampleRange<$ty> for Range<$ty> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                assert!(self.start < self.end, "gen_range: low >= high");
                let low = self.start;
                let high = self.end - 1; // inclusive
                let range = (high.wrapping_sub(low) as $unsigned as u32).wrapping_add(1);
                if range == 0 {
                    return rng.next_u32() as $unsigned as $ty;
                }
                // Small types use the modulus zone, with u32 draws.
                let ints_to_reject = (u32::MAX - range + 1) % range;
                let zone = u32::MAX - ints_to_reject;
                loop {
                    let v: u32 = rng.next_u32();
                    let m = (v as u64) * (range as u64);
                    let (hi, lo) = ((m >> 32) as u32, m as u32);
                    if lo <= zone {
                        return low.wrapping_add(hi as $unsigned as $ty);
                    }
                }
            }
        }
    };
}

macro_rules! uniform_int_u32 {
    ($ty:ty, $unsigned:ty) => {
        impl SampleRange<$ty> for Range<$ty> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                assert!(self.start < self.end, "gen_range: low >= high");
                let low = self.start;
                let high = self.end - 1; // inclusive
                let range = ((high.wrapping_sub(low)) as $unsigned).wrapping_add(1);
                if range == 0 {
                    return rng.next_u32() as $ty;
                }
                let zone = (range << range.leading_zeros()).wrapping_sub(1);
                loop {
                    let v: u32 = rng.next_u32();
                    let m = (v as u64) * (range as u64);
                    let (hi, lo) = ((m >> 32) as u32, m as u32);
                    if lo <= zone {
                        return low.wrapping_add(hi as $ty);
                    }
                }
            }
        }
    };
}

macro_rules! uniform_int_u64 {
    ($ty:ty, $unsigned:ty) => {
        impl SampleRange<$ty> for Range<$ty> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                assert!(self.start < self.end, "gen_range: low >= high");
                let low = self.start;
                let high = self.end - 1; // inclusive
                let range = ((high.wrapping_sub(low)) as $unsigned as u64).wrapping_add(1);
                if range == 0 {
                    return rng.next_u64() as $ty;
                }
                let zone = (range << range.leading_zeros()).wrapping_sub(1);
                loop {
                    let v: u64 = rng.next_u64();
                    let m = (v as u128) * (range as u128);
                    let (hi, lo) = ((m >> 64) as u64, m as u64);
                    if lo <= zone {
                        return low.wrapping_add(hi as $ty);
                    }
                }
            }
        }
    };
}

uniform_int_small!(i8, u8);
uniform_int_small!(u8, u8);
uniform_int_small!(i16, u16);
uniform_int_small!(u16, u16);
uniform_int_u32!(i32, u32);
uniform_int_u32!(u32, u32);
uniform_int_u64!(i64, u64);
uniform_int_u64!(u64, u64);
uniform_int_u64!(isize, usize);
uniform_int_u64!(usize, usize);

// ---- Uniform float sampling (upstream `uniform_float_impl!`) -------------

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (low, high) = (self.start, self.end);
        assert!(low < high, "gen_range: low >= high");
        let mut scale = high - low;
        loop {
            // Value in [1, 2): 52 random mantissa bits under exponent 0.
            let value1_2 = f64::from_bits((rng.next_u64() >> 12) | (1023u64 << 52));
            let value0_1 = value1_2 - 1.0;
            let res = value0_1 * scale + low;
            if res < high {
                return res;
            }
            // Rounding pushed the result to `high` (probability ~2^-52):
            // shrink the scale by one ULP and retry, as upstream does.
            scale = f64::from_bits(scale.to_bits() - 1);
        }
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        let (low, high) = (self.start, self.end);
        assert!(low < high, "gen_range: low >= high");
        let mut scale = high - low;
        loop {
            let value1_2 = f32::from_bits((rng.next_u32() >> 9) | (127u32 << 23));
            let value0_1 = value1_2 - 1.0;
            let res = value0_1 * scale + low;
            if res < high {
                return res;
            }
            scale = f32::from_bits(scale.to_bits() - 1);
        }
    }
}

/// Concrete RNG implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    const BUF_WORDS: usize = 64; // four ChaCha blocks, as rand_chacha

    /// The standard RNG of `rand` 0.8: ChaCha with 12 rounds, a 64-bit
    /// block counter, and a 64-bit stream id (zero here).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        key: [u32; 8],
        counter: u64,
        buf: [u32; BUF_WORDS],
        index: usize,
    }

    fn chacha12_block(key: &[u32; 8], counter: u64, out: &mut [u32]) {
        const C: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];
        let mut x = [
            C[0],
            C[1],
            C[2],
            C[3],
            key[0],
            key[1],
            key[2],
            key[3],
            key[4],
            key[5],
            key[6],
            key[7],
            counter as u32,
            (counter >> 32) as u32,
            0,
            0,
        ];
        let s = x;
        macro_rules! qr {
            ($a:expr, $b:expr, $c:expr, $d:expr) => {
                x[$a] = x[$a].wrapping_add(x[$b]);
                x[$d] = (x[$d] ^ x[$a]).rotate_left(16);
                x[$c] = x[$c].wrapping_add(x[$d]);
                x[$b] = (x[$b] ^ x[$c]).rotate_left(12);
                x[$a] = x[$a].wrapping_add(x[$b]);
                x[$d] = (x[$d] ^ x[$a]).rotate_left(8);
                x[$c] = x[$c].wrapping_add(x[$d]);
                x[$b] = (x[$b] ^ x[$c]).rotate_left(7);
            };
        }
        for _ in 0..6 {
            // one double round
            qr!(0, 4, 8, 12);
            qr!(1, 5, 9, 13);
            qr!(2, 6, 10, 14);
            qr!(3, 7, 11, 15);
            qr!(0, 5, 10, 15);
            qr!(1, 6, 11, 12);
            qr!(2, 7, 8, 13);
            qr!(3, 4, 9, 14);
        }
        for i in 0..16 {
            out[i] = x[i].wrapping_add(s[i]);
        }
    }

    impl StdRng {
        fn refill(&mut self) {
            for b in 0..4 {
                chacha12_block(
                    &self.key,
                    self.counter.wrapping_add(b as u64),
                    &mut self.buf[b * 16..(b + 1) * 16],
                );
            }
            self.counter = self.counter.wrapping_add(4);
            self.index = 0;
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut key = [0u32; 8];
            for (i, k) in key.iter_mut().enumerate() {
                *k = u32::from_le_bytes([
                    seed[4 * i],
                    seed[4 * i + 1],
                    seed[4 * i + 2],
                    seed[4 * i + 3],
                ]);
            }
            StdRng {
                key,
                counter: 0,
                buf: [0; BUF_WORDS],
                index: BUF_WORDS,
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            if self.index >= BUF_WORDS {
                self.refill();
            }
            let v = self.buf[self.index];
            self.index += 1;
            v
        }

        fn next_u64(&mut self) -> u64 {
            // Mirrors rand_core's BlockRng::next_u64 buffer stitching.
            let read =
                |buf: &[u32; BUF_WORDS], i: usize| (buf[i] as u64) | ((buf[i + 1] as u64) << 32);
            if self.index < BUF_WORDS - 1 {
                let v = read(&self.buf, self.index);
                self.index += 2;
                v
            } else if self.index >= BUF_WORDS {
                self.refill();
                let v = read(&self.buf, 0);
                self.index = 2;
                v
            } else {
                // One word left: it becomes the low half; the first word of
                // the next buffer becomes the high half.
                let lo = self.buf[BUF_WORDS - 1] as u64;
                self.refill();
                let hi = self.buf[0] as u64;
                self.index = 1;
                lo | (hi << 32)
            }
        }

        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for chunk in dest.chunks_mut(4) {
                let bytes = self.next_u32().to_le_bytes();
                let n = chunk.len();
                chunk.copy_from_slice(&bytes[..n]);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn seeded_streams_are_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        let av: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let cv: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_ne!(av, cv, "different seeds diverge");
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = r.gen_range(-5i32..17);
            assert!((-5..17).contains(&x));
            let y = r.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&y));
            let z = r.gen_range(0u8..3);
            assert!(z < 3);
            let w = r.gen_range(3usize..4);
            assert_eq!(w, 3);
        }
    }

    #[test]
    fn gen_range_covers_small_ranges_uniformly() {
        let mut r = StdRng::seed_from_u64(11);
        let mut counts = [0u32; 3];
        for _ in 0..30_000 {
            counts[r.gen_range(0usize..3)] += 1;
        }
        for c in counts {
            assert!((9_000..11_000).contains(&c), "skewed: {counts:?}");
        }
    }

    #[test]
    fn float_draws_fill_unit_interval() {
        let mut r = StdRng::seed_from_u64(3);
        let mut mean = 0.0;
        const N: usize = 20_000;
        for _ in 0..N {
            let v = r.gen_range(0.0f64..1.0);
            assert!((0.0..1.0).contains(&v));
            mean += v;
        }
        mean /= N as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }
}
