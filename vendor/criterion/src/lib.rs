//! Vendored, dependency-light subset of the `criterion` API.
//!
//! The build environment has no network access, so the workspace vendors
//! the slice of criterion its benches use: [`criterion_group!`] /
//! [`criterion_main!`], [`Criterion::benchmark_group`],
//! `sample_size`/`measurement_time`, `bench_function`, and
//! [`Bencher::iter`]. Timing is simple wall-clock sampling with a
//! median/min/max report — no bootstrap statistics, HTML reports, or
//! baseline comparisons.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

use std::hint;
use std::time::{Duration, Instant};

/// Prevents the optimiser from discarding a benchmarked value.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Top-level benchmark driver handed to `criterion_group!` functions.
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 100,
            measurement_time: Duration::from_secs(5),
        }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("\n== group: {name} ==");
        BenchmarkGroup {
            sample_size: self.sample_size,
            measurement_time: self.measurement_time,
            _criterion: self,
        }
    }

    /// Benchmarks a single function outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        run_bench(id, self.sample_size, self.measurement_time, f);
        self
    }
}

/// A named collection of benchmarks sharing sampling settings.
pub struct BenchmarkGroup<'a> {
    sample_size: usize,
    measurement_time: Duration,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Sets the target total measurement time per benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Benchmarks one function under this group's settings.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        run_bench(id, self.sample_size, self.measurement_time, f);
        self
    }

    /// Finishes the group.
    pub fn finish(self) {}
}

/// Passed to each benchmark closure; call [`Bencher::iter`] with the code
/// under test.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine`, running it `iters` times.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            hint::black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    /// Times `routine` on fresh inputs from `setup`, excluding the setup
    /// cost from the measurement. The batch-size hint is accepted for API
    /// compatibility; this implementation always sets up one input per
    /// timed call.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let mut elapsed = Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            hint::black_box(routine(input));
            elapsed += start.elapsed();
        }
        self.elapsed = elapsed;
    }
}

/// Hint for how many inputs [`Bencher::iter_batched`] should prepare per
/// batch. Accepted for API compatibility; the vendored sampler times one
/// input at a time regardless.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchSize {
    /// Inputs are cheap to hold; batch many.
    SmallInput,
    /// Inputs are large; batch few.
    LargeInput,
    /// One input per iteration.
    PerIteration,
}

fn run_bench<F: FnMut(&mut Bencher)>(id: &str, samples: usize, total: Duration, mut f: F) {
    // Warm-up probe sizes the per-sample iteration count so all samples
    // together land near the requested measurement time.
    let mut probe = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    f(&mut probe);
    let per_iter = probe.elapsed.max(Duration::from_nanos(1));
    let budget = total.as_secs_f64() / samples as f64;
    let iters = (budget / per_iter.as_secs_f64()).clamp(1.0, 1e9) as u64;

    let mut times: Vec<f64> = Vec::with_capacity(samples);
    for _ in 0..samples {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        times.push(b.elapsed.as_secs_f64() / iters as f64);
    }
    times.sort_by(|a, b| a.total_cmp(b));
    let median = times[times.len() / 2];
    println!(
        "{id}: median {} (min {}, max {}, {samples} samples x {iters} iters)",
        fmt_time(median),
        fmt_time(times[0]),
        fmt_time(times[times.len() - 1]),
    );
}

fn fmt_time(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.3} s")
    } else if secs >= 1e-3 {
        format!("{:.3} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.3} us", secs * 1e6)
    } else {
        format!("{:.1} ns", secs * 1e9)
    }
}

/// Declares a benchmark group: a runner function invoking each listed
/// bench function with a shared [`Criterion`].
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main`, running each group in order.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny(c: &mut Criterion) {
        let mut g = c.benchmark_group("tiny");
        g.sample_size(5)
            .measurement_time(Duration::from_millis(20))
            .bench_function("sum", |b| b.iter(|| (0u64..100).sum::<u64>()));
        g.finish();
    }

    criterion_group!(benches, tiny);

    #[test]
    fn harness_runs() {
        benches();
    }
}
